"""Tests for the core Topology type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Topology, line


class TestConstruction:
    def test_basic(self):
        g = Topology(3, [(0, 1), (1, 2)])
        assert g.order == 3
        assert g.size == 2

    def test_duplicate_edges_collapse(self):
        g = Topology(3, [(0, 1), (1, 0), (0, 1)])
        assert g.size == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology(2, [(0, 0)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [(0, 2)])

    def test_zero_order_rejected(self):
        with pytest.raises(ValueError):
            Topology(0, [])

    def test_edges_canonicalised(self):
        g = Topology(3, [(2, 1)])
        assert (1, 2) in g.edges

    def test_name(self):
        assert Topology(1, [], name="solo").name == "solo"


class TestAccessors:
    def setup_method(self):
        self.g = Topology(4, [(0, 1), (0, 2), (2, 3)])

    def test_neighbors_sorted(self):
        assert self.g.neighbors(0) == (1, 2)

    def test_degree(self):
        assert self.g.degree(0) == 2
        assert self.g.degree(3) == 1

    def test_max_degree(self):
        assert self.g.max_degree() == 2

    def test_has_edge_symmetric(self):
        assert self.g.has_edge(1, 0)
        assert self.g.has_edge(0, 1)
        assert not self.g.has_edge(1, 2)

    def test_contains(self):
        assert 3 in self.g
        assert 4 not in self.g
        assert "x" not in self.g

    def test_iteration_and_len(self):
        assert list(self.g) == [0, 1, 2, 3]
        assert len(self.g) == 4

    def test_equality_ignores_name(self):
        other = Topology(4, [(2, 3), (0, 2), (1, 0)], name="different")
        assert self.g == other
        assert hash(self.g) == hash(other)

    def test_inequality(self):
        assert self.g != Topology(4, [(0, 1)])

    def test_repr_mentions_size(self):
        assert "order=4" in repr(self.g)


class TestTraversal:
    def test_bfs_distances(self):
        g = line(4)  # path 0-1-2-3-4
        assert g.bfs_distances(0) == [0, 1, 2, 3, 4]
        assert g.bfs_distances(2) == [2, 1, 0, 1, 2]

    def test_bfs_unreachable_marked(self):
        g = Topology(3, [(0, 1)])
        assert g.bfs_distances(0)[2] == -1

    def test_bfs_layers(self):
        g = Topology(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert g.bfs_layers(0) == [[0], [1, 2], [3]]

    def test_radius_from(self):
        assert line(6).radius_from(0) == 6
        assert line(6).radius_from(3) == 3

    def test_radius_disconnected_raises(self):
        g = Topology(3, [(0, 1)])
        with pytest.raises(ValueError, match="not connected"):
            g.radius_from(0)

    def test_is_connected(self):
        assert line(3).is_connected()
        assert not Topology(3, [(0, 1)]).is_connected()

    def test_single_node_connected(self):
        assert Topology(1, []).is_connected()

    def test_diameter(self):
        assert line(5).diameter() == 5


class TestDerived:
    def test_renamed(self):
        g = line(2).renamed("other")
        assert g.name == "other"
        assert g == line(2)

    def test_with_extra_edges(self):
        g = line(3).with_extra_edges([(0, 3)])
        assert g.has_edge(0, 3)
        assert g.size == 4

    def test_induced_subgraph(self):
        g = Topology(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub = g.induced_subgraph([1, 2, 3])
        assert sub.order == 3
        assert sub.size == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_induced_subgraph_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            line(3).induced_subgraph([0, 0])


@st.composite
def random_edge_lists(draw):
    order = draw(st.integers(min_value=2, max_value=12))
    possible = [(u, v) for u in range(order) for v in range(u + 1, order)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=20))
    return order, edges


class TestProperties:
    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_symmetric(self, order_edges):
        order, edges = order_edges
        g = Topology(order, edges)
        for u in g.nodes:
            for v in g.neighbors(u):
                assert u in g.neighbors(v)

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, order_edges):
        order, edges = order_edges
        g = Topology(order, edges)
        assert sum(g.degree(v) for v in g.nodes) == 2 * g.size

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_bfs_distances_are_metric_steps(self, order_edges):
        order, edges = order_edges
        g = Topology(order, edges)
        distances = g.bfs_distances(0)
        for u, v in g.edges:
            if distances[u] >= 0 and distances[v] >= 0:
                assert abs(distances[u] - distances[v]) <= 1


class TestPickleCanonical:
    """Pickle bytes must not depend on lazily-built caches.

    Scenario fingerprints (``repro.montecarlo.fingerprint``) hash the
    pickle of specs that embed topologies, so a topology must pickle
    to identical bytes before and after the simulation hot paths have
    populated ``neighbor_sets()`` / ``csr_neighbors()``.
    """

    def test_lazy_caches_do_not_change_pickle_bytes(self):
        import pickle

        g = line(6)
        before = pickle.dumps(g, 4)
        g.neighbor_sets()
        g.csr_neighbors()
        assert pickle.dumps(g, 4) == before

    def test_round_trip_preserves_graph_and_rebuilds_caches(self):
        import pickle

        g = line(5)
        g.csr_neighbors()
        clone = pickle.loads(pickle.dumps(g))
        assert clone == g
        assert clone.name == g.name
        assert clone.edges == g.edges
        assert clone.neighbor_sets() == g.neighbor_sets()
        indptr, indices = clone.csr_neighbors()
        ref_indptr, ref_indices = g.csr_neighbors()
        assert indptr.tolist() == ref_indptr.tolist()
        assert indices.tolist() == ref_indices.tolist()

    @given(random_edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_equal_topologies_pickle_identically(self, order_edges):
        import pickle

        order, edges = order_edges
        g = Topology(order, edges)
        h = Topology(order, list(reversed(edges)))
        assert pickle.dumps(g, 4) == pickle.dumps(h, 4)
