"""Tests for the vectorised samplers, including engine cross-validation."""

import itertools

import numpy as np
import pytest

from repro.analysis.estimation import estimate_success
from repro.core import FastFlooding, SimpleMalicious
from repro.engine import MESSAGE_PASSING, run_execution
from repro.failures import ComplementAdversary, MaliciousFailures, OmissionFailures
from repro.fastsim import (
    flooding_success_lower_bound,
    internal_node_count,
    line_flooding_success_probability,
    sample_flooding_success,
    sample_flooding_times,
    sample_layered_omission,
    sample_simple_malicious_mp,
    sample_simple_malicious_radio,
    sample_simple_omission,
    simple_omission_success_probability,
)
from repro.graphs import bfs_tree, binary_tree, layered_graph, line, star
from repro.rng import RngStream


class TestClosedForms:
    def test_internal_node_count(self):
        assert internal_node_count(bfs_tree(line(4), 0)) == 4
        assert internal_node_count(bfs_tree(star(5), 0)) == 1

    def test_omission_probability_star(self):
        # star: a single internal node (the center): success = 1 - p^m
        tree = bfs_tree(star(5), 0)
        assert simple_omission_success_probability(tree, 3, 0.5) == \
            pytest.approx(1 - 0.5 ** 3)

    def test_omission_probability_fault_free(self):
        tree = bfs_tree(binary_tree(3), 0)
        assert simple_omission_success_probability(tree, 1, 0.0) == 1.0

    def test_line_flooding_matches_binomial(self):
        from repro.analysis.chernoff import binomial_tail_le
        assert line_flooding_success_probability(10, 25, 0.3) == \
            pytest.approx(1 - binomial_tail_le(25, 9, 0.7))

    def test_flooding_lower_bound_is_a_bound(self):
        tree = bfs_tree(binary_tree(4), 0)
        rounds = 40
        bound = flooding_success_lower_bound(tree, rounds, 0.3)
        empirical = sample_flooding_success(tree, rounds, 0.3, 4000, 3).mean()
        assert empirical >= bound - 0.02


class TestFloodingSampler:
    def test_fault_free_completion_equals_height(self):
        tree = bfs_tree(binary_tree(4), 0)
        times = sample_flooding_times(tree, 0.0, 50, 1)
        assert (times == tree.height).all()

    def test_deterministic(self):
        tree = bfs_tree(binary_tree(3), 0)
        a = sample_flooding_times(tree, 0.4, 100, 9)
        b = sample_flooding_times(tree, 0.4, 100, 9)
        np.testing.assert_array_equal(a, b)

    def test_engine_agreement(self):
        # Engine success at fixed rounds vs the sampler's estimate.
        topology = binary_tree(3)
        tree = bfs_tree(topology, 0)
        p, rounds = 0.4, 14
        sampled = sample_flooding_success(tree, rounds, p, 8000, 5).mean()

        def trial(stream: RngStream) -> bool:
            algo = FastFlooding(topology, 0, 1, rounds=rounds)
            result = run_execution(algo, OmissionFailures(p), stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 300, 7)
        assert outcome.lower - 0.03 <= sampled <= outcome.upper + 0.03


class TestMaliciousSamplers:
    def test_mp_engine_agreement(self):
        topology = binary_tree(2)
        tree = bfs_tree(topology, 0)
        p, m = 0.35, 5
        sampled = sample_simple_malicious_mp(tree, m, p, 20000, 3).mean()

        def trial(stream: RngStream) -> bool:
            algo = SimpleMalicious(topology, 0, 1, MESSAGE_PASSING,
                                   phase_length=m)
            failure = MaliciousFailures(p, ComplementAdversary())
            result = run_execution(algo, failure, stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 400, 11)
        assert outcome.lower - 0.05 <= sampled <= outcome.upper + 0.05

    def test_mp_matches_exact_chain(self):
        # one shared Bernoulli event per internal node: siblings listen
        # to the same phase and decide identically
        from repro.analysis.chernoff import majority_error_probability
        tree = bfs_tree(binary_tree(3), 0)
        p, m = 0.3, 7
        internals = internal_node_count(tree)
        exact = (1 - majority_error_probability(m, p)) ** internals
        sampled = sample_simple_malicious_mp(tree, m, p, 40000, 5).mean()
        assert sampled == pytest.approx(exact, abs=0.01)

    def test_radio_matches_exact_chain(self):
        from repro.core.parameters import signed_majority_error
        tree = bfs_tree(star(4, source_is_center=False), 0)
        p, m = 0.05, 9
        exact = 1.0
        for node in tree.topology.nodes:
            if node == tree.root:
                continue
            good = (1 - p) ** (tree.topology.degree(node) + 1)
            exact *= 1 - signed_majority_error(m, good, p)
        sampled = sample_simple_malicious_radio(tree, m, p, 40000, 7).mean()
        assert sampled == pytest.approx(exact, abs=0.01)

    def test_feasibility_monotone_in_p(self):
        tree = bfs_tree(binary_tree(3), 0)
        rates = [
            sample_simple_malicious_mp(tree, 15, p, 4000, 3).mean()
            for p in (0.1, 0.3, 0.45)
        ]
        assert rates[0] > rates[-1]


def brute_force_layered(graph, steps, p, source_steps):
    """Exact success probability by enumerating all fault patterns."""
    m = graph.m
    step_list = [sorted(step) for step in steps]
    total = 0.0
    layouts = itertools.product(
        *[itertools.product([False, True], repeat=len(step))
          for step in step_list]
    )
    for layout in layouts:
        weight = 1.0
        alive_steps = []
        for step, faults in zip(step_list, layout):
            alive = set()
            for position, faulty in zip(step, faults):
                weight *= p if faulty else (1 - p)
                if not faulty:
                    alive.add(position)
            alive_steps.append(alive)
        ok = all(
            any(len(alive & graph.positions(v)) == 1 for alive in alive_steps)
            for v in range(1, graph.n_values)
        )
        if ok:
            total += weight
    # source phase succeeds unless all source steps fail
    return total * (1 - p ** source_steps)


class TestLayeredSampler:
    def test_against_brute_force(self):
        graph = layered_graph(2)
        steps = [{1}, {2}, {1, 2}]
        p = 0.4
        exact = brute_force_layered(graph, steps, p, source_steps=2)
        sampled = sample_layered_omission(
            graph, steps, p, 40000, 3, source_steps=2
        ).mean()
        assert sampled == pytest.approx(exact, abs=0.01)

    def test_omission_can_rescue_collisions(self):
        # step {1, 2} covers value 3 only when exactly one transmitter
        # fails: success probability for v=3 is 2p(1-p) per step
        graph = layered_graph(2)
        p = 0.5
        sampled = sample_layered_omission(
            graph, [{1, 2}] * 30, p, 20000, 5, source_steps=30
        ).mean()
        # v=1, v=2 are hit whenever the other's transmitter fails, and
        # v=3 when exactly one fails: all three approach 1 with 30 steps
        assert sampled > 0.99

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            sample_layered_omission(layered_graph(2), [], 0.3, 10, 0)

    def test_deterministic(self):
        graph = layered_graph(3)
        steps = [{1}, {2}, {3}]
        a = sample_layered_omission(graph, steps, 0.3, 500, 11)
        b = sample_layered_omission(graph, steps, 0.3, 500, 11)
        np.testing.assert_array_equal(a, b)


class TestHeterogeneousRateSamplers:
    """p_v threading through the per-node-factorising samplers."""

    def test_omission_sampler_matches_per_node_closed_form(self):
        topology = binary_tree(4)
        tree = bfs_tree(topology, 0)
        rates = np.linspace(0.1, 0.8, topology.order)
        m = 3
        expected = simple_omission_success_probability(tree, m, rates)
        draws = sample_simple_omission(tree, m, rates, 60000, RngStream(3))
        assert abs(draws.mean() - expected) < 0.01

    def test_constant_vector_is_bit_identical_to_scalar(self):
        topology = binary_tree(3)
        tree = bfs_tree(topology, 0)
        rates = np.full(topology.order, 0.45)
        np.testing.assert_array_equal(
            sample_simple_omission(tree, 4, 0.45, 500, RngStream(11)),
            sample_simple_omission(tree, 4, rates, 500, RngStream(11)),
        )
        np.testing.assert_array_equal(
            sample_flooding_times(tree, 0.45, 500, RngStream(12)),
            sample_flooding_times(tree, rates, 500, RngStream(12)),
        )

    def test_flooding_sampler_respects_per_node_rates(self):
        # A fault-free line except one near-certainly failing relay:
        # the completion time is dominated by that node's delay.
        topology = line(4)  # 4 edges, 5 nodes
        tree = bfs_tree(topology, 0)
        rates = np.array([0.0, 0.9, 0.0, 0.0, 0.0])
        times = sample_flooding_times(tree, rates, 4000, RngStream(5))
        # every relay forwards instantly except node 1, whose delay is
        # geometric(0.1): completion = 3 + geom, mean 3 + 10.
        assert times.min() >= 4
        assert abs(times.mean() - 13.0) < 1.0

    def test_closed_form_rejects_bad_vectors(self):
        tree = bfs_tree(binary_tree(2), 0)
        with pytest.raises(ValueError):
            simple_omission_success_probability(tree, 2, np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            sample_simple_omission(
                tree, 2, np.full(tree.topology.order, 1.0), 10, RngStream(0)
            )
