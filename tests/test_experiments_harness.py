"""Tests for the experiment harness: tables, registry, CLI."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    Table,
    all_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.registry import ExperimentReport, register
from repro.experiments.__main__ import main


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"])
        table.add_row(name="alpha", value=1)
        table.add_row(name="b", value=123.456789)
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(set(len(line) for line in lines if line)) <= 2
        assert "123.4568" in text

    def test_unknown_column_rejected(self):
        table = Table(["a"])
        with pytest.raises(ValueError, match="outside columns"):
            table.add_row(b=1)

    def test_column_access(self):
        table = Table(["a", "b"])
        table.add_row(a=1)
        table.add_row(a=2, b=3)
        assert table.column("a") == [1, 2]
        assert table.column("b") == [None, 3]
        with pytest.raises(ValueError):
            table.column("zzz")

    def test_bool_and_small_float_formatting(self):
        table = Table(["x"])
        table.add_row(x=True)
        table.add_row(x=1e-9)
        text = table.render()
        assert "yes" in text and "1e-09" in text

    def test_len(self):
        table = Table(["a"])
        table.add_row(a=1)
        assert len(table) == 1


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = [e.experiment_id for e in all_experiments()]
        assert ids == [f"E{i:02d}" for i in range(1, 16)]

    def test_get_experiment(self):
        experiment = get_experiment("E05")
        assert "2.4" in experiment.paper_claim

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("E99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register("E01", "again", "claim")(lambda config: None)

    def test_report_render(self):
        table = Table(["a"])
        table.add_row(a=1)
        report = ExperimentReport(
            experiment_id="EXX", title="t", paper_claim="c", table=table,
            notes=["n1"], passed=True,
        )
        text = report.render()
        assert "EXX" in text and "REPRODUCED" in text and "note: n1" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E14" in out

    def test_run_single_quick(self, capsys):
        code = main(["run", "e10", "--quick", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "REPRODUCED" in out

    def test_workers_flag_changes_nothing_but_wall_clock(self, capsys):
        code = main(["run", "e11", "--quick", "--seed", "1"])
        serial = capsys.readouterr().out
        assert code == 0
        code = main(["run", "e11", "--quick", "--seed", "1", "--workers", "3"])
        sharded = capsys.readouterr().out
        assert code == 0
        assert serial == sharded


class TestQuickReproductions:
    """Every experiment must reproduce its claim in quick mode.

    These are the library's end-to-end acceptance tests; the full-size
    versions live in the benchmark harness.
    """

    @pytest.mark.parametrize(
        "experiment_id", [f"E{i:02d}" for i in range(1, 16)]
    )
    def test_quick_run_passes(self, experiment_id):
        report = run_experiment(
            experiment_id, ExperimentConfig(seed=2007, quick=True)
        )
        assert report.passed, report.render()
        assert len(report.table) > 0
