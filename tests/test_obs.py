"""The observability layer: registry, spans, rendering, inertness.

The load-bearing contract is **inertness**: instrumentation consumes
wall clocks and nothing else, so running any scenario with a live
:class:`~repro.obs.MetricsRegistry` produces indicators byte-identical
to the same run with metrics off (the :data:`repro.obs.NULL`
registry).  Everything else — lock-safety under threads, bucket
arithmetic, snapshot determinism, the Prometheus text format, the
NDJSON slow-span log, the ``python -m repro.obs render`` CLI — is
pinned alongside.
"""

import io
import json
import subprocess
import sys
import threading
from functools import partial
from pathlib import Path

import numpy as np
import pytest

from repro.core import SimpleOmission
from repro.engine import MESSAGE_PASSING
from repro.failures import OmissionFailures
from repro.graphs import binary_tree
from repro.montecarlo import TrialRunner
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    configure_slow_log,
    current_span,
    disable_slow_log,
    get_registry,
    prometheus_name,
    render_prometheus,
    render_registry,
    set_registry,
    slow_log_threshold,
    span,
    use_registry,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

TREE = binary_tree(3)
OMISSION = OmissionFailures(0.4)
mp_factory = partial(SimpleOmission, TREE, 0, 1, MESSAGE_PASSING, 2)


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_negative_increment_is_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1)
        assert counter.value == 0

    def test_concurrent_increments_never_lose_counts(self):
        counter = Counter()
        threads_n, per_thread = 8, 10_000

        def worker():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker)
                   for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == threads_n * per_thread


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.inc()
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(2.5)
        gauge.set(-3.0)
        assert gauge.value == -3.0


class TestHistogram:
    def test_bucket_upper_bounds_are_inclusive(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)   # lands in the first bucket, not the second
        hist.observe(1.5)
        hist.observe(2.0)
        hist.observe(99.0)  # overflow bucket
        assert hist.bucket_counts() == [1, 2, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(103.5)

    def test_bounds_must_strictly_increase_and_be_finite(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())
        with pytest.raises(ValueError, match="implicit"):
            Histogram(buckets=(1.0, float("inf")))

    def test_percentile_interpolates_within_a_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for _ in range(4):
            hist.observe(1.5)  # all four in (1.0, 2.0]
        # Rank interpolation: p50 sits at rank 2 of 4 → halfway in.
        assert hist.percentile(0.5) == pytest.approx(1.5)
        assert hist.percentile(1.0) == pytest.approx(2.0)

    def test_percentile_clamps_overflow_to_last_bound(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(50.0)
        assert hist.percentile(0.99) == 1.0

    def test_percentile_empty_and_invalid(self):
        hist = Histogram()
        assert hist.percentile(0.5) == 0.0
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.percentile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a", x=1) is registry.counter("a", x=1)
        assert registry.counter("a", x=1) is not registry.counter("a", x=2)
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_label_identity_ignores_keyword_order(self):
        registry = MetricsRegistry()
        assert (registry.counter("a", x=1, y=2)
                is registry.counter("a", y=2, x=1))

    def test_counter_value_reads_without_creating(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never") == 0
        registry.counter("hits", kind="exact").inc(3)
        assert registry.counter_value("hits", kind="exact") == 3
        assert registry.snapshot()["counters"] == [
            {"name": "hits", "labels": {"kind": "exact"}, "value": 3}
        ]

    def test_snapshot_is_deterministic_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", z="1").inc(2)
        registry.gauge("level").set(1.5)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        snapshot = registry.snapshot()
        assert [c["name"] for c in snapshot["counters"]] == ["a", "b"]
        hist = snapshot["histograms"][0]
        assert hist["bounds"] == [0.1, 1.0]
        assert hist["counts"] == [1, 0, 0]
        json.dumps(snapshot)  # must be serialisable as-is
        assert snapshot == registry.snapshot()

    def test_reset_drops_every_series(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(0.5)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"counters": [], "gauges": [], "histograms": []}

    def test_default_histogram_buckets(self):
        registry = MetricsRegistry()
        assert registry.histogram("h").bounds == DEFAULT_LATENCY_BUCKETS


class TestNullRegistry:
    def test_drops_every_record(self):
        null = NullRegistry()
        null.counter("a", x=1).inc(100)
        null.gauge("g").set(5)
        null.histogram("h").observe(1.0)
        assert null.counter("a", x=1).value == 0
        assert null.snapshot() == {"counters": [], "gauges": [],
                                   "histograms": []}

    def test_process_wide_swap_roundtrip(self):
        previous = set_registry(NULL)
        try:
            assert get_registry() is NULL
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_set_registry_rejects_non_registries(self):
        with pytest.raises(TypeError, match="MetricsRegistry"):
            set_registry(object())

    def test_use_registry_restores_on_error(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry() as registry:
                assert get_registry() is registry
                raise RuntimeError("boom")
        assert get_registry() is before


class TestSpans:
    def test_span_records_a_latency_histogram(self):
        with use_registry() as registry:
            with span("unit.op", kind="test"):
                pass
            hist = registry.histogram("unit.op.seconds", kind="test")
            assert hist.count == 1

    def test_nesting_builds_the_phase_tree(self):
        with use_registry() as registry:
            assert current_span() is None
            with span("root") as root:
                with span("child.a"):
                    with span("leaf"):
                        assert current_span().name == "leaf"
                with span("child.b"):
                    pass
            assert current_span() is None
            tree = root.tree()
            assert tree["span"] == "root"
            assert [phase["span"] for phase in tree["phases"]] == [
                "child.a", "child.b"]
            assert tree["phases"][0]["phases"][0]["span"] == "leaf"
            assert registry.histogram("leaf.seconds").count == 1

    def test_span_records_even_when_the_body_raises(self):
        with use_registry() as registry:
            with pytest.raises(RuntimeError):
                with span("fails"):
                    raise RuntimeError("boom")
            assert registry.histogram("fails.seconds").count == 1
            assert current_span() is None

    def test_slow_log_emits_ndjson_for_slow_roots(self):
        stream = io.StringIO()
        configure_slow_log(0.0, stream=stream)
        try:
            assert slow_log_threshold() == 0.0
            with use_registry():
                with span("slow.query", scenario="flooding"):
                    with span("slow.phase"):
                        pass
            lines = [line for line in stream.getvalue().splitlines()
                     if line]
            assert len(lines) == 1  # only the root span logs
            payload = json.loads(lines[0])
            assert payload["span"] == "slow.query"
            assert payload["labels"] == {"scenario": "flooding"}
            assert payload["phases"][0]["span"] == "slow.phase"
            assert "ts" in payload and payload["level"] == "info"
        finally:
            disable_slow_log()
        assert slow_log_threshold() is None

    def test_fast_roots_stay_silent(self):
        stream = io.StringIO()
        configure_slow_log(3600.0, stream=stream)
        try:
            with use_registry():
                with span("fast.query"):
                    pass
            assert stream.getvalue() == ""
        finally:
            disable_slow_log()


class TestRender:
    def test_prometheus_name_sanitises(self):
        assert prometheus_name("serve.query.seconds") == \
            "serve_query_seconds"
        assert prometheus_name("9lives") == "_9lives"

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("serve.queries").inc(3)
        registry.counter("mc.trials", backend="batchsim").inc(256)
        registry.gauge("serve.wire.inflight").set(2)
        hist = registry.histogram("serve.query.seconds",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(9.0)
        text = render_registry(registry)
        assert "# TYPE serve_queries_total counter" in text
        assert "serve_queries_total 3" in text
        assert 'mc_trials_total{backend="batchsim"} 256' in text
        assert "# TYPE serve_wire_inflight gauge" in text
        # Buckets are cumulative and end with +Inf.
        assert 'serve_query_seconds_bucket{le="0.1"} 1' in text
        assert 'serve_query_seconds_bucket{le="1.0"} 2' in text
        assert 'serve_query_seconds_bucket{le="+Inf"} 3' in text
        assert "serve_query_seconds_count 3" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        text = render_prometheus({"counters": [
            {"name": "c", "labels": {"k": 'a"b\\c\nd'}, "value": 1},
        ]})
        assert r'c_total{k="a\"b\\c\nd"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""


class TestInertness:
    """Metrics on vs off must not move a single indicator bit."""

    def _run(self, **kwargs):
        runner = TrialRunner(mp_factory, OMISSION, **kwargs)
        return runner.run(trials=300, seed_or_stream=13)

    @pytest.mark.parametrize("kwargs", [
        {},                                       # fastsim tier
        {"use_fastsim": False},                   # batchsim tier
        {"use_fastsim": False, "use_batchsim": False},  # engine tier
    ])
    def test_indicators_identical_with_registry_on_and_off(self, kwargs):
        with use_registry():
            live = self._run(**kwargs)
        previous = set_registry(NULL)
        try:
            off = self._run(**kwargs)
        finally:
            set_registry(previous)
        assert np.array_equal(live.indicators, off.indicators)
        assert live.backend == off.backend
        assert live.estimate == off.estimate

    def test_recording_consumes_no_global_numpy_randomness(self):
        state_before = np.random.get_state()
        with use_registry() as registry:
            registry.counter("c", a=1).inc(5)
            registry.gauge("g").set(2.0)
            registry.histogram("h").observe(0.25)
            with span("s", scenario="x"):
                pass
            registry.snapshot()
        state_after = np.random.get_state()
        assert state_before[0] == state_after[0]
        assert np.array_equal(state_before[1], state_after[1])
        assert state_before[2:] == state_after[2:]

    def test_timings_are_metadata_not_identity(self):
        with use_registry():
            first = self._run()
            second = self._run()
        assert first.timings is not None and second.timings is not None
        assert set(first.timings) >= {"probe", "run", "total"}
        # Wall-clock differs run to run, equality must not.
        assert np.array_equal(first.indicators, second.indicators)
        assert repr(first).find("timings") == -1

    def test_run_until_carries_total_timing(self):
        with use_registry() as registry:
            sequential = TrialRunner(mp_factory, OMISSION).run_until(
                target_width=0.2, max_trials=2048, seed_or_stream=3)
            assert sequential.result.timings["total"] > 0.0
            trials_counted = sum(
                entry["value"]
                for entry in registry.snapshot()["counters"]
                if entry["name"] == "mc.trials"
            )
            assert trials_counted == sequential.trials


class TestCli:
    def _render(self, *args, stdin=None):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", "render", *args],
            input=stdin, capture_output=True, text=True,
            cwd=REPO_ROOT, env={"PYTHONPATH": "src", "PATH": "/usr/bin"},
        )

    def _snapshot_json(self):
        registry = MetricsRegistry()
        registry.counter("serve.queries").inc(7)
        registry.histogram("serve.query.seconds").observe(0.02)
        return json.dumps(registry.snapshot())

    def test_renders_a_snapshot_from_stdin(self):
        proc = self._render("-", stdin=self._snapshot_json())
        assert proc.returncode == 0, proc.stderr
        assert "serve_queries_total 7" in proc.stdout
        assert "serve_query_seconds_count 1" in proc.stdout

    def test_renders_a_full_wire_response_from_file(self, tmp_path):
        wire = json.dumps({"ok": True, "id": 1,
                           "metrics": json.loads(self._snapshot_json())})
        path = tmp_path / "metrics.json"
        path.write_text(wire, encoding="utf8")
        proc = self._render(str(path))
        assert proc.returncode == 0, proc.stderr
        assert "serve_queries_total 7" in proc.stdout

    def test_rejects_non_snapshot_input(self):
        proc = self._render("-", stdin='{"nope": 1}')
        assert proc.returncode == 1
        assert "render:" in proc.stderr

    def test_rejects_host_and_file_together(self):
        proc = self._render("somefile", "--host", "127.0.0.1")
        assert proc.returncode == 2
