"""Tests for radio schedules: semantics, validation, closed forms."""

import pytest

from repro.graphs import complete, layered_graph, line, ring, spider, star
from repro.radio import (
    RadioSchedule,
    complete_schedule,
    layered_schedule,
    line_schedule,
    spider_schedule,
    star_schedule,
)


class TestSimulation:
    def test_line_relay(self):
        schedule = line_schedule(line(4))
        sim = schedule.simulate()
        assert sim.covers(schedule.topology)
        assert sim.informed_step == {0: -1, 1: 0, 2: 1, 3: 2, 4: 3}
        assert sim.parent == {1: 0, 2: 1, 3: 2, 4: 3}

    def test_collision_prevents_informing(self):
        g = star(2)
        schedule = RadioSchedule(g, 0, [[0], [1, 2]])
        sim = schedule.simulate()
        # both leaves transmit in step 1: the center hears nothing new
        # (it is informed anyway); the schedule still covers
        assert sim.covers(g)

    def test_uncovering_schedule_detected(self):
        schedule = RadioSchedule(line(3), 0, [[0]])
        assert not schedule.simulate().covers(schedule.topology)

    def test_simulation_cached(self):
        schedule = line_schedule(line(3))
        assert schedule.simulate() is schedule.simulate()


class TestValidation:
    def test_uninformed_transmitter_rejected(self):
        schedule = RadioSchedule(line(3), 0, [[2]])
        with pytest.raises(ValueError, match="not yet informed"):
            schedule.validate()

    def test_uncovering_rejected(self):
        schedule = RadioSchedule(line(3), 0, [[0], [1]])
        with pytest.raises(ValueError, match="does not inform"):
            schedule.validate()

    def test_is_valid_boolean(self):
        assert line_schedule(line(3)).is_valid()
        assert not RadioSchedule(line(3), 0, [[0]]).is_valid()

    def test_prefix(self):
        schedule = line_schedule(line(5))
        prefix = schedule.prefix(2)
        assert prefix.length == 2
        assert not prefix.is_valid()  # truncated: no longer covers
        with pytest.raises(ValueError):
            schedule.prefix(99)

    def test_node_bounds_checked(self):
        with pytest.raises(ValueError):
            RadioSchedule(line(3), 0, [[7]])


class TestClosedForms:
    def test_line_schedule_optimal_length(self):
        g = line(6)
        schedule = line_schedule(g)
        assert schedule.length == 6 == g.radius_from(0)

    def test_line_schedule_requires_endpoint(self):
        with pytest.raises(ValueError, match="endpoint"):
            line_schedule(line(4), source=2)

    def test_star_center_one_step(self):
        g = star(5)
        assert star_schedule(g, 0, 0).length == 1

    def test_star_leaf_two_steps(self):
        g = star(5, source_is_center=False)
        schedule = star_schedule(g, 0, 1)
        assert schedule.length == 2
        schedule.validate()

    def test_complete_one_step(self):
        assert complete_schedule(complete(6), 2).length == 1

    def test_spider_matches_radius(self):
        g = spider(4, 5)
        schedule = spider_schedule(g, 4, 5)
        assert schedule.length == 5 == g.radius_from(0)
        schedule.validate()

    def test_layered_schedule_length(self):
        for m in (1, 2, 3, 5):
            graph = layered_graph(m)
            schedule = layered_schedule(graph)
            assert schedule.length == m + 1
            schedule.validate()

    def test_layered_parents_are_bit_nodes(self):
        graph = layered_graph(3)
        sim = layered_schedule(graph).simulate()
        for value_node in graph.value_nodes:
            assert sim.parent[value_node] in set(graph.bit_nodes)
