"""Public-API integrity tests.

Guard the import surface: every name a package re-exports must
resolve, and the README quickstart must keep working verbatim.
"""

import importlib

import pytest

import repro


PACKAGES = [
    "repro",
    "repro.graphs",
    "repro.engine",
    "repro.failures",
    "repro.core",
    "repro.core.kucera",
    "repro.radio",
    "repro.analysis",
    "repro.fastsim",
    "repro.montecarlo",
    "repro.experiments",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_module_docstrings(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a module docstring"


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import MESSAGE_PASSING, run_execution
        from repro.core import SimpleOmission
        from repro.failures import OmissionFailures
        from repro.graphs import binary_tree

        topology = binary_tree(4)
        algo = SimpleOmission(topology, source=0, source_message=1,
                              model=MESSAGE_PASSING, p=0.4)
        result = run_execution(algo, OmissionFailures(0.4), seed_or_stream=7,
                               metadata=algo.metadata())
        assert result.is_successful_broadcast()

    def test_package_docstring_example(self):
        from repro import graphs, run_execution
        from repro.core import SimpleOmission
        from repro.failures import OmissionFailures

        g = graphs.binary_tree(4)
        algo = SimpleOmission(g, source=0, source_message=1,
                              model="message-passing", p=0.3)
        result = run_execution(algo, OmissionFailures(0.3), seed_or_stream=7,
                               metadata=algo.metadata())
        assert result.is_successful_broadcast()
