"""The always-on simulation service: coalescing, memoisation, wire.

The contracts under test, in the order ISSUE/ARCHITECTURE state them:

* **single flight** — N concurrent identical queries run exactly one
  ``BatchExecution``; every waiter receives bit-identical indicators;
* **exact memoisation** — a cache hit returns the same bytes a cold
  run would produce (property-tested over seeds/trial counts), while
  a different seed, trial count or scenario is a miss;
* **LRU eviction** — the memo is bounded and evicts least recently
  used;
* **wire robustness** — malformed requests get structured error
  responses (``bad-json`` / ``bad-request`` / ``unknown-scenario`` /
  ``bad-parameters``) and never kill the connection.

No pytest-asyncio in the environment, so every async scenario runs
under ``asyncio.run`` inside a plain test function.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.batchsim.engine as engine_module
from repro.experiments.registry import all_families, get_family, resolve_scenario
from repro.montecarlo import scenario_fingerprint
from repro.obs import render_prometheus, use_registry
from repro.serve import (
    Coalescer,
    Query,
    QueryError,
    ResultCache,
    SimulationServer,
    SimulationService,
    query_many,
    query_one,
)
from repro.serve.traffic import make_query_pool, run_inprocess

MC_QUERY = Query("windowed-malicious", 0.25, 2, 200, seed=5)
FASTSIM_QUERY = Query("simple-omission", 0.1, 3, 400, seed=1)


def run(coro):
    return asyncio.run(coro)


class TestFingerprint:
    def test_same_query_same_fingerprint(self):
        service = SimulationService()
        assert service.fingerprint(MC_QUERY) == service.fingerprint(MC_QUERY)

    def test_fresh_service_agrees(self):
        assert (SimulationService().fingerprint(MC_QUERY)
                == SimulationService().fingerprint(MC_QUERY))

    def test_each_axis_is_distinguished(self):
        service = SimulationService()
        base = service.fingerprint(MC_QUERY)
        variants = [
            Query("windowed-malicious", 0.25, 2, 200, seed=6),
            Query("windowed-malicious", 0.25, 2, 201, seed=5),
            Query("windowed-malicious", 0.3, 2, 200, seed=5),
            Query("windowed-malicious", 0.25, 3, 200, seed=5),
            Query("kucera-flip", 0.25, 2, 200, seed=5),
        ]
        fingerprints = {service.fingerprint(query) for query in variants}
        assert base not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_stable_across_execution(self):
        """Running trials must not change the fingerprint.

        Regression: lazily-built topology caches used to leak into the
        pickled spec, so the first execution silently re-keyed the
        scenario and split coalescing/caching.
        """
        factory, model = resolve_scenario("windowed-malicious", 0.25, 2, {})
        before = scenario_fingerprint(factory, model, 200, 5)

        async def scenario():
            service = SimulationService()
            await service.submit(MC_QUERY)
            return service.fingerprint(MC_QUERY)

        assert run(scenario()) == before


class TestResultCache:
    def _result(self, seed=0):
        factory, model = resolve_scenario("simple-omission", 0.1, 2, {})
        from repro.montecarlo import TrialRunner
        return TrialRunner(factory, model).run(8, seed)

    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("a") is None
        result = self._result()
        cache.put("a", result)
        assert cache.get("a") is result
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(2)
        first, second, third = (self._result(seed) for seed in (1, 2, 3))
        cache.put("a", first)
        cache.put("b", second)
        assert cache.get("a") is first  # refresh "a": now "b" is LRU
        cache.put("c", third)
        assert "b" not in cache
        assert cache.get("a") is first
        assert cache.get("c") is third
        assert cache.stats().evictions == 1

    def test_rejects_non_results(self):
        with pytest.raises(TypeError, match="TrialResult"):
            ResultCache(2).put("a", "not a result")

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_capacity_zero_is_pass_through(self):
        # Regression: capacity 0 used to be rejected outright; it now
        # means "memoisation off" — puts store nothing, gets always
        # miss, and the service runs fine without a cache.
        cache = ResultCache(0)
        result = self._result()
        cache.put("a", result)
        assert cache.get("a") is None
        assert len(cache) == 0
        stats = cache.stats()
        assert (stats.capacity, stats.size, stats.hits) == (0, 0, 0)
        assert stats.misses == 1

    def test_items_orders_least_to_most_recent(self):
        cache = ResultCache(4)
        first, second = (self._result(seed) for seed in (1, 2))
        cache.put("a", first)
        cache.put("b", second)
        assert cache.get("a") is first  # refresh "a" to MRU
        assert cache.items() == [("b", second), ("a", first)]


class TestCoalescer:
    def test_concurrent_same_key_runs_once(self):
        async def scenario():
            coalescer = Coalescer()
            runs = 0
            release = asyncio.Event()

            async def compute():
                nonlocal runs
                runs += 1
                await release.wait()
                return object()

            async def caller():
                return await coalescer.run("key", compute)

            tasks = [asyncio.create_task(caller()) for _ in range(5)]
            await asyncio.sleep(0)  # let every caller reach the coalescer
            release.set()
            outcomes = await asyncio.gather(*tasks)
            return runs, coalescer, outcomes

        runs, coalescer, outcomes = run(scenario())
        assert runs == 1
        assert coalescer.started == 1 and coalescer.joined == 4
        results = {id(result) for result, _ in outcomes}
        assert len(results) == 1  # the same object, not a copy
        assert sorted(flag for _, flag in outcomes) == [
            False, True, True, True, True]

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            coalescer = Coalescer()

            async def compute_value(value):
                await asyncio.sleep(0)
                return value

            pairs = await asyncio.gather(
                coalescer.run("a", lambda: compute_value(1)),
                coalescer.run("b", lambda: compute_value(2)),
            )
            return coalescer, pairs

        coalescer, pairs = run(scenario())
        assert coalescer.started == 2 and coalescer.joined == 0
        assert [value for value, _ in pairs] == [1, 2]

    def test_failure_reaches_every_waiter_and_is_not_cached(self):
        async def scenario():
            coalescer = Coalescer()
            release = asyncio.Event()

            async def explode():
                await release.wait()
                raise RuntimeError("boom")

            tasks = [asyncio.create_task(coalescer.run("key", explode))
                     for _ in range(3)]
            await asyncio.sleep(0)
            release.set()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            assert coalescer.inflight() == 0

            async def recover():
                return "fine"

            result, coalesced = await coalescer.run("key", recover)
            return outcomes, result, coalesced

        outcomes, result, coalesced = run(scenario())
        assert all(isinstance(item, RuntimeError) for item in outcomes)
        assert (result, coalesced) == ("fine", False)


class TestServiceCoalescing:
    def test_concurrent_identical_queries_build_one_batch_execution(
            self, monkeypatch):
        """The tentpole claim, stated literally: N concurrent identical
        Monte-Carlo queries construct exactly one BatchExecution."""
        built = []
        original = engine_module.BatchExecution.__init__

        def counting(self, *args, **kwargs):
            built.append(id(self))
            return original(self, *args, **kwargs)

        monkeypatch.setattr(engine_module.BatchExecution, "__init__",
                            counting)

        async def scenario():
            service = SimulationService()
            return await asyncio.gather(
                *(service.submit(MC_QUERY) for _ in range(6))), service

        answers, service = run(scenario())
        assert len(built) == 1
        digests = {answer.indicators_digest() for answer in answers}
        assert len(digests) == 1
        sources = sorted(answer.source for answer in answers)
        assert sources == ["coalesced"] * 5 + ["computed"]
        stats = service.stats()
        assert stats.computed == 1 and stats.coalesced_hits == 5

    def test_waiters_share_the_result_object(self):
        async def scenario():
            service = SimulationService()
            return await asyncio.gather(
                *(service.submit(MC_QUERY) for _ in range(4)))

        answers = run(scenario())
        assert len({id(answer.result) for answer in answers}) == 1

    def test_sequential_duplicates_hit_the_cache_instead(self):
        async def scenario():
            service = SimulationService()
            first = await service.submit(MC_QUERY)
            second = await service.submit(MC_QUERY)
            return first, second, service.stats()

        first, second, stats = run(scenario())
        assert first.source == "computed"
        assert second.source == "cache"
        assert second.result is first.result
        assert stats.cache_hits == 1
        assert stats.shared_work_rate == 0.5


class TestServiceCacheExactness:
    @given(seed=st.integers(min_value=0, max_value=2**31),
           trials=st.integers(min_value=1, max_value=64))
    @settings(max_examples=12, deadline=None)
    def test_cache_hit_is_byte_identical_to_cold_run(self, seed, trials):
        query = Query("kucera-flip", 0.3, 3, trials, seed=seed)

        async def warm_and_replay():
            service = SimulationService()
            cold = await service.submit(query)
            replay = await service.submit(query)
            return cold, replay

        async def cold_on_fresh_service():
            return await SimulationService().submit(query)

        cold, replay = run(warm_and_replay())
        fresh = run(cold_on_fresh_service())
        assert replay.source == "cache"
        assert replay.result.indicators.tobytes() == \
            cold.result.indicators.tobytes()
        assert fresh.indicators_digest() == cold.indicators_digest()
        assert fresh.fingerprint == cold.fingerprint

    def test_distinct_seed_trials_scenario_all_miss(self):
        async def scenario():
            service = SimulationService()
            await service.submit(MC_QUERY)
            for query in (
                Query("windowed-malicious", 0.25, 2, 200, seed=6),
                Query("windowed-malicious", 0.25, 2, 199, seed=5),
                Query("kucera-flip", 0.25, 2, 200, seed=5),
            ):
                answer = await service.submit(query)
                assert answer.source == "computed", query
            return service.stats()

        stats = run(scenario())
        assert stats.cache_hits == 0
        assert stats.computed == 4

    def test_eviction_forces_recompute(self):
        async def scenario():
            service = SimulationService(cache_capacity=1)
            first = await service.submit(MC_QUERY)
            other = Query("windowed-malicious", 0.25, 2, 200, seed=9)
            await service.submit(other)  # evicts MC_QUERY's entry
            again = await service.submit(MC_QUERY)
            return first, again, service.stats()

        first, again, stats = run(scenario())
        assert again.source == "computed"
        assert again.result is not first.result
        assert again.indicators_digest() == first.indicators_digest()
        assert stats.cache.evictions >= 1

    def test_fastsim_queries_are_memoised_too(self):
        async def scenario():
            service = SimulationService()
            cold = await service.submit(FASTSIM_QUERY)
            replay = await service.submit(FASTSIM_QUERY)
            return cold, replay, service.stats()

        cold, replay, stats = run(scenario())
        assert cold.backend.startswith("fastsim:")
        assert replay.source == "cache"
        assert replay.result is cold.result
        assert stats.fastsim_answers == 1


class TestServiceValidation:
    def _submit(self, query):
        return run(SimulationService().submit(query))

    def test_unknown_scenario(self):
        with pytest.raises(QueryError) as excinfo:
            self._submit(Query("no-such-family", 0.1, 2, 10))
        assert excinfo.value.code == "unknown-scenario"

    @pytest.mark.parametrize("query", [
        Query("flooding", 0.1, 5, 0),
        Query("flooding", 0.1, 5, -3),
        Query("flooding", 0.1, 5, True),
        Query("flooding", 0.1, 5, 10, seed=-1),
        Query("", 0.1, 5, 10),
    ])
    def test_bad_request(self, query):
        with pytest.raises(QueryError) as excinfo:
            self._submit(query)
        assert excinfo.value.code == "bad-request"

    @pytest.mark.parametrize("query", [
        Query("windowed-malicious", 1.5, 2, 10),
        Query("windowed-malicious", 0.25, 0, 10),
        Query("flooding", 0.1, 5, 10, params={"bogus": 1}),
    ])
    def test_bad_parameters(self, query):
        with pytest.raises(QueryError) as excinfo:
            self._submit(query)
        assert excinfo.value.code == "bad-parameters"

    def test_trials_ceiling(self):
        service = SimulationService(max_trials=100)
        with pytest.raises(QueryError, match=r"\[1, 100\]"):
            run(service.submit(Query("flooding", 0.1, 5, 101)))

    def test_errors_are_counted(self):
        async def scenario():
            service = SimulationService()
            for _ in range(2):
                with pytest.raises(QueryError):
                    await service.submit(Query("nope", 0.1, 2, 10))
            return service.stats()

        stats = run(scenario())
        assert stats.errors == 2
        assert stats.queries == 2


class TestFamilyCatalog:
    def test_families_are_registered(self):
        names = {family.name for family in all_families()}
        assert {"simple-omission", "flooding", "windowed-malicious",
                "kucera-flip"} <= names

    def test_get_family_unknown_lists_known(self):
        with pytest.raises(KeyError, match="flooding"):
            get_family("missing")

    def test_resolve_scenario_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            resolve_scenario("flooding", 0.1, 1, {})
        with pytest.raises((TypeError, ValueError)):
            resolve_scenario("windowed-malicious", 0.25, "two", {})


class TestWireProtocol:
    @staticmethod
    async def _with_server(callback):
        server = SimulationServer(SimulationService())
        host, port = await server.start()
        try:
            return await callback(host, port, server)
        finally:
            await server.close()

    @staticmethod
    async def _raw_exchange(host, port, lines):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(lines)
            await writer.drain()
            responses = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                responses.append(json.loads(line))
                if len(responses) >= lines.count(b"\n"):
                    break
            return responses
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionResetError:
                pass

    def test_pipelined_duplicates_coalesce_over_the_wire(self):
        async def scenario(host, port, server):
            request = {"scenario": "windowed-malicious", "p": 0.25,
                       "n": 2, "trials": 150, "seed": 4}
            responses = await query_many(host, port, [request] * 5)
            stats = server.service.stats()
            return responses, stats

        responses, stats = run(self._with_server(scenario))
        assert all(response["ok"] for response in responses)
        assert len({response["indicators_sha256"]
                    for response in responses}) == 1
        sources = sorted(response["source"] for response in responses)
        assert sources == ["coalesced"] * 4 + ["computed"]
        assert stats.computed == 1

    def test_query_one_round_trip(self):
        async def scenario(host, port, server):
            return await query_one(host, port, {
                "scenario": "simple-omission", "p": 0.1, "n": 3,
                "trials": 200, "seed": 2,
            })

        response = run(self._with_server(scenario))
        assert response["ok"] is True
        assert response["backend"].startswith("fastsim:")
        assert response["trials"] == 200
        assert 0.0 <= response["estimate"] <= 1.0
        assert len(response["fingerprint"]) == 64

    def test_malformed_json_gets_bad_json_not_a_hangup(self):
        async def scenario(host, port, server):
            return await self._raw_exchange(
                host, port,
                b"{this is not json\n"
                b'{"scenario": "flooding", "p": 0.1, "n": 4, "trials": 8}\n',
            )

        responses = run(self._with_server(scenario))
        codes = {response.get("error") for response in responses}
        assert "bad-json" in codes
        assert any(response.get("ok") for response in responses), (
            "a bad line must not poison later requests on the connection"
        )

    @pytest.mark.parametrize("request_line, expected_code", [
        ({"scenario": "nope", "p": 0.1, "n": 2, "trials": 5},
         "unknown-scenario"),
        ({"scenario": "flooding", "p": 0.1, "n": 4, "trials": 5,
          "extra_field": 1}, "bad-request"),
        ({"scenario": "flooding", "p": 0.1, "n": 4}, "bad-request"),
        ({"scenario": "flooding", "p": "high", "n": 4, "trials": 5},
         "bad-request"),
        ({"scenario": "flooding", "p": 0.1, "n": 4, "trials": 5,
          "params": [1, 2]}, "bad-request"),
        ({"scenario": "windowed-malicious", "p": 0.25, "n": 1,
          "trials": 5}, "bad-parameters"),
        ({"op": "mystery"}, "bad-request"),
        (["not", "an", "object"], "bad-request"),
    ])
    def test_error_codes(self, request_line, expected_code):
        async def scenario(host, port, server):
            line = json.dumps(request_line).encode("utf8") + b"\n"
            return await self._raw_exchange(host, port, line)

        responses = run(self._with_server(scenario))
        assert responses[0]["ok"] is False
        assert responses[0]["error"] == expected_code

    def test_stats_and_catalog_ops(self):
        async def scenario(host, port, server):
            await query_one(host, port, {
                "scenario": "flooding", "p": 0.1, "n": 4, "trials": 16,
            })
            stats = await query_one(host, port, {"op": "stats", "id": 7})
            catalog = await query_one(host, port, {"op": "catalog"})
            return stats, catalog

        stats, catalog = run(self._with_server(scenario))
        assert stats["ok"] and stats["id"] == 7
        assert stats["queries"] == 1
        assert stats["uptime_seconds"] >= 0.0
        assert stats["coalescer"] == {"inflight": 0, "started": 0,
                                      "joined": 0}
        # The shard-substrate block: which executor backend answers
        # Monte-Carlo runs, and how wide it is.
        assert stats["executor"]["backend"] == "in-process"
        assert stats["executor"]["workers"] == 1
        names = {entry["name"] for entry in catalog["scenarios"]}
        assert "windowed-malicious" in names

    def test_metrics_op_ships_the_registry_snapshot(self):
        async def scenario(host, port, server):
            with use_registry():
                await query_one(host, port, {
                    "scenario": "windowed-malicious", "p": 0.25, "n": 2,
                    "trials": 64, "seed": 5,
                })
                return await query_one(host, port,
                                       {"op": "metrics", "id": 9})

        response = run(self._with_server(scenario))
        assert response["ok"] and response["id"] == 9
        snapshot = response["metrics"]
        counters = {(entry["name"], tuple(sorted(entry["labels"].items()))):
                    entry["value"] for entry in snapshot["counters"]}
        assert counters[("serve.queries", ())] == 1
        assert counters[("serve.op", (("op", "query"),))] == 1
        assert counters[("serve.cache.misses", ())] == 1
        assert counters[("mc.trials", (("backend", "batchsim"),))] == 64
        histogram_names = {entry["name"]
                           for entry in snapshot["histograms"]}
        assert "serve.query.seconds" in histogram_names
        assert "mc.run.seconds" in histogram_names
        # The snapshot must round-trip through the renderer.
        text = render_prometheus(snapshot)
        assert "serve_query_seconds_bucket" in text

    def test_wire_errors_are_counted_by_code(self):
        async def scenario(host, port, server):
            with use_registry() as registry:
                await query_one(host, port, {"scenario": "no-such",
                                             "p": 0.1, "n": 2,
                                             "trials": 8})
                await query_one(host, port, {"op": "bogus"})
                return registry.snapshot()

        snapshot = run(self._with_server(scenario))
        by_code = {entry["labels"]["code"]: entry["value"]
                   for entry in snapshot["counters"]
                   if entry["name"] == "serve.wire.errors"}
        assert by_code["unknown-scenario"] == 1
        assert by_code["bad-request"] == 1

    def test_out_of_order_ids_are_reassembled(self):
        async def scenario(host, port, server):
            slow = {"scenario": "windowed-malicious", "p": 0.25, "n": 2,
                    "trials": 300, "seed": 11}
            fast = {"scenario": "simple-omission", "p": 0.1, "n": 3,
                    "trials": 10, "seed": 1}
            return await query_many(host, port, [slow, fast])

        slow_response, fast_response = run(self._with_server(scenario))
        assert slow_response["backend"] == "batchsim"
        assert fast_response["backend"].startswith("fastsim:")


class TestTraffic:
    def test_pool_is_deterministic_and_distinct(self):
        pool = make_query_pool(6, trials=32, seed=3)
        assert pool == make_query_pool(6, trials=32, seed=3)
        service = SimulationService()
        fingerprints = {service.fingerprint(query) for query in pool}
        assert len(fingerprints) == 6

    def test_duplicate_heavy_burst_shares_most_work(self):
        async def scenario():
            service = SimulationService()
            report = await run_inprocess(
                service, queries=30, pool_size=3, trials=64, seed=0,
                concurrency=6,
            )
            return report, service.stats()

        report, stats = run(scenario())
        assert report.errors == 0
        assert report.queries == 30
        assert report.distinct_fingerprints == 3
        # The acceptance bar: duplicate-heavy load must be absorbed by
        # coalescing + memoisation, not recomputed per query.
        assert report.shared_rate >= 0.5
        assert stats.computed <= report.distinct_fingerprints
        assert report.qps > 0
        # Percentiles come from the shared fixed-bucket histogram; a
        # burst with successes must report an ordered, positive pair.
        assert report.p95_seconds >= report.p50_seconds > 0.0
        description = report.describe()
        assert "shared_rate" in description
        assert "p50=" in description and "p95=" in description
