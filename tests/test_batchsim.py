"""Property tests pinning the batchsim tier to the scalar engine.

The batchsim contract is stronger than statistical agreement: on the
per-trial streams ``root.child("mc", i)`` the vectorised engine must
reproduce the scalar engine's success indicator **trial for trial** —
across both communication models, all supported failure models
(fault-free, omission with scalar ``p`` and per-node ``p_v``,
simple-malicious under every batchable oblivious adversary incl. the
randomised slowing reduction's stream replay, and the LIMITED / FLIP
restriction levels the adversaries certify), and every lifted protocol
family: the replayed-schedule relays, the hello timing channel, the
windowed sliding-window acceptance, the label timetables and the
Kučera compiled plans.  That identity is what lets
:class:`~repro.montecarlo.TrialRunner` promote a scenario from the
``engine`` tier to ``batchsim`` without changing any experiment's
numbers.
"""

from functools import partial

import numpy as np
import pytest

from repro.batchsim import PayloadCodec, batch_execution, supports_batchsim
from repro.core import FastFlooding, SimpleMalicious, SimpleOmission
from repro.core.hello import HelloProtocolAlgorithm
from repro.core.kucera import KuceraBroadcast
from repro.core.labels import PrimeScheduleBroadcast, RoundRobinBroadcast
from repro.core.radio_repeat import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.core.windowed import WindowedMalicious
from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import (
    ComplementAdversary,
    EqualizingStarAdversary,
    FaultFree,
    GarbageAdversary,
    JammingAdversary,
    MaliciousFailures,
    OmissionFailures,
    RadioWorstCaseAdversary,
    RandomFlipAdversary,
    Restriction,
    SilentAdversary,
    SlowingAdversary,
)
from repro.graphs import binary_tree, grid, layered_graph, line, star, two_node
from repro.montecarlo import TrialRunner
from repro.radio.closed_form import line_schedule
from repro.radio.layered_broadcast import LayeredScheduleBroadcast
from repro.rng import RngStream, derive_seed

TRIALS = 48
SEED = 20070


def scalar_indicators(algorithm, failure, trials=TRIALS, seed=SEED):
    """The ground truth: one scalar engine execution per trial stream."""
    out = np.empty(trials, dtype=bool)
    for index in range(trials):
        stream = RngStream(derive_seed(seed, "mc", index), ("mc", index))
        result = run_execution(
            algorithm, failure, stream,
            metadata=algorithm.metadata(), record_trace=False,
        )
        out[index] = result.is_successful_broadcast()
    return out


def batch_indicators(algorithm, failure, trials=TRIALS, seed=SEED, chunk=13):
    execution = batch_execution(algorithm, failure)
    assert execution is not None, "scenario unexpectedly ineligible"
    return execution.run(trials, seed, chunk=chunk)


def _tree():
    return binary_tree(3)


def _layered():
    graph = layered_graph(4)
    steps = [{1, 2}, {3}, {1, 4}, {2, 3, 4}, {1}, {2}, {3}, {4}]
    return LayeredScheduleBroadcast(graph, steps)


#: (label, algorithm factory, failure factory) — every supported
#: protocol family x model x failure model combination, including
#: shapes with real radio collisions (grids, jamming, layered steps),
#: the hello / windowed / label-schedule / Kučera-plan lifts, the
#: LIMITED and FLIP restriction levels, and the slowing reduction's
#: adversary-stream replay.  The acceptance bar is >= 24 shapes.
AGREEMENT_SCENARIOS = [
    ("omission-mp-tree",
     lambda: SimpleOmission(_tree(), 0, 1, MESSAGE_PASSING, 2),
     lambda: OmissionFailures(0.4)),
    ("omission-radio-grid",
     lambda: SimpleOmission(grid(3, 3), 0, 1, RADIO, 2),
     lambda: OmissionFailures(0.4)),
    ("fault-free-radio",
     lambda: SimpleOmission(_tree(), 0, 1, RADIO, 1),
     lambda: FaultFree()),
    ("omission-pv-mp",
     lambda: SimpleOmission(_tree(), 0, 1, MESSAGE_PASSING, 2),
     lambda: OmissionFailures(p_v=np.linspace(0.1, 0.8, _tree().order))),
    ("malicious-mp-complement",
     lambda: SimpleMalicious(_tree(), 0, 1, MESSAGE_PASSING, 3),
     lambda: MaliciousFailures(0.3, ComplementAdversary())),
    ("malicious-mp-garbage",
     lambda: SimpleMalicious(_tree(), 0, 1, MESSAGE_PASSING, 3),
     lambda: MaliciousFailures(0.35, GarbageAdversary())),
    ("malicious-radio-worstcase-tree",
     lambda: SimpleMalicious(_tree(), 0, 1, RADIO, 5),
     lambda: MaliciousFailures(0.15, RadioWorstCaseAdversary())),
    ("malicious-radio-worstcase-grid",
     lambda: SimpleMalicious(grid(3, 3), 0, 1, RADIO, 5),
     lambda: MaliciousFailures(0.15, RadioWorstCaseAdversary())),
    ("malicious-radio-jamming-grid",
     lambda: SimpleMalicious(grid(3, 3), 0, 1, RADIO, 5),
     lambda: MaliciousFailures(0.2, JammingAdversary())),
    ("malicious-radio-silent-star",
     lambda: SimpleMalicious(star(5), 0, 1, RADIO, 4),
     lambda: MaliciousFailures(0.3, SilentAdversary())),
    ("flooding-omission",
     lambda: FastFlooding(grid(3, 4), 0, 1, p=0.4),
     lambda: OmissionFailures(0.4)),
    ("flooding-pv",
     lambda: FastFlooding(_tree(), 0, 1, rounds=12),
     lambda: OmissionFailures(p_v=np.linspace(0.05, 0.6, _tree().order))),
    ("radio-repeat-any-omission",
     lambda: RadioRepeat(line_schedule(line(6)), 1, ADOPT_ANY, 3),
     lambda: OmissionFailures(0.4)),
    ("radio-repeat-majority-omission",
     lambda: RadioRepeat(line_schedule(line(6)), 1, ADOPT_MAJORITY, 5),
     lambda: OmissionFailures(0.3)),
    ("radio-repeat-majority-complement",
     lambda: RadioRepeat(line_schedule(line(6)), 1, ADOPT_MAJORITY, 5),
     lambda: MaliciousFailures(0.2, ComplementAdversary())),
    ("layered-omission",
     _layered,
     lambda: OmissionFailures(0.35)),
    # -- hello timing channel (custom HelloProgram) -------------------
    ("hello-mp-silent-limited-zero",
     lambda: HelloProtocolAlgorithm(two_node(), 0, 8),
     lambda: MaliciousFailures(0.5, SilentAdversary(), Restriction.LIMITED)),
    ("hello-mp-garbage-limited-one",
     lambda: HelloProtocolAlgorithm(two_node(), 1, 8),
     lambda: MaliciousFailures(0.4, GarbageAdversary(), Restriction.LIMITED)),
    ("hello-radio-omission-zero",
     lambda: HelloProtocolAlgorithm(two_node(), 0, 6, RADIO),
     lambda: OmissionFailures(0.6)),
    # -- windowed simple-malicious (custom WindowedProgram) -----------
    ("windowed-complement-grid",
     lambda: WindowedMalicious(grid(3, 3), 0, 1, window_length=4),
     lambda: MaliciousFailures(0.3, ComplementAdversary())),
    ("windowed-garbage-limited-tree",
     lambda: WindowedMalicious(_tree(), 0, 1, window_length=5),
     lambda: MaliciousFailures(0.3, GarbageAdversary(), Restriction.LIMITED)),
    ("windowed-omission-tree",
     lambda: WindowedMalicious(_tree(), 0, 1, window_length=4),
     lambda: OmissionFailures(0.35)),
    # -- label timetables (slot-schedule lift) ------------------------
    ("round-robin-omission-tree",
     lambda: RoundRobinBroadcast(_tree(), 0, 1, cycles=8),
     lambda: OmissionFailures(0.5)),
    ("round-robin-pv-tree",
     lambda: RoundRobinBroadcast(_tree(), 0, 1, cycles=8),
     lambda: OmissionFailures(p_v=np.linspace(0.1, 0.7, _tree().order))),
    ("prime-schedule-omission-line",
     lambda: PrimeScheduleBroadcast(line(3), 0, 1, rounds=200),
     lambda: OmissionFailures(0.3)),
    # -- Kučera compiled plans (PlanLift), FLIP restriction -----------
    ("kucera-flip-line",
     lambda: KuceraBroadcast(line(6), 0, 1, p=0.25),
     lambda: MaliciousFailures(0.25, RandomFlipAdversary(),
                               Restriction.FLIP)),
    ("kucera-flip-tree",
     lambda: KuceraBroadcast(_tree(), 0, 1, p=0.25),
     lambda: MaliciousFailures(0.25, RandomFlipAdversary(),
                               Restriction.FLIP)),
    ("kucera-complement-full-line",
     lambda: KuceraBroadcast(line(5), 0, 1, p=0.3),
     lambda: MaliciousFailures(0.3, ComplementAdversary())),
    # -- slowing reduction (per-trial adversary-stream replay) --------
    ("slowing-silent-radio-tree",
     lambda: SimpleMalicious(_tree(), 0, 1, RADIO, 5),
     lambda: MaliciousFailures(
         0.4, SlowingAdversary(SilentAdversary(), 0.4, 0.2))),
    ("slowing-complement-mp-tree",
     lambda: SimpleMalicious(_tree(), 0, 1, MESSAGE_PASSING, 3),
     lambda: MaliciousFailures(
         0.5, SlowingAdversary(ComplementAdversary(), 0.5, 0.3))),
    ("slowing-worstcase-radio-grid",
     lambda: SimpleMalicious(grid(3, 3), 0, 1, RADIO, 5),
     lambda: MaliciousFailures(
         0.3, SlowingAdversary(RadioWorstCaseAdversary(), 0.3, 0.15))),
    ("slowing-windowed-mp",
     lambda: WindowedMalicious(_tree(), 0, 1, window_length=4),
     lambda: MaliciousFailures(
         0.4, SlowingAdversary(GarbageAdversary(), 0.4, 0.25))),
]


#: (label, picklable algorithm factory, failure model) — the process-
#: sharded batchsim suite.  Factories are ``functools.partial`` over
#: library callables (lambdas cannot cross the process boundary) and
#: mirror the scenario shapes above: both communication models, plain /
#: per-node omission, batchable adversaries incl. restriction levels
#: and the slowing stream replay, and every custom program family
#: (hello, windowed, slot-schedule, Kučera plans).  The acceptance bar
#: is >= 8 shapes.
SHARDED_SCENARIOS = [
    ("omission-mp-tree",
     partial(SimpleOmission, binary_tree(3), 0, 1, MESSAGE_PASSING, 2),
     OmissionFailures(0.4)),
    ("omission-radio-grid",
     partial(SimpleOmission, grid(3, 3), 0, 1, RADIO, 2),
     OmissionFailures(0.4)),
    ("omission-pv-mp",
     partial(SimpleOmission, binary_tree(3), 0, 1, MESSAGE_PASSING, 2),
     OmissionFailures(p_v=np.linspace(0.1, 0.8, binary_tree(3).order))),
    ("malicious-mp-garbage-limited",
     partial(SimpleMalicious, binary_tree(3), 0, 1, MESSAGE_PASSING, 3),
     MaliciousFailures(0.35, GarbageAdversary(), Restriction.LIMITED)),
    ("malicious-radio-worstcase-grid",
     partial(SimpleMalicious, grid(3, 3), 0, 1, RADIO, 5),
     MaliciousFailures(0.15, RadioWorstCaseAdversary())),
    ("radio-repeat-majority-omission",
     partial(RadioRepeat, line_schedule(line(6)), 1, ADOPT_MAJORITY, 5),
     OmissionFailures(0.3)),
    ("layered-omission",
     partial(LayeredScheduleBroadcast, layered_graph(4),
             [{1, 2}, {3}, {1, 4}, {2, 3, 4}, {1}, {2}, {3}, {4}]),
     OmissionFailures(0.35)),
    ("hello-radio-omission",
     partial(HelloProtocolAlgorithm, two_node(), 0, 6, RADIO),
     OmissionFailures(0.6)),
    ("windowed-complement-grid",
     partial(WindowedMalicious, grid(3, 3), 0, 1, window_length=4),
     MaliciousFailures(0.3, ComplementAdversary())),
    ("round-robin-omission-tree",
     partial(RoundRobinBroadcast, binary_tree(3), 0, 1, cycles=8),
     OmissionFailures(0.5)),
    ("kucera-flip-line",
     partial(KuceraBroadcast, line(6), 0, 1, p=0.25),
     MaliciousFailures(0.25, RandomFlipAdversary(), Restriction.FLIP)),
    ("slowing-silent-radio-tree",
     partial(SimpleMalicious, binary_tree(3), 0, 1, RADIO, 5),
     MaliciousFailures(0.4, SlowingAdversary(SilentAdversary(), 0.4, 0.2))),
]

#: Enough trials that ``workers=4`` actually cuts four chunks
#: (>= 4 x MIN_BATCHSIM_SHARD).
SHARDED_TRIALS = 520


@pytest.mark.parametrize(
    "factory,failure",
    [pytest.param(factory, failure, id=label)
     for label, factory, failure in SHARDED_SCENARIOS],
)
class TestShardedBatchsim:
    """Process sharding is invisible: bit-identical for any workers=N."""

    def test_bit_identical_across_worker_counts(self, factory, failure):
        results = {}
        for workers in (1, 2, 4):
            runner = TrialRunner(factory, failure, use_fastsim=False,
                                 workers=workers)
            assert runner.dispatch_backend() == "batchsim"
            results[workers] = runner.run(SHARDED_TRIALS, SEED)
        assert all(r.backend == "batchsim" for r in results.values())
        # The report is truthful about the processes each run used.
        assert results[1].workers == 1
        assert results[2].workers == 2
        assert results[4].workers == 4
        np.testing.assert_array_equal(
            results[1].indicators, results[2].indicators
        )
        np.testing.assert_array_equal(
            results[1].indicators, results[4].indicators
        )

    def test_sharded_prefix_matches_scalar_engine(self, factory, failure):
        # Per-trial streams depend only on (seed, index), so the first
        # TRIALS indicators of a sharded run must equal the scalar
        # engine's vector for a TRIALS-sized run — the engine identity
        # holds through the process boundary, not just in-process.
        sharded = TrialRunner(factory, failure, use_fastsim=False,
                              workers=4).run(SHARDED_TRIALS, SEED)
        np.testing.assert_array_equal(
            sharded.indicators[:TRIALS],
            scalar_indicators(factory(), failure),
        )


@pytest.mark.parametrize(
    "make_algorithm,make_failure",
    [pytest.param(algo, fail, id=label)
     for label, algo, fail in AGREEMENT_SCENARIOS],
)
class TestTrialForTrialAgreement:
    def test_batch_equals_scalar_engine(self, make_algorithm, make_failure):
        algorithm = make_algorithm()
        failure = make_failure()
        np.testing.assert_array_equal(
            batch_indicators(algorithm, failure),
            scalar_indicators(algorithm, failure),
        )

    def test_chunking_is_invisible(self, make_algorithm, make_failure):
        algorithm = make_algorithm()
        failure = make_failure()
        whole = batch_indicators(algorithm, failure, chunk=TRIALS)
        slivers = batch_indicators(algorithm, failure, chunk=5)
        np.testing.assert_array_equal(whole, slivers)


class TestEligibility:
    def test_supported_scenarios(self):
        assert supports_batchsim(
            SimpleOmission(_tree(), 0, 1, RADIO, 2), OmissionFailures(0.3)
        )
        assert supports_batchsim(_layered(), OmissionFailures(0.3))
        assert supports_batchsim(
            RoundRobinBroadcast(_tree(), 0, 1, cycles=4),
            OmissionFailures(0.3),
        )
        assert supports_batchsim(
            HelloProtocolAlgorithm(two_node(), 0, 4), OmissionFailures(0.3)
        )
        assert supports_batchsim(
            KuceraBroadcast(line(4), 0, 1, p=0.25),
            MaliciousFailures(0.25, RandomFlipAdversary(), Restriction.FLIP),
        )

    def test_adaptive_adversary_is_rejected(self):
        topology = star(4, source_is_center=False)
        algorithm = SimpleMalicious(topology, 0, 1, RADIO, 5)
        adaptive = MaliciousFailures(
            0.3, EqualizingStarAdversary(source=0, center=1)
        )
        assert adaptive.requires_history
        assert not supports_batchsim(algorithm, adaptive)

    def test_slowing_adversary_is_accepted_via_stream_replay(self):
        algorithm = SimpleMalicious(_tree(), 0, 1, RADIO, 5)
        slowing = MaliciousFailures(
            0.4, SlowingAdversary(SilentAdversary(), 0.4, 0.2)
        )
        assert not slowing.requires_history
        assert supports_batchsim(algorithm, slowing)

    def test_nested_slowing_is_rejected(self):
        # A randomised inner adversary would interleave its own draws
        # on the trial's adversary stream, which the replay cannot
        # reconstruct — the scenario must stay on the scalar engine.
        algorithm = SimpleMalicious(_tree(), 0, 1, RADIO, 5)
        nested = MaliciousFailures(
            0.4,
            SlowingAdversary(
                SlowingAdversary(SilentAdversary(), 0.4, 0.3), 0.4, 0.2
            ),
        )
        assert not supports_batchsim(algorithm, nested)

    def test_certified_restrictions_are_accepted(self):
        algorithm = SimpleMalicious(_tree(), 0, 1, MESSAGE_PASSING, 3)
        limited = MaliciousFailures(
            0.3, ComplementAdversary(), Restriction.LIMITED
        )
        assert supports_batchsim(algorithm, limited)

    def test_out_of_turn_adversary_rejected_under_limited(self):
        algorithm = SimpleMalicious(_tree(), 0, 1, RADIO, 3)
        jamming = MaliciousFailures(
            0.3, JammingAdversary(), Restriction.LIMITED
        )
        assert not supports_batchsim(algorithm, jamming)

    def test_flip_restriction_needs_bit_alphabet(self):
        # The scalar engine raises on non-bit payloads under FLIP; the
        # batch tier must leave such scenarios to it.
        algorithm = SimpleMalicious(
            _tree(), 0, "msg", MESSAGE_PASSING, 3, default="fallback"
        )
        flip = MaliciousFailures(0.3, RandomFlipAdversary(), Restriction.FLIP)
        assert not supports_batchsim(algorithm, flip)
        bits = SimpleMalicious(_tree(), 0, 1, MESSAGE_PASSING, 3)
        assert supports_batchsim(bits, flip)

    def test_radio_only_adversaries_rejected_in_mp(self):
        algorithm = SimpleMalicious(_tree(), 0, 1, MESSAGE_PASSING, 3)
        jamming = MaliciousFailures(0.3, JammingAdversary())
        assert not supports_batchsim(algorithm, jamming)

    def test_algorithm_without_batch_interface_is_rejected(self):
        from repro.engine.protocol import Algorithm

        class Hookless(Algorithm):
            rounds = 3

            def metadata(self):
                return {"source": 0, "source_message": 1}

            def protocol(self, node):  # pragma: no cover - never executed
                raise NotImplementedError

        algorithm = Hookless(_tree(), RADIO)
        assert not supports_batchsim(algorithm, OmissionFailures(0.3))


class TestDispatchTier:
    def test_trial_runner_reports_batchsim_backend(self):
        runner = TrialRunner(
            partial(RadioRepeat, line_schedule(line(5)), 1, ADOPT_MAJORITY, 3),
            OmissionFailures(0.3),
        )
        assert runner.dispatch_entry() is None
        assert runner.dispatch_backend() == "batchsim"
        result = runner.run(30, 5)
        assert result.backend == "batchsim"
        assert result.trials == 30

    def test_fastsim_still_wins_the_first_tier(self):
        runner = TrialRunner(
            partial(SimpleOmission, _tree(), 0, 1, MESSAGE_PASSING, 2),
            OmissionFailures(0.3),
        )
        assert runner.dispatch_backend() == "fastsim:simple-omission"

    def test_custom_success_predicate_disables_batchsim(self):
        runner = TrialRunner(
            partial(RadioRepeat, line_schedule(line(5)), 1, ADOPT_MAJORITY, 3),
            OmissionFailures(0.3),
            success=lambda result: True,
        )
        assert runner.dispatch_backend() == "engine"
        assert runner.run(5, 3).backend == "engine"

    def test_batchsim_indicators_match_engine_workers(self):
        # The tier promotion must be invisible: same indicators as the
        # scalar engine path, for any worker count.
        factory = partial(
            RadioRepeat, line_schedule(line(5)), 1, ADOPT_MAJORITY, 3
        )
        batch = TrialRunner(factory, OmissionFailures(0.3)).run(40, 11)
        sharded = TrialRunner(
            factory, OmissionFailures(0.3),
            use_fastsim=False, use_batchsim=False, workers=3,
        ).run(40, 11)
        assert batch.backend == "batchsim" and sharded.backend == "engine"
        np.testing.assert_array_equal(batch.indicators, sharded.indicators)

    def test_heterogeneous_rates_reach_batchsim_when_fastsim_off(self):
        rates = np.linspace(0.1, 0.7, _tree().order)
        runner = TrialRunner(
            partial(SimpleOmission, _tree(), 0, 1, MESSAGE_PASSING, 2),
            OmissionFailures(p_v=rates),
            use_fastsim=False,
        )
        assert runner.dispatch_backend() == "batchsim"
        engine = TrialRunner(
            partial(SimpleOmission, _tree(), 0, 1, MESSAGE_PASSING, 2),
            OmissionFailures(p_v=rates),
            use_fastsim=False, use_batchsim=False,
        )
        np.testing.assert_array_equal(
            runner.run(40, 9).indicators, engine.run(40, 9).indicators
        )


class TestPayloadCodec:
    def test_round_trip_and_silence(self):
        codec = PayloadCodec([0, 1, "JAM"])
        assert codec.size == 3
        assert codec.decode(codec.code_of("JAM")) == "JAM"
        assert codec.decode(-1) is None
        assert codec.try_code("unknown") is None

    def test_equality_semantics_follow_python(self):
        codec = PayloadCodec([0, 1])
        # 1, True and 1.0 are one payload, as under the scalar engine's
        # output comparison.
        assert codec.code_of(True) == codec.code_of(1) == codec.code_of(1.0)

    def test_flip_codes_closed_alphabet(self):
        codec = PayloadCodec.for_scenario([0, 1], ["JAM"])
        flipped = codec.flip_codes(np.array(
            [codec.code_of(0), codec.code_of(1), codec.code_of("JAM"), -1]
        ))
        assert flipped[0] == codec.code_of(1)
        assert flipped[1] == codec.code_of(0)
        assert flipped[2] == codec.code_of("JAM")  # non-bits map to self
        assert flipped[3] == -1                    # silence stays silence

    def test_rejects_none_and_empty(self):
        with pytest.raises(ValueError):
            PayloadCodec([None])
        with pytest.raises(ValueError):
            PayloadCodec([])

    def test_rejects_non_flip_closed_alphabet(self):
        with pytest.raises(ValueError, match="flip_bit"):
            PayloadCodec([0])  # flip_bit(0) = 1 is missing
        assert PayloadCodec.for_scenario([0]).size == 2  # closure added
