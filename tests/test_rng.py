"""Tests for the hierarchical RNG streams."""

import numpy as np
import pytest

from repro.rng import RngStream, as_stream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_differs_by_seed(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_differs_by_name(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_differs_by_path_depth(self):
        assert derive_seed(7, "a") != derive_seed(7, "a", "a")

    def test_accepts_mixed_name_types(self):
        assert derive_seed(7, "trial", 3, (1, 2)) == derive_seed(7, "trial", 3, (1, 2))

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "x")
        assert 0 <= seed < 1 << 64


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(42).random(10)
        b = RngStream(42).random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(RngStream(1).random(10), RngStream(2).random(10))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RngStream(-1)

    def test_child_reproducible(self):
        a = RngStream(42).child("x", 1).random(5)
        b = RngStream(42).child("x", 1).random(5)
        np.testing.assert_array_equal(a, b)

    def test_child_independent_of_parent_consumption(self):
        parent_a = RngStream(42)
        parent_a.random(100)  # consume from the parent first
        child_a = parent_a.child("x").random(5)
        child_b = RngStream(42).child("x").random(5)
        np.testing.assert_array_equal(child_a, child_b)

    def test_children_enumeration(self):
        kids = list(RngStream(7).children(3))
        assert len(kids) == 3
        draws = [kid.random() for kid in kids]
        assert len(set(draws)) == 3

    def test_bernoulli_scalar_and_vector(self):
        stream = RngStream(3)
        assert isinstance(stream.bernoulli(0.5), bool)
        vector = RngStream(3).child("v").bernoulli(0.5, size=100)
        assert vector.shape == (100,)
        assert vector.dtype == bool

    def test_bernoulli_rate(self):
        draws = RngStream(11).bernoulli(0.3, size=20000)
        assert abs(draws.mean() - 0.3) < 0.02

    def test_integers_range(self):
        draws = RngStream(5).integers(2, 7, size=1000)
        assert draws.min() >= 2 and draws.max() < 7

    def test_choice_scalar(self):
        assert RngStream(5).choice(["a", "b", "c"]) in ("a", "b", "c")

    def test_choice_vector(self):
        picks = RngStream(5).choice(["a", "b"], size=10)
        assert len(picks) == 10
        assert set(picks) <= {"a", "b"}

    def test_permutation(self):
        perm = RngStream(5).permutation(6)
        assert sorted(perm.tolist()) == list(range(6))

    def test_geometric_positive(self):
        draws = RngStream(5).geometric(0.5, size=100)
        assert draws.min() >= 1

    def test_path_recorded(self):
        child = RngStream(9).child("alpha", 2)
        assert child.path == ("alpha", 2)

    def test_seed_property(self):
        assert RngStream(99).seed == 99


class TestAsStream:
    def test_passthrough(self):
        stream = RngStream(1)
        assert as_stream(stream) is stream

    def test_int_coercion(self):
        assert as_stream(5).seed == 5

    def test_numpy_int_coercion(self):
        assert as_stream(np.int64(5)).seed == 5

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="expected an int seed"):
            as_stream("seed")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            as_stream(1.5)
