"""Property tests for radio delivery: CSR cache and batched semantics.

Two invariants:

* ``Topology.csr_neighbors()`` is just another view of ``neighbors()``
  — round-trip equality on every graph family the experiments use;
* ``deliver_radio_batch`` (and the dense CSR path inside the scalar
  ``deliver_radio``) reproduces the scalar collision-as-silence
  semantics exactly, for random transmitter sets of every density.
"""

import numpy as np
import pytest

from repro.engine import deliver_radio, deliver_radio_batch
from repro.engine.simulator import _deliver_radio_dense
from repro.graphs import (
    bfs_tree,
    binary_tree,
    erdos_renyi,
    grid,
    layered_graph,
    line,
    random_tree,
    ring,
    star,
)
from repro.graphs.topology import Topology
from repro.rng import RngStream, derive_seed


def _graph_zoo():
    stream = RngStream(20070)
    return [
        line(1),
        line(7),
        ring(5),
        star(6),
        star(4, source_is_center=False),
        binary_tree(3),
        grid(3, 5),
        layered_graph(3).topology,
        random_tree(14, stream.child("rt"), max_degree=4),
        erdos_renyi(16, 0.25, stream.child("er")),
        # Degenerate shapes the CSR/reduceat path must survive.  The
        # triangle with a trailing isolated node is the regression
        # case where clamping the isolated node's reduceat start
        # truncated the last connected node's collision count.
        Topology(5, [(0, 1), (1, 2)], name="isolated-tail"),
        Topology(4, [(1, 2), (2, 3)], name="isolated-head"),
        Topology(4, [(0, 1), (0, 2), (1, 2)], name="triangle-isolated"),
        Topology(3, [], name="edgeless"),
    ]


@pytest.mark.parametrize("topology", _graph_zoo(), ids=lambda t: t.name)
class TestCsrNeighbors:
    def test_round_trips_against_neighbors(self, topology):
        indptr, indices = topology.csr_neighbors()
        assert indptr.shape == (topology.order + 1,)
        assert indptr[0] == 0 and indptr[-1] == indices.size
        for node in topology.nodes:
            csr_neighbors = tuple(indices[indptr[node]:indptr[node + 1]])
            assert csr_neighbors == topology.neighbors(node)

    def test_tree_topologies_round_trip_through_bfs(self, topology):
        if topology.size != topology.order - 1 or not topology.is_connected():
            pytest.skip("tree check needs a connected tree")
        tree = bfs_tree(topology, 0)
        indptr, indices = topology.csr_neighbors()
        for node in topology.nodes:
            neighbours = set(indices[indptr[node]:indptr[node + 1]])
            expected = set(tree.children(node))
            if tree.parent[node] is not None:
                expected.add(tree.parent[node])
            assert neighbours == expected


@pytest.mark.parametrize("topology", _graph_zoo(), ids=lambda t: t.name)
@pytest.mark.parametrize("density", [0.0, 0.1, 0.5, 0.9])
class TestBatchedDeliveryMatchesScalar:
    def test_batch_equals_scalar_path(self, topology, density):
        rng = np.random.default_rng(
            derive_seed(20070, topology.name, density)
        )
        batch = 24
        transmitting = rng.random((batch, topology.order)) < density
        heard_from = deliver_radio_batch(topology, transmitting)
        for row in range(batch):
            actual = {
                int(node): f"payload-{node}"
                for node in np.nonzero(transmitting[row])[0]
            }
            scalar = deliver_radio(topology, actual)
            for node in topology.nodes:
                if scalar[node] is None:
                    assert heard_from[row, node] == -1
                else:
                    speaker = int(heard_from[row, node])
                    assert actual[speaker] == scalar[node]


class TestScalarDensePath:
    """The CSR/bincount branch of deliver_radio vs the membership scan."""

    @pytest.mark.parametrize("topology", _graph_zoo(), ids=lambda t: t.name)
    def test_dense_helper_matches_sparse_scan(self, topology):
        rng = np.random.default_rng(7)
        for density in (0.2, 0.6, 1.0):
            mask = rng.random(topology.order) < density
            actual = {
                int(node): ("msg", int(node))
                for node in np.nonzero(mask)[0]
            }
            if not actual:
                continue
            dense = _deliver_radio_dense(topology, actual)
            # Reference: the sparse membership scan (force it by
            # feeding transmitters one below the dense threshold is not
            # possible for big sets, so re-derive from first principles).
            for node in topology.nodes:
                speaking = [
                    neighbour for neighbour in topology.neighbors(node)
                    if neighbour in actual
                ]
                if node in actual or len(speaking) != 1:
                    assert dense[node] is None
                else:
                    assert dense[node] == actual[speaking[0]]

    def test_public_function_uses_both_paths_consistently(self):
        topology = grid(4, 4)
        sparse_round = {0: "a", 5: "b"}            # below the threshold
        dense_round = {node: "x" for node in range(12)}  # above it
        assert deliver_radio(topology, sparse_round) == \
            _deliver_radio_dense(topology, sparse_round)
        assert deliver_radio(topology, dense_round) == \
            _deliver_radio_dense(topology, dense_round)


class TestBatchValidation:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            deliver_radio_batch(line(3), np.zeros((2, 7), dtype=bool))
        with pytest.raises(ValueError, match="shape"):
            deliver_radio_batch(line(3), np.zeros(4, dtype=bool))

    def test_empty_batch_and_edgeless_graph(self):
        assert deliver_radio_batch(
            line(3), np.zeros((0, 4), dtype=bool)
        ).shape == (0, 4)
        edgeless = Topology(3, [], name="edgeless")
        out = deliver_radio_batch(edgeless, np.ones((2, 3), dtype=bool))
        assert (out == -1).all()
