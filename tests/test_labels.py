"""Tests for the label-based radio schedules."""

import pytest

from repro.core import PrimeScheduleBroadcast, RoundRobinBroadcast, first_primes
from repro.engine import run_execution
from repro.failures import FaultFree, OmissionFailures
from repro.graphs import binary_tree, line, ring


class TestFirstPrimes:
    def test_known_prefix(self):
        assert first_primes(8) == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_count_validation(self):
        with pytest.raises(ValueError):
            first_primes(0)


class TestRoundRobin:
    def test_one_transmitter_per_round(self):
        algo = RoundRobinBroadcast(ring(6), 0, 1, cycles=4)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        for record in result.trace:
            assert len(record.actual) <= 1
            for node in record.actual:
                assert record.round_index % 6 == node

    def test_fault_free_success(self):
        algo = RoundRobinBroadcast(binary_tree(3), 0, 1, cycles=5)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert result.is_successful_broadcast()

    def test_uninformed_nodes_stay_silent(self):
        # labels reversed along the line: the informed front cannot ride
        # a single cycle, so the far end stays silent in cycle one
        algo = RoundRobinBroadcast(line(4), 0, 1, cycles=1,
                                   labels=[4, 3, 2, 1, 0])
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        transmitters = {n for record in result.trace for n in record.actual}
        assert 4 not in transmitters  # the far end is not yet informed
        assert 0 in transmitters  # the source transmits in its slot

    def test_custom_labels(self):
        algo = RoundRobinBroadcast(line(2), 0, 1, cycles=6,
                                   labels=[2, 1, 0], label_range=3)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert result.is_successful_broadcast()
        for record in result.trace:
            for node in record.actual:
                assert record.round_index % 3 == algo.label_of(node)

    def test_label_validation(self):
        with pytest.raises(ValueError, match="distinct"):
            RoundRobinBroadcast(line(2), 0, 1, cycles=2, labels=[0, 0, 1])
        with pytest.raises(ValueError, match="outside"):
            RoundRobinBroadcast(line(2), 0, 1, cycles=2, labels=[0, 1, 5],
                                label_range=3)

    def test_under_omission(self):
        algo = RoundRobinBroadcast(line(4), 0, 1, cycles=30)
        successes = 0
        for seed in range(40):
            run = RoundRobinBroadcast(line(4), 0, 1, cycles=30)
            result = run_execution(run, OmissionFailures(0.5), seed,
                                   metadata=run.metadata(),
                                   record_trace=False)
            successes += result.is_successful_broadcast()
        assert successes >= 38


class TestPrimeSchedule:
    def test_slots_disjoint_across_nodes(self):
        algo = PrimeScheduleBroadcast(ring(5), 0, 1, rounds=500)
        all_slots = []
        for node in range(5):
            slots = {r for r in range(500) if algo.owns_slot(node, r)}
            all_slots.append(slots)
        for i in range(5):
            for j in range(i + 1, 5):
                assert not all_slots[i] & all_slots[j]

    def test_slots_are_prime_powers(self):
        algo = PrimeScheduleBroadcast(line(1), 0, 1, rounds=100)
        # smallest label gets prime 2: 1-based rounds 2, 4, 8, 16, 32, 64
        slots = {r for r in range(100) if algo.owns_slot(0, r)}
        assert slots == {1, 3, 7, 15, 31, 63}  # 0-based

    def test_fault_free_success(self):
        algo = PrimeScheduleBroadcast(line(3), 0, 1, rounds=400)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert result.is_successful_broadcast()

    def test_slot_count(self):
        algo = PrimeScheduleBroadcast(line(1), 0, 1, rounds=100)
        assert algo.slot_count(0) == 6
