"""Tests for failure models: sampling, omission, malicious enforcement."""

import pytest

from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import (
    Adversary,
    FaultFree,
    GarbageAdversary,
    JammingAdversary,
    MaliciousFailures,
    OmissionFailures,
    Restriction,
    SilentAdversary,
)
from repro.graphs import line, star
from repro.rng import RngStream

from tests.helpers import ScriptedAlgorithm


class TestFaultSampling:
    def test_fault_free_samples_nothing(self):
        assert FaultFree().sample_faulty(RngStream(0), 100) == frozenset()

    def test_rate_statistical(self):
        model = OmissionFailures(0.3)
        stream = RngStream(1)
        total = sum(
            len(model.sample_faulty(stream, 100)) for _ in range(200)
        )
        assert abs(total / 20000 - 0.3) < 0.02

    def test_p_validation(self):
        with pytest.raises(ValueError):
            OmissionFailures(1.0)
        with pytest.raises(ValueError):
            OmissionFailures(-0.1)

    def test_describe(self):
        assert "0.25" in OmissionFailures(0.25).describe()


class TestOmissionSemantics:
    def test_faulty_node_fully_silent(self):
        g = star(2)
        model = OmissionFailures(0.5)
        actual = model.apply(
            0, frozenset({0}), {0: {1: "a", 2: "b"}}, view=None
        )
        assert actual == {}

    def test_non_faulty_pass_through(self):
        model = OmissionFailures(0.5)
        actual = model.apply(0, frozenset({2}), {0: {1: "a"}}, view=None)
        assert actual == {0: {1: "a"}}


class TestMaliciousConstruction:
    def test_requires_adversary_type(self):
        with pytest.raises(TypeError, match="Adversary"):
            MaliciousFailures(0.2, "not an adversary")

    def test_requires_restriction_type(self):
        with pytest.raises(TypeError, match="Restriction"):
            MaliciousFailures(0.2, SilentAdversary(), "full")

    def test_describe_mentions_parts(self):
        text = MaliciousFailures(0.2, SilentAdversary(),
                                 Restriction.LIMITED).describe()
        assert "SilentAdversary" in text and "limited" in text


class _RewriteEverythingAdversary(Adversary):
    """Misbehaving adversary that rewrites fault-free nodes too."""

    def rewrite(self, round_index, faulty, intents, view):
        return {node: "evil" for node in view.topology.nodes}


class _OutOfTurnAdversary(Adversary):
    """Speaks out of turn for every faulty node (radio payloads)."""

    def rewrite(self, round_index, faulty, intents, view):
        return {node: "noise" for node in faulty}


class _DropperAdversary(Adversary):
    """Drops every faulty transmission (legal in limited, not flip)."""

    def rewrite(self, round_index, faulty, intents, view):
        return {}


class TestRestrictionEnforcement:
    def _run(self, model_name, scripts, failure):
        g = star(2)
        algo = ScriptedAlgorithm(g, model_name, scripts, rounds=60)
        return run_execution(algo, failure, seed_or_stream=3)

    def test_rewriting_fault_free_nodes_rejected(self):
        failure = MaliciousFailures(0.5, _RewriteEverythingAdversary())
        with pytest.raises(ValueError, match="fault-free"):
            self._run(RADIO, {0: ["m"] * 60}, failure)

    def test_limited_radio_blocks_out_of_turn(self):
        failure = MaliciousFailures(
            0.5, _OutOfTurnAdversary(), Restriction.LIMITED
        )
        # node 1 never intends to transmit; once it is faulty the
        # adversary tries to make it speak.
        with pytest.raises(ValueError, match="out of turn"):
            self._run(RADIO, {0: ["m"] * 60}, failure)

    def test_full_radio_allows_out_of_turn(self):
        failure = MaliciousFailures(0.5, _OutOfTurnAdversary(), Restriction.FULL)
        result = self._run(RADIO, {0: ["m"] * 60}, failure)
        assert result.rounds == 60

    def test_flip_blocks_dropping(self):
        failure = MaliciousFailures(0.5, _DropperAdversary(), Restriction.FLIP)
        with pytest.raises(ValueError, match="added or removed"):
            self._run(RADIO, {0: [1] * 60}, failure)

    def test_flip_requires_bit_payloads(self):
        from repro.failures import RandomFlipAdversary
        failure = MaliciousFailures(0.5, RandomFlipAdversary(), Restriction.FLIP)
        with pytest.raises(ValueError, match="bit payloads"):
            self._run(RADIO, {0: ["not-a-bit"] * 60}, failure)

    def test_limited_mp_blocks_new_targets(self):
        class NewTargetAdversary(Adversary):
            def rewrite(self, round_index, faulty, intents, view):
                return {node: {1: "x", 2: "x"} for node in faulty}

        failure = MaliciousFailures(
            0.5, NewTargetAdversary(), Restriction.LIMITED
        )
        with pytest.raises(ValueError, match="out of.*turn"):
            self._run(MESSAGE_PASSING, {0: [{1: "m"}] * 60}, failure)

    def test_flip_mp_target_set_preserved(self):
        class TargetDropAdversary(Adversary):
            def rewrite(self, round_index, faulty, intents, view):
                return {node: {} for node in faulty}

        failure = MaliciousFailures(
            0.5, TargetDropAdversary(), Restriction.FLIP
        )
        with pytest.raises(ValueError, match="target set"):
            self._run(MESSAGE_PASSING, {0: [{1: 1}] * 60}, failure)

    def test_silent_adversary_legal_everywhere_except_flip(self):
        for restriction in (Restriction.FULL, Restriction.LIMITED):
            failure = MaliciousFailures(0.5, SilentAdversary(), restriction)
            result = self._run(RADIO, {0: [1] * 60}, failure)
            assert result.rounds == 60


class TestJammingAdversary:
    def test_jams_out_of_turn(self):
        g = star(2)
        algo = ScriptedAlgorithm(g, RADIO, {0: ["m"] * 80}, rounds=80)
        failure = MaliciousFailures(0.5, JammingAdversary())
        run_execution(algo, failure, 7)
        # leaf 1: whenever leaf 2 jammed while the center transmitted,
        # there was a collision -> some deliveries are None
        received = algo.instances[1].received
        assert None in received
        assert "m" in received

    def test_noise_payload_validation(self):
        with pytest.raises(ValueError, match="silence"):
            JammingAdversary(noise=None)


class TestGarbageAdversary:
    def test_corrupts_content_only(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: "real"}] * 80},
                                 rounds=80)
        failure = MaliciousFailures(
            0.5, GarbageAdversary("junk"), Restriction.LIMITED
        )
        run_execution(algo, failure, 11)
        payloads = [box.get(0) for box in algo.instances[1].received]
        assert "junk" in payloads and "real" in payloads
        assert None not in payloads  # garbage corrupts, never drops

    def test_garbage_payload_validation(self):
        with pytest.raises(ValueError, match="silence"):
            GarbageAdversary(None)


class TestHeterogeneousRates:
    """OmissionFailures(p_v=...) — the per-node rate workload."""

    def test_exactly_one_of_p_and_p_v(self):
        with pytest.raises(ValueError):
            OmissionFailures()
        with pytest.raises(ValueError):
            OmissionFailures(0.3, p_v=[0.1, 0.2])

    def test_p_v_validation(self):
        with pytest.raises(ValueError):
            OmissionFailures(p_v=[])
        with pytest.raises(ValueError):
            OmissionFailures(p_v=[[0.1, 0.2]])
        with pytest.raises(ValueError):
            OmissionFailures(p_v=[0.1, 1.0])
        with pytest.raises(ValueError):
            OmissionFailures(p_v=[-0.1, 0.5])

    def test_p_property_guards_heterogeneous_models(self):
        model = OmissionFailures(p_v=[0.1, 0.2, 0.3])
        with pytest.raises(ValueError, match="p_vector"):
            model.p
        assert list(model.p_vector) == [0.1, 0.2, 0.3]
        assert OmissionFailures(0.25).p_vector is None

    def test_rates_checks_network_order(self):
        model = OmissionFailures(p_v=[0.1, 0.2, 0.3])
        assert list(model.rates(3)) == [0.1, 0.2, 0.3]
        with pytest.raises(ValueError, match="3 entries"):
            model.rates(5)
        assert OmissionFailures(0.25).rates(7) == 0.25

    def test_p_vector_is_immutable(self):
        model = OmissionFailures(p_v=[0.1, 0.2])
        with pytest.raises(ValueError):
            model.p_vector[0] = 0.9

    def test_per_node_rates_statistical(self):
        model = OmissionFailures(p_v=[0.0, 0.2, 0.8])
        stream = RngStream(5)
        counts = [0, 0, 0]
        rounds = 4000
        for _ in range(rounds):
            for node in model.sample_faulty(stream, 3):
                counts[node] += 1
        assert counts[0] == 0
        assert abs(counts[1] / rounds - 0.2) < 0.03
        assert abs(counts[2] / rounds - 0.8) < 0.03

    def test_scalar_and_vector_share_stream_consumption(self):
        # A constant vector must reproduce the scalar model's faulty
        # sets bit for bit (both draw one uniform per node per round).
        uniform = OmissionFailures(0.4)
        vector = OmissionFailures(p_v=[0.4, 0.4, 0.4, 0.4])
        uniform_stream = RngStream(9)
        vector_stream = RngStream(9)
        assert [
            uniform.sample_faulty(uniform_stream, 4) for _ in range(5)
        ] == [
            vector.sample_faulty(vector_stream, 4) for _ in range(5)
        ]

    def test_describe_summarises_the_ramp(self):
        text = OmissionFailures(p_v=[0.1, 0.2, 0.5]).describe()
        assert "0.1" in text and "0.5" in text and "n=3" in text
