"""Tests for the Chernoff/binomial machinery."""

import math
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.chernoff import (
    binomial_tail_ge,
    binomial_tail_le,
    chernoff_tail_above,
    chernoff_tail_below,
    hoeffding_tail,
    majority_error_probability,
    repetitions_for_all_silent,
    repetitions_for_majority,
    union_bound_target,
)


def brute_force_tail_ge(trials, threshold, prob):
    """Exact tail by direct summation."""
    k = math.ceil(threshold)
    return sum(
        math.comb(trials, i) * prob ** i * (1 - prob) ** (trials - i)
        for i in range(max(k, 0), trials + 1)
    )


class TestBinomialTails:
    def test_against_brute_force(self):
        for trials, prob in product([1, 4, 9, 16], [0.0, 0.2, 0.5, 0.9, 1.0]):
            for threshold in (0, trials / 2, trials - 1, trials):
                expected = brute_force_tail_ge(trials, threshold, prob)
                assert binomial_tail_ge(trials, threshold, prob) == pytest.approx(
                    expected, abs=1e-12
                )

    def test_fractional_threshold_rounds_up(self):
        # P[X >= 2.5] = P[X >= 3]
        assert binomial_tail_ge(10, 2.5, 0.3) == binomial_tail_ge(10, 3, 0.3)

    def test_le_plus_ge_complementary(self):
        for trials in (5, 12):
            for k in range(trials + 1):
                total = binomial_tail_le(trials, k, 0.4) + binomial_tail_ge(
                    trials, k + 1, 0.4
                )
                assert total == pytest.approx(1.0, abs=1e-12)

    def test_edge_thresholds(self):
        assert binomial_tail_ge(10, 0, 0.5) == 1.0
        assert binomial_tail_ge(10, 11, 0.5) == 0.0
        assert binomial_tail_le(10, -1, 0.5) == 0.0
        assert binomial_tail_le(10, 10, 0.5) == 1.0

    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_tail_in_unit_interval(self, trials, prob):
        value = binomial_tail_ge(trials, trials / 2, prob)
        assert 0.0 <= value <= 1.0

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_tail_monotone_in_threshold(self, trials):
        values = [binomial_tail_ge(trials, k, 0.37) for k in range(trials + 1)]
        assert values == sorted(values, reverse=True)


class TestMajorityError:
    def test_single_trial(self):
        assert majority_error_probability(1, 0.3) == pytest.approx(0.3)

    def test_decreases_with_repetitions_below_half(self):
        values = [majority_error_probability(m, 0.3) for m in (1, 5, 21, 75)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 1e-3

    def test_does_not_converge_above_half(self):
        assert majority_error_probability(201, 0.6) > 0.9

    def test_exactly_half_is_coin_flip_ish(self):
        # with p = 1/2 the tail P[X >= m/2] stays near 1/2 (above, due
        # to the tie being counted as error)
        assert 0.5 <= majority_error_probability(100, 0.5) <= 0.6


class TestChernoffForms:
    def test_hoeffding_dominates_exact(self):
        # P[Bin(n, .5) >= .5n + dev*n] <= exp(-2 n dev^2)
        n, dev = 100, 0.1
        exact = binomial_tail_ge(n, n * (0.5 + dev), 0.5)
        assert exact <= hoeffding_tail(n, dev)

    def test_chernoff_below_dominates_exact(self):
        n, p, frac = 200, 0.4, 0.5
        exact = binomial_tail_le(n, (1 - frac) * n * p, p)
        assert exact <= chernoff_tail_below(n, p, frac)

    def test_chernoff_above_dominates_exact(self):
        n, p, frac = 200, 0.4, 0.5
        exact = binomial_tail_ge(n, (1 + frac) * n * p, p)
        assert exact <= chernoff_tail_above(n, p, frac)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            chernoff_tail_below(10, 0.5, 1.5)


class TestRepetitionCalculators:
    def test_all_silent_requirement(self):
        m = repetitions_for_all_silent(0.3, 1e-4)
        assert 0.3 ** m <= 1e-4
        assert 0.3 ** (m - 1) > 1e-4  # minimality

    def test_all_silent_p_zero(self):
        assert repetitions_for_all_silent(0.0, 0.01) == 1

    def test_majority_requirement_and_minimality(self):
        m = repetitions_for_majority(0.3, 1e-6)
        assert majority_error_probability(m, 0.3) <= 1e-6
        assert majority_error_probability(m - 1, 0.3) > 1e-6

    def test_majority_rejects_half(self):
        with pytest.raises(ValueError, match="1/2"):
            repetitions_for_majority(0.5, 0.01)

    def test_majority_single_when_easy(self):
        assert repetitions_for_majority(0.001, 0.01) == 1

    def test_growth_is_logarithmic(self):
        # doubling the exponent of the target should roughly double m
        m1 = repetitions_for_majority(0.3, 1e-4)
        m2 = repetitions_for_majority(0.3, 1e-8)
        assert 1.5 < m2 / m1 < 2.6


class TestUnionBoundTarget:
    def test_default_square(self):
        assert union_bound_target(10) == pytest.approx(0.01)

    def test_custom_power(self):
        assert union_bound_target(10, 3.0) == pytest.approx(0.001)

    def test_single_node(self):
        assert union_bound_target(1) == 0.25
