"""Tests for Algorithm Simple-Omission."""

import pytest

from repro.analysis.estimation import estimate_success
from repro.core import SimpleOmission
from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import FaultFree, OmissionFailures
from repro.fastsim.closed_forms import simple_omission_success_probability
from repro.graphs import bfs_tree, binary_tree, grid, line, star
from repro.rng import RngStream


class TestConstruction:
    def test_phase_length_from_p(self):
        algo = SimpleOmission(line(4), 0, 1, MESSAGE_PASSING, p=0.5)
        assert algo.phase_length >= 1
        assert 0.5 ** algo.phase_length <= 1 / 25

    def test_requires_phase_length_or_p(self):
        with pytest.raises(ValueError, match="phase_length or p"):
            SimpleOmission(line(4), 0, 1, MESSAGE_PASSING)

    def test_rounds(self):
        algo = SimpleOmission(line(4), 0, 1, RADIO, phase_length=3)
        assert algo.rounds == 5 * 3

    def test_rejects_none_message(self):
        with pytest.raises(ValueError, match="silence"):
            SimpleOmission(line(4), 0, None, RADIO, phase_length=3)

    def test_rejects_mismatched_tree(self):
        tree = bfs_tree(line(4), 1)
        with pytest.raises(ValueError, match="rooted at"):
            SimpleOmission(line(4), 0, 1, RADIO, phase_length=3, tree=tree)

    def test_rejects_bad_model(self):
        with pytest.raises(ValueError, match="model"):
            SimpleOmission(line(4), 0, 1, "telepathy", phase_length=3)


class TestFaultFreeCorrectness:
    @pytest.mark.parametrize("model", [MESSAGE_PASSING, RADIO])
    @pytest.mark.parametrize("builder,source", [
        (lambda: line(6), 0),
        (lambda: binary_tree(3), 0),
        (lambda: grid(3, 4), 5),
        (lambda: star(5), 0),
    ])
    def test_broadcast_succeeds(self, model, builder, source):
        topology = builder()
        algo = SimpleOmission(topology, source, "payload", model, phase_length=2)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert result.is_successful_broadcast()

    def test_single_transmitter_per_round(self):
        algo = SimpleOmission(binary_tree(3), 0, 1, RADIO, phase_length=3)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        for record in result.trace:
            assert len(record.actual) <= 1
            expected = algo.schedule.transmitter_at(record.round_index)
            if record.actual:
                assert set(record.actual) == {expected}


class TestUnderFailures:
    def test_uninformed_nodes_output_default(self):
        # p extremely high and m = 1: phases mostly fail
        algo = SimpleOmission(line(5), 0, "msg", MESSAGE_PASSING,
                              phase_length=1, default="dflt")
        result = run_execution(algo, OmissionFailures(0.95), 3,
                               metadata=algo.metadata())
        outputs = set(result.outputs.values())
        assert outputs <= {"msg", "dflt"}
        assert "dflt" in outputs  # with p=0.95 some phase certainly failed

    @pytest.mark.parametrize("model", [MESSAGE_PASSING, RADIO])
    def test_engine_matches_closed_form(self, model):
        topology = binary_tree(3)
        tree = bfs_tree(topology, 0)
        p, m, trials = 0.4, 3, 400
        exact = simple_omission_success_probability(tree, m, p)

        def trial(stream: RngStream) -> bool:
            algo = SimpleOmission(topology, 0, 1, model, phase_length=m)
            result = run_execution(algo, OmissionFailures(p), stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, trials, 11)
        assert outcome.lower - 0.02 <= exact <= outcome.upper + 0.02

    def test_almost_safe_at_high_p(self):
        topology = star(10)
        algo = SimpleOmission(topology, 0, 1, RADIO, p=0.9)

        def trial(stream: RngStream) -> bool:
            run = SimpleOmission(topology, 0, 1, RADIO,
                                 phase_length=algo.phase_length)
            result = run_execution(run, OmissionFailures(0.9), stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 150, 13)
        assert outcome.estimate >= 1 - 2 / topology.order


class TestCounterfactualTwin:
    def test_twin_carries_flipped_message(self):
        algo = SimpleOmission(line(3), 0, 1, MESSAGE_PASSING, phase_length=2)
        twin = algo.counterfactual_source(0)
        intent = twin.intent(0)
        assert intent == {1: 0}
