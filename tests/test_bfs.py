"""Tests for BFS spanning trees and the level-order enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    SpanningTree,
    bfs_tree,
    binary_tree,
    grid,
    line,
    random_tree,
    ring,
    star,
)


class TestBfsTree:
    def test_line(self):
        tree = bfs_tree(line(4), 0)
        assert tree.parent == (None, 0, 1, 2, 3)
        assert tree.depth == (0, 1, 2, 3, 4)
        assert tree.order == (0, 1, 2, 3, 4)

    def test_star_from_center(self):
        tree = bfs_tree(star(4), 0)
        assert tree.height == 1
        assert tree.children(0) == (1, 2, 3, 4)

    def test_star_from_leaf(self):
        tree = bfs_tree(star(4, source_is_center=False), 0)
        assert tree.height == 2
        assert tree.parent[1] == 0

    def test_disconnected_raises(self):
        from repro.graphs import Topology
        with pytest.raises(ValueError, match="not connected"):
            bfs_tree(Topology(3, [(0, 1)]), 0)

    def test_bad_source_raises(self):
        with pytest.raises(ValueError):
            bfs_tree(line(3), 9)

    def test_height_equals_radius(self):
        for g, source in [(grid(4, 5), 0), (ring(9), 2), (binary_tree(4), 0)]:
            assert bfs_tree(g, source).height == g.radius_from(source)

    def test_enumeration_is_level_order(self):
        tree = bfs_tree(grid(3, 3), 4)  # center of the grid
        depths = [tree.depth[node] for node in tree.order]
        assert depths == sorted(depths)
        assert tree.order[0] == 4

    def test_deterministic_smallest_parent(self):
        # In a ring both neighbours of the far node are eligible parents;
        # the smaller id must win.
        tree = bfs_tree(ring(4), 0)
        assert tree.parent[2] == 1


class TestSpanningTreeQueries:
    def setup_method(self):
        self.tree = bfs_tree(binary_tree(3), 0)

    def test_children(self):
        assert self.tree.children(0) == (1, 2)
        assert self.tree.children(1) == (3, 4)

    def test_is_leaf(self):
        assert self.tree.is_leaf(14)
        assert not self.tree.is_leaf(0)

    def test_leaves_count(self):
        assert len(self.tree.leaves()) == 8

    def test_rank(self):
        assert self.tree.rank(0) == 0
        assert self.tree.rank(self.tree.order[5]) == 5

    def test_path_to_root(self):
        path = self.tree.path_to_root(11)
        assert path[0] == 11 and path[-1] == 0
        for child, parent in zip(path, path[1:]):
            assert self.tree.parent[child] == parent

    def test_branch_is_reversed_path(self):
        assert self.tree.branch(11) == list(reversed(self.tree.path_to_root(11)))

    def test_subtree_nodes(self):
        sub = self.tree.subtree_nodes(1)
        assert set(sub) == {1, 3, 4, 7, 8, 9, 10}

    def test_as_topology(self):
        as_graph = self.tree.as_topology()
        assert as_graph.size == self.tree.topology.order - 1
        assert as_graph.is_connected()


class TestValidate:
    def test_valid_tree_passes(self):
        bfs_tree(grid(3, 4), 0).validate()

    def test_detects_missing_parent(self):
        g = line(2)
        broken = SpanningTree(
            topology=g, root=0, parent=(None, 0, None),
            depth=(0, 1, 2), order=(0, 1, 2),
        )
        with pytest.raises(ValueError, match="lacks a parent"):
            broken.validate()

    def test_detects_non_edge_parent(self):
        g = line(2)
        broken = SpanningTree(
            topology=g, root=0, parent=(None, 0, 0),
            depth=(0, 1, 1), order=(0, 1, 2),
        )
        with pytest.raises(ValueError, match="not a graph edge"):
            broken.validate()

    def test_detects_depth_violation(self):
        g = line(2)
        broken = SpanningTree(
            topology=g, root=0, parent=(None, 0, 1),
            depth=(0, 1, 3), order=(0, 1, 2),
        )
        with pytest.raises(ValueError, match="depth invariant"):
            broken.validate()

    def test_detects_bad_enumeration(self):
        g = line(2)
        broken = SpanningTree(
            topology=g, root=0, parent=(None, 0, 1),
            depth=(0, 1, 2), order=(0, 2, 1),
        )
        with pytest.raises(ValueError, match="nondecreasing"):
            broken.validate()


class TestTreeProperties:
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_random_tree_bfs_invariants(self, order, seed):
        tree = bfs_tree(random_tree(order, seed), 0)
        tree.validate()
        # every node's rank exceeds its parent's rank
        ranks = {node: rank for rank, node in enumerate(tree.order)}
        for node, parent in enumerate(tree.parent):
            if parent is not None:
                assert ranks[parent] < ranks[node]

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=999))
    @settings(max_examples=30, deadline=None)
    def test_branch_lengths_bounded_by_height(self, order, seed):
        tree = bfs_tree(random_tree(order, seed), 0)
        for leaf in tree.leaves():
            assert len(tree.branch(leaf)) - 1 <= tree.height
