"""Tests for the synchronous engine: delivery semantics, traces, results."""

from typing import Any, Dict, FrozenSet

import pytest

from repro.engine import (
    MESSAGE_PASSING,
    RADIO,
    deliver_message_passing,
    deliver_radio,
    run_execution,
)
from repro.failures import FailureModel, FaultFree, OmissionFailures
from repro.graphs import Topology, line, star

from tests.helpers import ScriptedAlgorithm


class _NoneEmittingFailures(FailureModel):
    """A buggy failure model that maps intents to None transmissions."""

    def __init__(self):
        super().__init__(0.0)

    def apply(self, round_index: int, faulty: FrozenSet[int],
              intents: Dict[int, Any], view) -> Dict[int, Any]:
        return {node: None for node in intents}


class TestMessagePassingDelivery:
    def test_routing(self):
        g = line(2)  # 0-1-2
        inboxes = deliver_message_passing(g, {0: {1: "a"}, 2: {1: "b"}})
        assert inboxes[1] == {0: "a", 2: "b"}
        assert inboxes[0] == {} and inboxes[2] == {}

    def test_distinct_messages_per_neighbour(self):
        g = star(2)
        inboxes = deliver_message_passing(g, {0: {1: "x", 2: "y"}})
        assert inboxes[1] == {0: "x"}
        assert inboxes[2] == {0: "y"}


class TestRadioDelivery:
    def setup_method(self):
        self.g = Topology(4, [(0, 1), (1, 2), (2, 3), (0, 2)])

    def test_single_transmitter_heard_by_neighbours(self):
        heard = deliver_radio(self.g, {1: "msg"})
        assert heard[0] == "msg" and heard[2] == "msg"
        assert heard[3] is None  # not a neighbour of 1

    def test_collision_is_silence(self):
        heard = deliver_radio(self.g, {1: "a", 0: "b"})
        # node 2 neighbours 0, 1 and 3: two transmitters -> silence
        assert heard[2] is None

    def test_own_transmission_blocks_reception(self):
        heard = deliver_radio(self.g, {0: "a", 1: "b"})
        assert heard[0] is None  # 0 transmits, cannot hear 1
        assert heard[1] is None

    def test_exactly_one_of_many_neighbours(self):
        heard = deliver_radio(self.g, {3: "z"})
        assert heard[2] == "z"
        assert heard[0] is None and heard[1] is None

    def test_transmitter_with_no_listeners(self):
        g = line(1)
        heard = deliver_radio(g, {0: "m", 1: "n"})
        assert heard[0] is None and heard[1] is None


class TestExecutionMessagePassing:
    def test_deliveries_reach_protocols(self):
        g = line(2)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: "hi"}]})
        result = run_execution(algo, FaultFree(), 0)
        assert algo.instances[1].received == [{0: "hi"}]
        assert algo.instances[0].received == [{}]
        assert result.rounds == 1

    def test_intent_to_non_neighbour_rejected(self):
        g = line(2)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{2: "bad"}]})
        with pytest.raises(ValueError, match="non-neighbour"):
            run_execution(algo, FaultFree(), 0)

    def test_none_payload_rejected(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: None}]})
        with pytest.raises(ValueError, match="silence"):
            run_execution(algo, FaultFree(), 0)

    def test_radio_intent_shape_rejected_in_radio_model(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, RADIO, {0: [{1: "x"}]})
        with pytest.raises(TypeError, match="radio intent"):
            run_execution(algo, FaultFree(), 0)

    def test_empty_dict_intent_is_silence(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{}]})
        result = run_execution(algo, FaultFree(), 0)
        assert result.trace[0].intents == {}


class TestExecutionRadio:
    def test_collision_on_shared_neighbour(self):
        g = star(2)  # center 0, leaves 1 and 2
        algo = ScriptedAlgorithm(g, RADIO, {1: ["a"], 2: ["a"]})
        run_execution(algo, FaultFree(), 0)
        assert algo.instances[0].received == [None]

    def test_single_transmission_heard(self):
        g = star(2)
        algo = ScriptedAlgorithm(g, RADIO, {0: ["hello"]})
        run_execution(algo, FaultFree(), 0)
        assert algo.instances[1].received == ["hello"]
        assert algo.instances[2].received == ["hello"]


class TestTraceRecording:
    def test_trace_contents(self):
        g = line(2)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING,
                                 {0: [{1: "a"}], 1: [None, {2: "b"}]})
        result = run_execution(algo, FaultFree(), 0)
        assert len(result.trace) == 2
        record = result.trace[0]
        assert record.intents == {0: {1: "a"}}
        assert record.faulty == frozenset()
        assert record.actual == {0: {1: "a"}}
        assert record.deliveries == {1: {0: "a"}}
        assert result.trace[1].deliveries == {2: {1: "b"}}

    def test_trace_disabled(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: "a"}]})
        result = run_execution(algo, FaultFree(), 0, record_trace=False)
        assert result.trace is None

    def test_omission_recorded_as_faulty(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: "a"}] * 50})
        result = run_execution(algo, OmissionFailures(0.5), 1)
        faulty_rounds = [r for r in result.trace if 0 in r.faulty]
        assert faulty_rounds  # p = 0.5 over 50 rounds: essentially certain
        for record in faulty_rounds:
            assert 0 not in record.actual
            assert 1 not in record.deliveries


class TestExecutionResult:
    def test_metadata_and_success(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: "m"}]})
        result = run_execution(algo, FaultFree(), 0,
                               metadata={"source_message": "m"})
        # scripted outputs are the delivery logs, not broadcast values;
        # exercise correct_nodes with an explicit expectation instead
        assert result.correct_nodes([{0: "m"}]) == {1}

    def test_success_requires_metadata(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {})
        result = run_execution(algo, FaultFree(), 0)
        with pytest.raises(ValueError, match="metadata"):
            result.is_successful_broadcast()

    def test_success_error_names_both_missing_pieces(self):
        # No explicit expectation AND no recorded source message: the
        # error must point at the metadata key, not crash elsewhere.
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {})
        result = run_execution(algo, FaultFree(), 0,
                               metadata={"source": 0})  # note: no message
        with pytest.raises(ValueError,
                           match="no expected message.*none recorded"):
            result.is_successful_broadcast()

    def test_success_with_explicit_expected_skips_metadata(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: "m"}]})
        result = run_execution(algo, FaultFree(), 0)
        # Scripted outputs are delivery logs; both nodes would have to
        # match for a "successful broadcast" of that exact log.
        assert not result.is_successful_broadcast(expected=[{0: "m"}])
        assert result.correct_nodes([{0: "m"}]) == {1}

    def test_success_reads_metadata_when_present(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {})
        result = run_execution(algo, FaultFree(), 0,
                               metadata={"source_message": []})
        # every scripted node outputs its (empty) delivery log == []
        assert result.is_successful_broadcast()

    def test_validate_actual_rejects_none_transmission(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: "a"}]})
        with pytest.raises(ValueError,
                           match="None transmission for node 0.*omitted"):
            run_execution(algo, _NoneEmittingFailures(), 0)

    def test_validate_actual_rejects_none_transmission_radio(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, RADIO, {1: ["z"]})
        with pytest.raises(ValueError,
                           match="None transmission for node 1"):
            run_execution(algo, _NoneEmittingFailures(), 0)

    def test_determinism_same_seed(self):
        g = line(1)

        def run(seed):
            algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: "a"}] * 30})
            result = run_execution(algo, OmissionFailures(0.4), seed)
            return [sorted(record.faulty) for record in result.trace]

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestTraceQueries:
    def test_transmissions_and_deliveries(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING,
                                 {0: [{1: "a"}, None, {1: "b"}]})
        result = run_execution(algo, FaultFree(), 0)
        assert result.trace.transmissions_of(0) == [{1: "a"}, {1: "b"}]
        assert result.trace.deliveries_to(1) == [{0: "a"}, {0: "b"}]
        assert result.trace.fault_count() == 0

    def test_append_order_enforced(self):
        from repro.engine.trace import RoundRecord, Trace
        trace = Trace()
        record = RoundRecord(
            round_index=3, intents={}, faulty=frozenset(), actual={},
            deliveries={},
        )
        with pytest.raises(ValueError, match="expected round 0"):
            trace.append(record)
