"""Property tests for batched message-passing delivery.

Mirror of ``tests/test_radio_delivery.py`` for the new
:func:`~repro.engine.simulator.deliver_mp_batch`: the ``(batch, E)``
inbox array must agree with the scalar
:func:`~repro.engine.simulator.deliver_message_passing` routing on
every graph family the experiments use, for random transmitter sets of
every density, both in broadcast-to-all-neighbours form and under a
static target mask (the tree-children pattern the batch programs use).
"""

import numpy as np
import pytest

from repro.engine import deliver_message_passing, deliver_mp_batch
from repro.graphs import (
    bfs_tree,
    binary_tree,
    erdos_renyi,
    grid,
    layered_graph,
    line,
    random_tree,
    ring,
    star,
)
from repro.graphs.topology import Topology
from repro.rng import RngStream, derive_seed


def _graph_zoo():
    stream = RngStream(20071)
    return [
        line(1),
        line(7),
        ring(5),
        star(6),
        binary_tree(3),
        grid(3, 5),
        layered_graph(3).topology,
        random_tree(14, stream.child("rt"), max_degree=4),
        erdos_renyi(16, 0.25, stream.child("er")),
        Topology(5, [(0, 1), (1, 2)], name="isolated-tail"),
        Topology(3, [], name="edgeless"),
    ]


def _slot_owners(topology):
    indptr, _ = topology.csr_neighbors()
    return np.repeat(np.arange(topology.order), np.diff(indptr))


def _scalar_inboxes(topology, codes_row, targets=None):
    """Scalar reference: route one row through deliver_message_passing."""
    indptr, indices = topology.csr_neighbors()
    owners = _slot_owners(topology)
    actual = {}
    for sender in topology.nodes:
        if codes_row[sender] < 0:
            continue
        if targets is None:
            receivers = topology.neighbors(sender)
        else:
            receivers = [
                int(owners[slot])
                for slot in range(indices.size)
                if indices[slot] == sender and targets[slot]
            ]
        per_target = {
            receiver: int(codes_row[sender]) for receiver in receivers
        }
        if per_target:
            actual[sender] = per_target
    return deliver_message_passing(topology, actual)


@pytest.mark.parametrize("topology", _graph_zoo(), ids=lambda t: t.name)
@pytest.mark.parametrize("density", [0.0, 0.3, 0.7, 1.0])
class TestBatchedMpMatchesScalar:
    def test_broadcast_to_all_neighbours(self, topology, density):
        rng = np.random.default_rng(
            derive_seed(20071, topology.name, density)
        )
        batch = 16
        transmitting = rng.random((batch, topology.order)) < density
        codes = np.where(
            transmitting, rng.integers(0, 5, (batch, topology.order)), -1
        )
        inbox = deliver_mp_batch(topology, codes)
        indptr, indices = topology.csr_neighbors()
        owners = _slot_owners(topology)
        for row in range(batch):
            scalar = _scalar_inboxes(topology, codes[row])
            for slot in range(indices.size):
                receiver = int(owners[slot])
                sender = int(indices[slot])
                expected = scalar[receiver].get(sender)
                if expected is None:
                    assert inbox[row, slot] == -1
                else:
                    assert inbox[row, slot] == expected

    def test_static_target_mask(self, topology, density):
        rng = np.random.default_rng(
            derive_seed(20071, "targets", topology.name, density)
        )
        batch = 12
        transmitting = rng.random((batch, topology.order)) < density
        codes = np.where(
            transmitting, rng.integers(0, 4, (batch, topology.order)), -1
        )
        indptr, indices = topology.csr_neighbors()
        owners = _slot_owners(topology)
        targets = rng.random(indices.size) < 0.5
        inbox = deliver_mp_batch(topology, codes, targets)
        for row in range(batch):
            scalar = _scalar_inboxes(topology, codes[row], targets)
            for slot in range(indices.size):
                receiver = int(owners[slot])
                sender = int(indices[slot])
                expected = scalar[receiver].get(sender)
                if expected is None:
                    assert inbox[row, slot] == -1
                else:
                    assert inbox[row, slot] == expected


class TestTreeChildrenPattern:
    def test_watch_parent_slots_deliver_tree_payloads(self):
        # The batch programs' pattern: parents address their children;
        # each child's watched slot must carry the parent's payload.
        topology = grid(3, 4)
        tree = bfs_tree(topology, 0)
        indptr, indices = topology.csr_neighbors()
        owners = _slot_owners(topology)
        parent = np.array(
            [-1 if tree.parent[v] is None else tree.parent[v]
             for v in topology.nodes]
        )
        targets = parent[owners] == indices
        codes = np.arange(topology.order, dtype=np.int64)[np.newaxis, :]
        inbox = deliver_mp_batch(topology, codes, targets)
        for node in topology.nodes:
            for slot in range(int(indptr[node]), int(indptr[node + 1])):
                if targets[slot]:
                    assert inbox[0, slot] == parent[node]
                else:
                    assert inbox[0, slot] == -1


class TestValidation:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            deliver_mp_batch(line(3), np.zeros((2, 7), dtype=np.int64))
        with pytest.raises(ValueError, match="shape"):
            deliver_mp_batch(
                line(3), np.zeros((2, 4), dtype=np.int64),
                targets=np.ones(99, dtype=bool),
            )

    def test_empty_batch_and_edgeless_graph(self):
        assert deliver_mp_batch(
            line(3), np.zeros((0, 4), dtype=np.int64)
        ).shape == (0, 6)
        edgeless = Topology(3, [], name="edgeless")
        out = deliver_mp_batch(edgeless, np.zeros((2, 3), dtype=np.int64))
        assert out.shape == (2, 0)
