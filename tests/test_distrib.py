"""Distributed shard workers: wire protocol, bit-identity, fault injection.

Three layers of pinning:

* **protocol units** — the NDJSON/pickle framing helpers (digest
  verification, the ``repro.`` trust prefix, frame caps);
* **worker wire behaviour** — an in-process :class:`ShardWorker` driven
  over a real loopback socket: hello/ping, structured rejections for
  every malformed-frame class, pickled shard exceptions, and the
  event-loop-stays-responsive guarantee (a ping answers while a shard
  simulates on the execution thread);
* **cross-executor properties** — the reason the whole substrate is
  safe to swap: the same scenario under the same root seed yields
  byte-identical indicators on the in-process, local-pool and
  remote-socket backends (engine and batchsim tiers), ``run_until``
  stops at the same trial count with the same indicator prefix on all
  of them, and killing a remote worker mid-sweep changes nothing but
  wall-clock time.
"""

from __future__ import annotations

import asyncio
from functools import partial

import numpy as np
import pytest

from repro.core import SimpleOmission
from repro.distrib.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    TRUSTED_FUNCTION_PREFIX,
    WORKER_ROLE,
    decode_line,
    decode_payload,
    encode_line,
    encode_payload,
    function_spec,
    resolve_function,
)
from repro.distrib.testing import shard_square
from repro.distrib.worker import ShardWorker
from repro.engine import MESSAGE_PASSING
from repro.failures import OmissionFailures
from repro.graphs import binary_tree
from repro.montecarlo import RemoteSocketExecutor, TrialRunner
from tests.helpers import WorkerProcess

TREE = binary_tree(3)
OMISSION = OmissionFailures(0.3)

# Built from repro classes only: remote workers unpickle shard args in
# a bare interpreter with just ``src`` on the path, so a factory
# defined in this test module would not resolve over there.
tree_factory = partial(SimpleOmission, TREE, 0, 1, MESSAGE_PASSING, 2)


class TestProtocolUnits:
    def test_payload_roundtrip_is_digest_stamped(self):
        value = {"array": [1, 2, 3], "nested": ("a", 0.5)}
        payload, digest = encode_payload(value)
        assert decode_payload(payload, digest) == value

    def test_digest_mismatch_is_rejected(self):
        payload, digest = encode_payload([1, 2, 3])
        _, other_digest = encode_payload([1, 2, 4])
        with pytest.raises(ValueError, match="digest mismatch"):
            decode_payload(payload, other_digest)

    def test_malformed_base64_is_rejected(self):
        _, digest = encode_payload("x")
        with pytest.raises(ValueError, match="not valid base64"):
            decode_payload("!!!not-base64!!!", digest)

    def test_function_spec_roundtrips_through_resolve(self):
        spec = function_spec(shard_square)
        assert spec == "repro.distrib.testing:shard_square"
        assert resolve_function(spec) is shard_square

    def test_lambdas_have_no_wire_spec(self):
        with pytest.raises(ValueError, match="module-level entrypoint"):
            function_spec(lambda x: x)

    def test_resolve_rejects_functions_outside_the_trust_prefix(self):
        with pytest.raises(PermissionError, match=TRUSTED_FUNCTION_PREFIX):
            resolve_function("os:system")

    def test_resolve_rejects_malformed_and_missing_specs(self):
        with pytest.raises(ValueError, match="malformed"):
            resolve_function("no-colon-here")
        with pytest.raises(ValueError, match="does not resolve"):
            resolve_function("repro.distrib.testing:no_such_function")
        with pytest.raises(ValueError, match="not callable"):
            resolve_function("repro.distrib.protocol:PROTOCOL_VERSION")

    def test_line_framing_roundtrip(self):
        frame = encode_line({"op": "ping", "id": 3})
        assert frame.endswith(b"\n")
        assert decode_line(frame) == {"op": "ping", "id": 3}
        with pytest.raises(ValueError, match="not valid JSON"):
            decode_line(b"{nope\n")
        with pytest.raises(ValueError, match="JSON object"):
            decode_line(b"[1,2]\n")


async def _with_worker(interact, **worker_kwargs):
    """Start an in-process worker, run ``interact(reader, writer)``."""
    worker = ShardWorker(**worker_kwargs)
    await worker.start()
    host, port = worker.address
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await interact(reader, writer)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
        await worker.close()


async def _exchange(reader, writer, message):
    writer.write(encode_line(message))
    await writer.drain()
    return decode_line(await reader.readline())


class TestWorkerWire:
    def test_hello_identifies_role_and_protocol(self):
        async def interact(reader, writer):
            reply = await _exchange(reader, writer, {"op": "hello", "id": 7})
            assert reply["id"] == 7
            assert reply["ok"] is True
            assert reply["role"] == WORKER_ROLE
            assert reply["protocol"] == PROTOCOL_VERSION
            assert isinstance(reply["pid"], int)

        asyncio.run(_with_worker(interact))

    def test_ping_and_unknown_op(self):
        async def interact(reader, writer):
            assert (await _exchange(
                reader, writer, {"op": "ping", "id": 0}))["ok"] is True
            reply = await _exchange(reader, writer, {"op": "warp", "id": 1})
            assert reply["ok"] is False
            assert reply["error"] == "bad-request"

        asyncio.run(_with_worker(interact))

    def test_garbage_json_gets_a_structured_rejection(self):
        async def interact(reader, writer):
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = decode_line(await reader.readline())
            assert reply["ok"] is False
            assert reply["error"] == "bad-json"

        asyncio.run(_with_worker(interact))

    def test_run_rejects_protocol_mismatch(self):
        async def interact(reader, writer):
            reply = await _exchange(reader, writer, {
                "op": "run", "id": 2, "protocol": PROTOCOL_VERSION + 1,
            })
            assert reply["error"] == "bad-request"
            assert "protocol mismatch" in reply["message"]

        asyncio.run(_with_worker(interact))

    def test_run_rejects_corrupt_payload(self):
        async def interact(reader, writer):
            payload, _ = encode_payload((3,))
            _, wrong_digest = encode_payload((4,))
            reply = await _exchange(reader, writer, {
                "op": "run", "id": 3, "protocol": PROTOCOL_VERSION,
                "function": "repro.distrib.testing:shard_square",
                "payload": payload, "digest": wrong_digest,
            })
            assert reply["error"] == "bad-payload"

        asyncio.run(_with_worker(interact))

    def test_run_rejects_non_tuple_args(self):
        async def interact(reader, writer):
            payload, digest = encode_payload([3])  # list, not tuple
            reply = await _exchange(reader, writer, {
                "op": "run", "id": 4, "protocol": PROTOCOL_VERSION,
                "function": "repro.distrib.testing:shard_square",
                "payload": payload, "digest": digest,
            })
            assert reply["error"] == "bad-payload"
            assert "tuple" in reply["message"]

        asyncio.run(_with_worker(interact))

    def test_run_refuses_functions_outside_repro(self):
        async def interact(reader, writer):
            payload, digest = encode_payload(("echo pwned",))
            reply = await _exchange(reader, writer, {
                "op": "run", "id": 5, "protocol": PROTOCOL_VERSION,
                "function": "os:system",
                "payload": payload, "digest": digest,
            })
            assert reply["error"] == "forbidden-function"

        asyncio.run(_with_worker(interact))

    def test_run_executes_and_stamps_the_result(self):
        async def interact(reader, writer):
            payload, digest = encode_payload((9,))
            reply = await _exchange(reader, writer, {
                "op": "run", "id": 6, "protocol": PROTOCOL_VERSION,
                "function": "repro.distrib.testing:shard_square",
                "payload": payload, "digest": digest,
            })
            assert reply["ok"] is True
            assert decode_payload(reply["payload"], reply["digest"]) == 81
            assert reply["seconds"] >= 0.0

        asyncio.run(_with_worker(interact))

    def test_shard_exceptions_travel_back_pickled(self):
        async def interact(reader, writer):
            payload, digest = encode_payload((5,))
            reply = await _exchange(reader, writer, {
                "op": "run", "id": 8, "protocol": PROTOCOL_VERSION,
                "function": "repro.distrib.testing:shard_fail_on_odd",
                "payload": payload, "digest": digest,
            })
            assert reply["ok"] is False
            assert reply["error"] == "shard-error"
            error = decode_payload(reply["payload"], reply["digest"])
            assert isinstance(error, ValueError)
            assert "shard value 5 failed" in str(error)

        asyncio.run(_with_worker(interact))

    def test_ping_answers_while_a_shard_is_running(self):
        # The run executes on the worker's execution thread, so a
        # second connection's heartbeat must answer well inside the
        # shard's own duration.
        async def run():
            worker = ShardWorker()
            await worker.start()
            host, port = worker.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                payload, digest = encode_payload((2, 0.6))
                writer.write(encode_line({
                    "op": "run", "id": 9, "protocol": PROTOCOL_VERSION,
                    "function":
                        "repro.distrib.testing:shard_sleep_then_square",
                    "payload": payload, "digest": digest,
                }))
                await writer.drain()
                ping_reader, ping_writer = await asyncio.open_connection(
                    host, port)
                try:
                    reply = await asyncio.wait_for(
                        _exchange(ping_reader, ping_writer,
                                  {"op": "ping", "id": 0}),
                        timeout=0.4)
                    assert reply["ok"] is True
                finally:
                    ping_writer.close()
                    await ping_writer.wait_closed()
                run_reply = decode_line(await reader.readline())
                assert decode_payload(run_reply["payload"],
                                      run_reply["digest"]) == 4
            finally:
                writer.close()
                await writer.wait_closed()
                await worker.close()

        asyncio.run(run())

    def test_frame_cap_fits_bulk_indicator_payloads(self):
        # The cap must bound garbage, not legitimate work: a
        # million-trial uint8 indicator chunk still fits comfortably.
        payload, _ = encode_payload(np.zeros(1_000_000, dtype=np.uint8))
        assert len(payload) < MAX_LINE_BYTES

    def test_negative_die_after_runs_is_rejected(self):
        with pytest.raises(ValueError, match="die_after_runs"):
            ShardWorker(die_after_runs=-1)


@pytest.fixture(scope="module")
def loopback_pair():
    workers = [WorkerProcess(), WorkerProcess()]
    yield workers
    for worker in workers:
        worker.close()


def _runner(executor=None, workers=1, **kwargs):
    return TrialRunner(tree_factory, OMISSION, workers=workers,
                       executor=executor, **kwargs)


class TestCrossExecutorBitIdentity:
    """Same seed, any substrate → byte-identical indicators."""

    def test_engine_tier_identical_across_all_backends(self, loopback_pair):
        remote = RemoteSocketExecutor(
            [(w.host, w.port) for w in loopback_pair])
        kwargs = dict(use_fastsim=False, use_batchsim=False)
        baseline = _runner(**kwargs).run(96, 2007)
        local = _runner(workers=4, **kwargs).run(96, 2007)
        shipped = _runner(executor=remote, workers=4, **kwargs).run(96, 2007)
        assert np.array_equal(baseline.indicators, local.indicators)
        assert np.array_equal(baseline.indicators, shipped.indicators)

    def test_batchsim_tier_identical_across_all_backends(self, loopback_pair):
        remote = RemoteSocketExecutor(
            [(w.host, w.port) for w in loopback_pair])
        kwargs = dict(use_fastsim=False)
        baseline = _runner(**kwargs).run(600, 11)
        local = _runner(workers=2, **kwargs).run(600, 11)
        shipped = _runner(executor=remote, workers=2, **kwargs).run(600, 11)
        assert np.array_equal(baseline.indicators, local.indicators)
        assert np.array_equal(baseline.indicators, shipped.indicators)

    def test_run_until_stops_identically_on_every_backend(
            self, loopback_pair):
        remote = RemoteSocketExecutor(
            [(w.host, w.port) for w in loopback_pair])
        kwargs = dict(use_fastsim=False)
        sequential = [
            _runner(workers=4, **kwargs).run_until(
                0.2, 4096, 13, initial_trials=256),
            _runner(executor=remote, workers=2, **kwargs).run_until(
                0.2, 4096, 13, initial_trials=256),
        ]
        baseline = sequential[0]
        fixed = _runner(**kwargs).run(4096, 13)
        for result in sequential:
            # Identical stopping point and identical indicator prefix —
            # and that prefix is exactly the fixed-budget run's prefix.
            assert result.result.trials == baseline.result.trials
            assert result.met is baseline.met
            assert np.array_equal(result.result.indicators,
                                  baseline.result.indicators)
            assert np.array_equal(
                result.result.indicators,
                fixed.indicators[:result.result.trials])

    def test_mid_sweep_worker_kill_changes_nothing_but_time(self, tmp_path):
        # One worker serves a single shard then hard-exits on its next
        # run op — an OOM kill from the executor's point of view.  The
        # engine tier cuts 4 shards per worker, so the doomed worker is
        # guaranteed to be holding shards when it dies; the survivor
        # absorbs them and the final indicators are the undisturbed ones.
        doomed = WorkerProcess("--die-after-runs", "1")
        steady = WorkerProcess()
        try:
            remote = RemoteSocketExecutor(
                [(doomed.host, doomed.port), (steady.host, steady.port)],
                max_shard_retries=2)
            kwargs = dict(use_fastsim=False, use_batchsim=False)
            undisturbed = _runner(**kwargs).run(96, 3)
            shipped = _runner(executor=remote, workers=4, **kwargs).run(96, 3)
            assert not doomed.alive()
            assert steady.alive()
            assert np.array_equal(undisturbed.indicators, shipped.indicators)
        finally:
            doomed.close()
            steady.close()


