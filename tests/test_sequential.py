"""Property tests of sequential (adaptive) trial allocation.

Pins the ``TrialRunner.run_until`` contract:

* **prefix identity** — the indicators of a sequential run are
  bit-identical to the prefix of a fixed-budget ``run()`` under the
  same root seed, on all three backends and for any worker count;
* **prefix-stable samplers** — every registered fastsim entry flagged
  ``prefix_stable`` actually satisfies ``sample(N)[:m] == sample(m)``
  (and every flagged entry is exercised here, so a new sampler cannot
  claim the flag without joining the property sweep);
* **deterministic stopping** — the stopping point is a pure function
  of the root seed: worker counts do not move it, and a ``max_trials``
  cap is reported honestly as ``met=False``;
* **routing** — a matching fastsim entry *without* the flag is routed
  to the vectorised batchsim tier (or the engine) for the whole
  sequential run;
* the edge-case guards the sequential machinery leans on: empty
  tallies and empty ``TrialResult``s report the degenerate ``(0, 1)``
  interval instead of dividing by zero, and
  ``estimate_success(early_stop_failures=...)`` rejects non-positive
  caps; plus the :class:`WorkerCrashError` shard attribution of the
  shared pool.
"""

import os
from functools import partial

import numpy as np
import pytest

from repro.analysis.estimation import estimate_success
from repro.analysis.thresholds import radio_malicious_threshold
from repro.core import FastFlooding, SimpleMalicious, SimpleOmission
from repro.core.radio_repeat import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.engine import MESSAGE_PASSING, RADIO
from repro.failures import (
    ComplementAdversary,
    EqualizingStarAdversary,
    MaliciousFailures,
    OmissionFailures,
    RadioWorstCaseAdversary,
)
from repro.graphs import binary_tree, layered_graph, line, star
from repro.montecarlo import (
    SEQUENTIAL_BOUNDS,
    TrialRunner,
    RunningTally,
    register_sampler,
    registered_samplers,
    unregister_sampler,
)
from repro.montecarlo.trials import TrialResult
from repro.montecarlo.pool import (
    WorkerCrashError,
    pool_context,
    run_sharded,
)
from repro.radio.closed_form import line_schedule
from repro.radio.layered_broadcast import LayeredScheduleBroadcast
from repro.rng import RngStream, as_stream


TREE = binary_tree(3)
OMISSION = OmissionFailures(0.4)

# Picklable factory (functools.partial over a library callable) so the
# same scenario serves the in-process and the multi-process paths.
mp_factory = partial(SimpleOmission, TREE, 0, 1, MESSAGE_PASSING, 2)


def _q4():
    return radio_malicious_threshold(4)


#: One (factory, failure model) scenario per registered fastsim
#: sampler, keyed by entry name — the prefix-stability property sweep
#: below refuses to pass if a ``prefix_stable`` entry has no scenario.
SAMPLER_SCENARIOS = {
    "simple-omission": (
        partial(SimpleOmission, TREE, 0, 1, MESSAGE_PASSING, 2),
        OmissionFailures(0.4),
    ),
    "simple-malicious-mp": (
        partial(SimpleMalicious, TREE, 0, 1, MESSAGE_PASSING, 5),
        MaliciousFailures(0.2, ComplementAdversary()),
    ),
    "simple-malicious-radio": (
        partial(SimpleMalicious, binary_tree(2), 0, 1, RADIO, 7),
        MaliciousFailures(0.1, RadioWorstCaseAdversary()),
    ),
    "flooding": (
        partial(FastFlooding, TREE, 0, 1, None, 12),
        OmissionFailures(0.4),
    ),
    "radio-repeat-omission": (
        partial(RadioRepeat, line_schedule(line(5)), 1, ADOPT_ANY, 3),
        OmissionFailures(0.4),
    ),
    "radio-repeat-malicious": (
        partial(RadioRepeat, line_schedule(line(4)), 1, ADOPT_MAJORITY, 5),
        MaliciousFailures(0.25, ComplementAdversary()),
    ),
    "equalizing-star": (
        partial(SimpleMalicious, star(4, source_is_center=False), 0, 1,
                RADIO, 15),
        MaliciousFailures(_q4(), EqualizingStarAdversary(source=0, center=1)),
    ),
    "layered-omission": (
        partial(LayeredScheduleBroadcast, layered_graph(3),
                [{1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}], 2),
        OmissionFailures(0.4),
    ),
}


class TestSamplerPrefixStability:
    """``sample(N)[:m] == sample(m)`` for every flagged entry."""

    def test_every_prefix_stable_entry_has_a_scenario(self):
        flagged = {e.name for e in registered_samplers() if e.prefix_stable}
        missing = flagged - set(SAMPLER_SCENARIOS)
        assert not missing, (
            f"prefix_stable sampler(s) {sorted(missing)} have no scenario "
            f"in SAMPLER_SCENARIOS — the flag is a promise this sweep "
            f"must be able to check"
        )

    @pytest.mark.parametrize("name", sorted(SAMPLER_SCENARIOS))
    def test_prefix_bit_identity(self, name):
        factory, failure = SAMPLER_SCENARIOS[name]
        runner = TrialRunner(factory, failure)
        entry = runner.dispatch_entry()
        assert entry is not None and entry.name == name
        assert entry.prefix_stable
        algorithm = factory()
        full = np.asarray(
            entry.sample(algorithm, failure, 1000, as_stream(7)), dtype=bool
        )
        for m in (1, 7, 512, 999):
            part = np.asarray(
                entry.sample(algorithm, failure, m, as_stream(7)), dtype=bool
            )
            np.testing.assert_array_equal(part, full[:m])


class TestPrefixIdentityAcrossBackends:
    """Sequential indicators == fixed-budget prefix, every tier."""

    def test_fastsim_prefix(self):
        runner = TrialRunner(mp_factory, OMISSION)
        assert runner.sequential_backend() == "fastsim:simple-omission"
        outcome = runner.run_until(0.08, 8192, 21)
        fixed = runner.run(8192, 21)
        assert 0 < outcome.trials <= 8192
        np.testing.assert_array_equal(
            outcome.indicators, fixed.indicators[:outcome.trials]
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_batchsim_prefix(self, workers):
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             workers=workers)
        assert runner.sequential_backend() == "batchsim"
        outcome = runner.run_until(0.1, 4096, 5)
        fixed = TrialRunner(mp_factory, OMISSION, use_fastsim=False).run(
            4096, 5
        )
        np.testing.assert_array_equal(
            outcome.indicators, fixed.indicators[:outcome.trials]
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_engine_prefix(self, workers):
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             use_batchsim=False, workers=workers)
        assert runner.sequential_backend() == "engine"
        outcome = runner.run_until(0.3, 512, 13, initial_trials=32)
        fixed = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                            use_batchsim=False).run(512, 13)
        assert outcome.backend == "engine"
        np.testing.assert_array_equal(
            outcome.indicators, fixed.indicators[:outcome.trials]
        )

    def test_workers_do_not_move_the_stopping_point(self):
        outcomes = [
            TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                        workers=workers).run_until(0.1, 4096, 5)
            for workers in (1, 4)
        ]
        assert outcomes[0].trials == outcomes[1].trials
        assert outcomes[0].steps == outcomes[1].steps
        np.testing.assert_array_equal(
            outcomes[0].indicators, outcomes[1].indicators
        )

    def test_same_seed_same_trace_across_tiers(self):
        # Engine and batchsim share per-trial streams, so the whole
        # sequential trace (stopping point included) must agree.
        batch = TrialRunner(mp_factory, OMISSION, use_fastsim=False
                            ).run_until(0.2, 1024, 17, initial_trials=64)
        engine = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             use_batchsim=False
                             ).run_until(0.2, 1024, 17, initial_trials=64)
        assert batch.steps == engine.steps
        np.testing.assert_array_equal(batch.indicators, engine.indicators)


class TestStoppingRule:
    def test_budgets_double_up_to_the_cap(self):
        outcome = TrialRunner(mp_factory, OMISSION).run_until(
            0.02, 3000, 3, initial_trials=512
        )
        assert [step.trials for step in outcome.steps] == [512, 1024, 2048,
                                                           3000]
        assert not outcome.met  # 3000 Hoeffding trials are too few for 0.02
        assert outcome.width > 0.02

    def test_widths_shrink_along_the_trace(self):
        outcome = TrialRunner(mp_factory, OMISSION).run_until(0.05, 20000, 3)
        widths = [step.width for step in outcome.steps]
        assert widths == sorted(widths, reverse=True)
        assert outcome.met and outcome.width <= 0.05
        assert outcome.width == outcome.steps[-1].width

    def test_met_cap_reported_honestly(self):
        outcome = TrialRunner(mp_factory, OMISSION).run_until(0.01, 600, 3)
        assert not outcome.met
        assert outcome.trials == 600
        assert [step.trials for step in outcome.steps] == [512, 600]

    def test_trivial_target_runs_zero_trials(self):
        outcome = TrialRunner(mp_factory, OMISSION).run_until(1.0, 1000, 3)
        assert outcome.met and outcome.trials == 0
        assert outcome.steps == ()
        assert outcome.estimate == 0.0
        assert outcome.width == 1.0
        stats = outcome.stats()
        assert (stats.lower, stats.upper) == (0.0, 1.0)
        assert outcome.describe()  # renders without dividing by zero

    def test_bernstein_stops_decisive_cells_earlier(self):
        # A near-certain scenario: variance ~0, so the Maurer–Pontil
        # margin shrinks ~1/t and beats Hoeffding's 1/sqrt(t).
        runner = TrialRunner(
            partial(SimpleOmission, TREE, 0, 1, MESSAGE_PASSING, 8),
            OmissionFailures(0.1),
        )
        bernstein = runner.run_until(0.05, 65536, 9, bound="bernstein")
        hoeffding = runner.run_until(0.05, 65536, 9, bound="hoeffding")
        assert bernstein.met and hoeffding.met
        assert bernstein.trials < hoeffding.trials

    def test_rejects_unknown_bound(self):
        runner = TrialRunner(mp_factory, OMISSION)
        with pytest.raises(ValueError, match="bound"):
            runner.run_until(0.1, 100, 3, bound="wilson")
        assert "hoeffding" in SEQUENTIAL_BOUNDS

    def test_rejects_bad_target_width_and_cap(self):
        runner = TrialRunner(mp_factory, OMISSION)
        with pytest.raises(ValueError):
            runner.run_until(0.0, 100, 3)
        with pytest.raises(ValueError):
            runner.run_until(1.5, 100, 3)
        with pytest.raises(ValueError):
            runner.run_until(0.1, 0, 3)


class TestNonPrefixStableRouting:
    def test_unflagged_entry_falls_through_to_batchsim(self):
        # Majority adoption under omission failures has no builtin
        # sampler; a registered entry *without* prefix_stable may serve
        # fixed-budget runs but must not serve sequential extensions.
        factory = partial(RadioRepeat, line_schedule(line(5)), 1,
                          ADOPT_MAJORITY, 3)
        failure = OmissionFailures(0.3)
        register_sampler(
            "test-unstable",
            lambda a, f: (isinstance(a, RadioRepeat)
                          and a.rule == ADOPT_MAJORITY
                          and type(f) is OmissionFailures),
            lambda a, f, t, s: s.generator.random(t) < 0.5,
        )
        try:
            runner = TrialRunner(factory, failure)
            assert runner.dispatch_backend() == "fastsim:test-unstable"
            assert runner.sequential_backend() == "batchsim"
            outcome = runner.run_until(0.1, 2048, 7)
            assert outcome.backend == "batchsim"
            # ...and stays a prefix of the batchsim fixed-budget run.
            fixed = TrialRunner(factory, failure, use_fastsim=False).run(
                2048, 7
            )
            np.testing.assert_array_equal(
                outcome.indicators, fixed.indicators[:outcome.trials]
            )
        finally:
            unregister_sampler("test-unstable")


class TestEdgeCaseGuards:
    def test_empty_tally_intervals_are_degenerate(self):
        tally = RunningTally()
        assert tally.estimate == 0.0
        assert tally.wilson() == (0.0, 1.0)
        assert tally.hoeffding() == (0.0, 1.0)
        assert tally.bernstein() == (0.0, 1.0)
        assert tally.clopper_pearson() == (0.0, 1.0)

    def test_empty_trial_result_is_degenerate(self):
        result = TrialResult(
            indicators=np.zeros(0, dtype=bool), backend="engine",
            workers=1, seed=0,
        )
        assert result.trials == 0 and result.estimate == 0.0
        stats = result.stats()
        assert (stats.lower, stats.upper) == (0.0, 1.0)
        assert result.wilson() == (0.0, 1.0)
        assert result.hoeffding() == (0.0, 1.0)
        assert result.bernstein() == (0.0, 1.0)

    def test_early_stop_failures_rejects_non_positive_caps(self):
        def trial(stream):
            return bool(stream.generator.random() < 0.5)

        for bad in (0, -1, 1.5):
            with pytest.raises(ValueError, match="early_stop_failures"):
                estimate_success(trial, 10, 3, early_stop_failures=bad)
        # A positive cap still works and reports the trials actually run.
        result = estimate_success(trial, 50, 3, early_stop_failures=2)
        assert result.trials <= 50


def _exit_worker(value):
    """Shard worker that dies without raising (os._exit skips cleanup)."""
    if value == 0:
        os._exit(1)
    return value


fork_only = pytest.mark.skipif(
    pool_context().get_start_method() != "fork",
    reason="worker-crash attribution is deterministic under fork; spawned "
           "workers re-import this module with different global state",
)


class TestWorkerCrashAttribution:
    @fork_only
    def test_abrupt_death_names_the_lowest_shard(self):
        with pytest.raises(WorkerCrashError, match=r"shard 0 of 3"):
            run_sharded(_exit_worker, [(0,), (1,), (2,)], max_workers=2)

    @fork_only
    def test_crash_error_summarises_the_shard_args(self):
        with pytest.raises(WorkerCrashError, match=r"shard args: \(0,\)"):
            run_sharded(_exit_worker, [(0,), (1,)], max_workers=2)
