"""Tests for the m = ceil(c log n) calculators."""

import math
from itertools import product

import pytest

from repro.core.parameters import (
    mp_malicious_phase_length,
    omission_phase_length,
    radio_malicious_phase_length,
    repetitions_for_signed_majority,
    signed_majority_error,
    theoretical_omission_constant,
)


def brute_force_signed_majority(m, good, bad):
    """Exact P[#bad >= #good] by enumerating all trinomial outcomes."""
    neutral = 1.0 - good - bad
    total = 0.0
    for g in range(m + 1):
        for b in range(m - g + 1):
            s = m - g - b
            if b >= g:
                weight = (
                    math.factorial(m)
                    / (math.factorial(g) * math.factorial(b) * math.factorial(s))
                )
                total += weight * good ** g * bad ** b * neutral ** s
    return total


class TestOmissionPhaseLength:
    def test_budget_met_and_minimal(self):
        for n, p in product([8, 64, 1024], [0.1, 0.5, 0.9]):
            m = omission_phase_length(n, p)
            assert p ** m <= 1.0 / n ** 2
            assert p ** (m - 1) > 1.0 / n ** 2 or m == 1

    def test_logarithmic_growth(self):
        m_small = omission_phase_length(2 ** 6, 0.5)
        m_large = omission_phase_length(2 ** 12, 0.5)
        assert m_large == pytest.approx(2 * m_small, abs=2)

    def test_matches_theoretical_constant(self):
        p, n = 0.5, 10 ** 6
        expected = theoretical_omission_constant(p) * math.log(n)
        assert omission_phase_length(n, p) == pytest.approx(expected, rel=0.05)


class TestMpMaliciousPhaseLength:
    def test_budget_met(self):
        from repro.analysis.chernoff import majority_error_probability
        for n, p in product([16, 256], [0.1, 0.3, 0.45]):
            m = mp_malicious_phase_length(n, p)
            assert majority_error_probability(m, p) <= 1.0 / n ** 2

    def test_grows_near_threshold(self):
        assert mp_malicious_phase_length(64, 0.45) > mp_malicious_phase_length(64, 0.1)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            mp_malicious_phase_length(64, 0.5)


class TestSignedMajorityError:
    def test_against_brute_force(self):
        for m, good, bad in [
            (1, 0.5, 0.2), (3, 0.4, 0.1), (5, 0.3, 0.2), (7, 0.6, 0.05),
        ]:
            expected = brute_force_signed_majority(m, good, bad)
            assert signed_majority_error(m, good, bad) == pytest.approx(
                expected, abs=1e-10
            )

    def test_all_good(self):
        assert signed_majority_error(5, 1.0, 0.0) == pytest.approx(0.0)

    def test_all_bad(self):
        assert signed_majority_error(5, 0.0, 1.0) == pytest.approx(1.0)

    def test_all_silent_counts_as_failure(self):
        # good - bad = 0 <= 0 in every step: vote never gets a signal
        assert signed_majority_error(5, 0.0, 0.0) == pytest.approx(1.0)

    def test_probability_sum_validation(self):
        with pytest.raises(ValueError, match="exceed 1"):
            signed_majority_error(3, 0.7, 0.5)

    def test_decreasing_in_repetitions_when_good_wins(self):
        values = [signed_majority_error(m, 0.5, 0.2) for m in (1, 11, 41)]
        assert values == sorted(values, reverse=True)


class TestRepetitionsForSignedMajority:
    def test_budget_met_and_minimal(self):
        m = repetitions_for_signed_majority(0.5, 0.2, 1e-4)
        assert signed_majority_error(m, 0.5, 0.2) <= 1e-4
        assert signed_majority_error(m - 1, 0.5, 0.2) > 1e-4

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError, match="infeasible"):
            repetitions_for_signed_majority(0.2, 0.3, 0.01)

    def test_equal_rates_rejected(self):
        with pytest.raises(ValueError):
            repetitions_for_signed_majority(0.3, 0.3, 0.01)


class TestRadioMaliciousPhaseLength:
    def test_budget_met(self):
        n, p, delta = 64, 0.05, 4
        m = radio_malicious_phase_length(n, p, delta)
        good = (1 - p) ** (delta + 1)
        assert signed_majority_error(m, good, p) <= 1.0 / n ** 2

    def test_grows_with_degree(self):
        assert radio_malicious_phase_length(64, 0.05, 8) > \
            radio_malicious_phase_length(64, 0.05, 1)

    def test_infeasible_degree_raises(self):
        # p = 0.3 with delta = 10: (0.7)^11 ~ 0.0198 < 0.3
        with pytest.raises(ValueError):
            radio_malicious_phase_length(64, 0.3, 10)
