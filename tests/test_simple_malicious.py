"""Tests for Algorithm Simple-Malicious."""

import pytest

from repro.analysis.chernoff import majority_error_probability
from repro.analysis.estimation import estimate_success
from repro.core import SimpleMalicious, majority_or_default
from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import (
    ComplementAdversary,
    FaultFree,
    MaliciousFailures,
    SilentAdversary,
)
from repro.graphs import binary_tree, grid, line, star
from repro.rng import RngStream


class TestMajorityOrDefault:
    def test_clear_majority(self):
        assert majority_or_default([1, 1, 0], default=9) == 1

    def test_tie_yields_default(self):
        assert majority_or_default([1, 0], default=9) == 9

    def test_empty_yields_default(self):
        assert majority_or_default([], default=9) == 9

    def test_plurality_of_three_values(self):
        assert majority_or_default(["a", "b", "a", "c"], default=9) == "a"

    def test_three_way_tie(self):
        assert majority_or_default(["a", "b", "c"], default=9) == 9


class TestConstruction:
    def test_phase_length_mp(self):
        algo = SimpleMalicious(line(4), 0, 1, MESSAGE_PASSING, p=0.3)
        n = 5
        assert majority_error_probability(algo.phase_length, 0.3) <= 1 / n ** 2

    def test_phase_length_radio_uses_degree(self):
        low_degree = SimpleMalicious(line(8), 0, 1, RADIO, p=0.05)
        high_degree = SimpleMalicious(star(8), 0, 1, RADIO, p=0.05)
        assert high_degree.phase_length > low_degree.phase_length

    def test_infeasible_radio_p_raises(self):
        with pytest.raises(ValueError):
            SimpleMalicious(star(10), 0, 1, RADIO, p=0.3)

    def test_explicit_phase_length_allows_infeasible(self):
        algo = SimpleMalicious(star(10), 0, 1, RADIO, phase_length=5)
        assert algo.phase_length == 5


class TestFaultFree:
    @pytest.mark.parametrize("model", [MESSAGE_PASSING, RADIO])
    def test_broadcast_succeeds(self, model):
        for topology, source in [(binary_tree(3), 0), (grid(3, 3), 4)]:
            algo = SimpleMalicious(topology, source, 1, model, phase_length=3)
            result = run_execution(algo, FaultFree(), 0,
                                   metadata=algo.metadata())
            assert result.is_successful_broadcast()

    def test_votes_collected_from_parent_phase_only(self):
        algo = SimpleMalicious(line(3), 0, "M", MESSAGE_PASSING, phase_length=4)
        protocols = algo.protocols()
        result_protocol = protocols[1]
        # simulate: deliveries inside the parent (source) window count
        result_protocol.deliver(0, {0: "M"})
        result_protocol.deliver(3, {0: "M"})
        # outside the window: ignored
        result_protocol.deliver(4, {0: "X"})
        assert result_protocol.votes == ["M", "M"]
        assert result_protocol.decided_value() == "M"


class TestUnderAdversaries:
    def test_silent_adversary_behaves_like_omission(self):
        topology = binary_tree(3)
        algo = SimpleMalicious(topology, 0, 1, MESSAGE_PASSING, phase_length=9)

        def trial(stream: RngStream) -> bool:
            run = SimpleMalicious(topology, 0, 1, MESSAGE_PASSING,
                                  phase_length=9)
            failure = MaliciousFailures(0.3, SilentAdversary())
            result = run_execution(run, failure, stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 120, 5)
        assert outcome.estimate >= 0.95

    def test_complement_adversary_feasible_regime(self):
        topology = binary_tree(3)
        algo = SimpleMalicious(topology, 0, 1, MESSAGE_PASSING, p=0.3)

        def trial(stream: RngStream) -> bool:
            run = SimpleMalicious(topology, 0, 1, MESSAGE_PASSING,
                                  phase_length=algo.phase_length)
            failure = MaliciousFailures(0.3, ComplementAdversary())
            result = run_execution(run, failure, stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 100, 5)
        assert outcome.estimate >= 1 - 3 / topology.order

    def test_complement_adversary_infeasible_regime(self):
        # p = 0.7 > 1/2: majority voting must collapse
        topology = line(4)

        def trial(stream: RngStream) -> bool:
            run = SimpleMalicious(topology, 0, 1, MESSAGE_PASSING,
                                  phase_length=21)
            failure = MaliciousFailures(0.7, ComplementAdversary())
            result = run_execution(run, failure, stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 80, 5)
        assert outcome.estimate < 0.2

    def test_radio_collects_any_heard_payload(self):
        # in radio, votes come from whatever was heard in the window,
        # regardless of who transmitted
        algo = SimpleMalicious(star(3), 0, 1, RADIO, phase_length=4)
        protocol = algo.protocols()[1]
        protocol.deliver(0, "X")
        protocol.deliver(1, None)  # silence contributes nothing
        protocol.deliver(2, "X")
        assert protocol.votes == ["X", "X"]

    def test_counterfactual_twin_transmits_flip(self):
        algo = SimpleMalicious(line(3), 0, 1, MESSAGE_PASSING, phase_length=2)
        twin = algo.counterfactual_source(0)
        assert twin.intent(0) == {1: 0}
        assert twin.intent(5) is None  # outside the source window
