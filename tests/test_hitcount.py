"""Tests for the Lemma 3.4 hit-count machinery."""

import math
from itertools import combinations

import pytest

from repro.analysis.hitcount import (
    analyze_layer2_schedule,
    cascade_parameters,
    hit_fraction,
    hit_fraction_bound,
    hits_of_set_on_class,
    lemma34_lower_bound,
    min_hits_required,
    useful_size_range,
    weight_cascade,
)
from repro.graphs import layered_graph


def brute_force_hits(m, transmitters, ones):
    """Count weight-`ones` values hit by `transmitters` directly."""
    count = 0
    for value in range(1, 1 << m):
        if bin(value).count("1") != ones:
            continue
        positions = {i + 1 for i in range(m) if value >> i & 1}
        if len(positions & transmitters) == 1:
            count += 1
    return count


class TestMinHitsRequired:
    def test_formula(self):
        assert min_hits_required(64, 0.5) == pytest.approx(
            math.log(64) / math.log(2)
        )

    def test_grows_with_n(self):
        assert min_hits_required(1 << 20, 0.5) > min_hits_required(1 << 10, 0.5)

    def test_grows_with_p(self):
        assert min_hits_required(64, 0.9) > min_hits_required(64, 0.1)


class TestClaim33:
    def test_formula_matches_brute_force(self):
        m = 6
        for size in range(0, m + 1):
            transmitters = set(range(1, size + 1))
            for ones in range(1, m + 1):
                expected = brute_force_hits(m, transmitters, ones)
                assert hits_of_set_on_class(m, size, ones) == expected

    def test_formula_independent_of_which_set(self):
        # h(t, j) depends only on |A_t|, per Claim 3.3
        m, ones = 6, 3
        for subset in combinations(range(1, m + 1), 2):
            assert (
                brute_force_hits(m, set(subset), ones)
                == hits_of_set_on_class(m, 2, ones)
            )


class TestClaim34:
    def test_bound_dominates_exact_fraction(self):
        for m in (5, 8, 12):
            for size in range(1, m + 1):
                for ones in range(1, m + 1):
                    exact = hit_fraction(m, size, ones)
                    bound = hit_fraction_bound(m, size, ones)
                    assert exact <= bound + 1e-12

    def test_fraction_at_most_one(self):
        for size in range(1, 7):
            for ones in range(1, 7):
                assert hit_fraction(6, size, ones) <= 1.0 + 1e-12


class TestCascade:
    def test_parameters_positive(self):
        big_k, z = cascade_parameters(64)
        assert big_k > 1 and z > 0

    def test_small_m_rejected(self):
        with pytest.raises(ValueError):
            cascade_parameters(4)

    def test_cascade_starts_at_m_and_decreases(self):
        weights = weight_cascade(40)
        assert weights[0] == 40
        assert weights == sorted(weights, reverse=True)
        assert all(w >= 1 for w in weights)

    def test_claims_35_36_useful_range(self):
        # wherever the exact fraction reaches 2/K, the set size must lie
        # in the (m/(jK), m(Z+1)/j) window
        m = 32
        big_k, _ = cascade_parameters(m)
        for ones in (1, 2, 4, 8):
            low, high = useful_size_range(m, ones)
            for size in range(1, m + 1):
                if hit_fraction(m, size, ones) > 2.0 / big_k:
                    assert low < size < high


class TestLowerBound:
    def test_positive_and_growing(self):
        values = [lemma34_lower_bound(m, 0.5) for m in (6, 10, 16)]
        assert all(v > 0 for v in values)
        assert values == sorted(values)

    def test_superlogarithmic_vs_opt(self):
        # the bound grows strictly faster than log n: its ratio to
        # opt + log n ~ 2m increases with m (the K = log m / log log m
        # factor — glacial, as the paper's triple-log form suggests)
        ratios = [
            lemma34_lower_bound(m, 0.5) / (2 * m) for m in (8, 64, 4096)
        ]
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0] * 1.3


class TestScheduleAnalysis:
    def test_hits_counted_correctly(self):
        graph = layered_graph(3)
        analysis = analyze_layer2_schedule(graph, [{1}, {2}, {3}])
        # value v gets one hit per one-bit position
        for value in range(1, 8):
            assert analysis.hits_per_value[value] == bin(value).count("1")
        assert analysis.min_hits == 1

    def test_pair_set_hits(self):
        graph = layered_graph(3)
        analysis = analyze_layer2_schedule(graph, [{1, 2}])
        # |A ∩ P_v| = 1 exactly for values with one of bits {1,2}:
        # 001,010 -> 1 hit; 011 -> 2 overlaps -> 0; 101,110 -> 1; 100 -> 0
        assert analysis.hits_per_value[0b001] == 1
        assert analysis.hits_per_value[0b011] == 0
        assert analysis.hits_per_value[0b100] == 0
        assert analysis.hits_per_value[0b101] == 1

    def test_rejects_bad_positions(self):
        graph = layered_graph(3)
        with pytest.raises(ValueError, match="non-bit"):
            analyze_layer2_schedule(graph, [{4}])

    def test_claim_37_on_uniform_schedules(self):
        graph = layered_graph(6)
        steps = [{(i % 6) + 1} for i in range(12)]
        analysis = analyze_layer2_schedule(graph, steps)
        assert analysis.max_step_cascade_contribution < 2.0

    def test_class_fractions_sum_per_step(self):
        graph = layered_graph(5)
        analysis = analyze_layer2_schedule(graph, [{1}, {1, 2, 3}])
        for ones in range(1, 6):
            expected = hit_fraction(5, 1, ones) + hit_fraction(5, 3, ones)
            assert analysis.class_fractions[ones] == pytest.approx(expected)
