"""Tests for the greedy and exact radio schedulers."""

import pytest

from repro.graphs import (
    Topology,
    binary_tree,
    complete,
    grid,
    layered_graph,
    line,
    ring,
    spider,
    star,
)
from repro.radio import (
    greedy_schedule,
    layered_min_layer2_steps,
    optimal_broadcast_time,
    optimal_schedule,
)


class TestGreedy:
    @pytest.mark.parametrize("topology,source", [
        (line(6), 0), (ring(9), 0), (star(6), 0), (grid(3, 4), 0),
        (binary_tree(3), 0), (spider(3, 3), 0), (complete(6), 3),
        (layered_graph(3).topology, 0),
    ])
    def test_produces_valid_schedules(self, topology, source):
        schedule = greedy_schedule(topology, source)
        schedule.validate()

    def test_at_least_radius(self):
        g = grid(3, 4)
        assert greedy_schedule(g, 0).length >= g.radius_from(0)

    def test_star_is_immediate(self):
        assert greedy_schedule(star(8), 0).length == 1

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="not connected"):
            greedy_schedule(Topology(3, [(0, 1)]), 0)

    def test_never_beats_exact(self):
        for topology, source in [(ring(7), 0), (grid(2, 4), 0), (line(5), 0)]:
            greedy_len = greedy_schedule(topology, source).length
            exact_len = optimal_broadcast_time(topology, source)
            assert greedy_len >= exact_len


class TestExact:
    def test_line_optimum_is_radius(self):
        assert optimal_broadcast_time(line(5), 0) == 5

    def test_star_optimum(self):
        assert optimal_broadcast_time(star(5), 0) == 1
        assert optimal_broadcast_time(star(5, source_is_center=False), 0) == 2

    def test_complete_optimum(self):
        assert optimal_broadcast_time(complete(5), 0) == 1

    def test_ring_optimum(self):
        # on a cycle, broadcast proceeds in both directions after step 1
        assert optimal_broadcast_time(ring(6), 0) == 3

    def test_schedule_is_valid(self):
        schedule = optimal_schedule(grid(2, 4), 0)
        schedule.validate()

    def test_single_node(self):
        assert optimal_broadcast_time(Topology(1, []), 0) == 0

    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            optimal_schedule(grid(5, 5), 0)

    def test_layered_optimum_matches_lemma(self):
        for m in (1, 2, 3):
            graph = layered_graph(m)
            assert optimal_broadcast_time(graph.topology, 0) == m + 1


class TestLayeredExhaustive:
    def test_minimum_is_m(self):
        for m in (2, 3, 4):
            assert layered_min_layer2_steps(layered_graph(m)) == m

    def test_m_too_large_rejected(self):
        with pytest.raises(ValueError, match="m <= 5"):
            layered_min_layer2_steps(layered_graph(6))
