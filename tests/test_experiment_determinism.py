"""Determinism regression tests for the experiment runners.

Two pins:

* **Golden reports** — every experiment's quick-mode report at the
  canonical seed is byte-identical to the committed golden file.  The
  goldens for E09, E11, E13 and E14 were captured *before* those
  runners were migrated onto :class:`repro.montecarlo.TrialRunner`:
  equality proves the migration preserved the historical per-trial
  streams bit for bit (TrialRunner derives trial ``i`` from
  ``root.child("mc", i)``, the ``estimate_success`` convention, and the
  fastsim dispatch hands the whole root stream to the sampler exactly
  as the old direct calls did).  The remaining goldens pin the
  post-migration reports so future refactors cannot silently change
  results.
* **Worker invariance** — quick-mode reports must be bit-identical for
  any ``workers=`` count: per-trial streams depend only on the trial
  index, never on the sharding.
"""

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, run_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"
SEED = 2007
ALL_EXPERIMENTS = [f"E{i:02d}" for i in range(1, 16)]

#: Runners whose goldens predate their TrialRunner migration — for
#: these, golden equality certifies bit-exact stream preservation.
#: E11 left this set when its fastsim sampler moved to named child
#: streams (the prefix-stability contract sequential runs require):
#: the sampler's bit pattern legitimately changed, so its golden was
#: re-pinned and now certifies the post-refactor draws instead.
PRE_MIGRATION_GOLDENS = {"E09", "E13", "E14"}

#: Migrated runners cheap enough to re-run with a process pool.  E04
#: keeps the engine tier (its equalizing adversary is adaptive), so it
#: exercises the sharded path for real; the vectorised runners — E13
#: and E14 now dispatch to batchsim — prove the worker knob cannot
#: leak into the sampler draws or the batched stream replay.
WORKER_INVARIANT_EXPERIMENTS = ["E04", "E05", "E06", "E08", "E11", "E13",
                                "E14"]


def _render(experiment_id: str, workers: int = 1) -> str:
    report = run_experiment(
        experiment_id,
        ExperimentConfig(seed=SEED, quick=True, workers=workers),
    )
    return report.render()


@pytest.mark.parametrize("experiment_id", ALL_EXPERIMENTS)
def test_quick_report_matches_golden(experiment_id):
    golden_path = GOLDEN_DIR / f"{experiment_id}_quick_seed{SEED}.txt"
    golden = golden_path.read_text()
    rendered = _render(experiment_id) + "\n"
    assert rendered == golden, (
        f"{experiment_id} quick report drifted from {golden_path.name}"
        + (
            " — this golden predates the TrialRunner migration, so the "
            "drift means per-trial streams changed"
            if experiment_id in PRE_MIGRATION_GOLDENS else ""
        )
    )


@pytest.mark.parametrize("experiment_id", WORKER_INVARIANT_EXPERIMENTS)
def test_quick_report_invariant_across_workers(experiment_id):
    assert _render(experiment_id, workers=1) == \
        _render(experiment_id, workers=4)


@pytest.mark.parametrize("experiment_id", ["E09", "E14"])
def test_batchsim_promoted_report_matches_golden_under_workers(experiment_id):
    # The batchsim-promoted runners, executed with a worker pool
    # requested, must still render byte-identically to the committed
    # (pre-migration) goldens: neither the batchsim promotion nor the
    # worker plumbing may perturb the per-trial streams.
    golden_path = GOLDEN_DIR / f"{experiment_id}_quick_seed{SEED}.txt"
    assert _render(experiment_id, workers=4) + "\n" == \
        golden_path.read_text()
