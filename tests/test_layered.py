"""Tests for the Section 3 lower-bound graph G(m)."""

import pytest

from repro.graphs import layered_graph


class TestStructure:
    def test_order(self):
        for m in (1, 2, 3, 4, 6):
            graph = layered_graph(m)
            assert graph.topology.order == (1 << m) + m

    def test_source_and_layers(self):
        graph = layered_graph(3)
        assert graph.source == 0
        assert list(graph.bit_nodes) == [1, 2, 3]
        assert len(list(graph.value_nodes)) == 7

    def test_source_adjacent_to_all_bit_nodes_only(self):
        graph = layered_graph(4)
        assert graph.topology.neighbors(0) == tuple(range(1, 5))

    def test_value_adjacency_matches_binary_representation(self):
        graph = layered_graph(3)
        # value 5 = 101b: positions {1, 3}
        node = graph.value_node(5)
        neighbours = set(graph.topology.neighbors(node))
        assert neighbours == {graph.bit_node(1), graph.bit_node(3)}

    def test_bit_node_degree(self):
        graph = layered_graph(3)
        # b_i: source + all values with bit i set = 1 + 2^(m-1)
        for position in range(1, 4):
            assert graph.topology.degree(graph.bit_node(position)) == 1 + 4

    def test_edge_count(self):
        graph = layered_graph(4)
        m = 4
        # m source edges + sum over values of popcount = m + m * 2^(m-1)
        assert graph.topology.size == m + m * (1 << (m - 1))

    def test_connected(self):
        assert layered_graph(5).topology.is_connected()

    def test_radius_is_two(self):
        assert layered_graph(4).topology.radius_from(0) == 2


class TestNodeMaps:
    def test_value_node_roundtrip(self):
        graph = layered_graph(4)
        for value in (1, 7, 15):
            assert graph.value_of(graph.value_node(value)) == value

    def test_value_node_bounds(self):
        graph = layered_graph(3)
        with pytest.raises(ValueError):
            graph.value_node(0)
        with pytest.raises(ValueError):
            graph.value_node(8)

    def test_bit_node_bounds(self):
        graph = layered_graph(3)
        with pytest.raises(ValueError):
            graph.bit_node(0)
        with pytest.raises(ValueError):
            graph.bit_node(4)

    def test_value_of_rejects_non_value_nodes(self):
        graph = layered_graph(3)
        with pytest.raises(ValueError):
            graph.value_of(0)


class TestCombinatorics:
    def test_positions(self):
        graph = layered_graph(4)
        assert graph.positions(0b1011) == {1, 2, 4}
        assert graph.positions(1) == {1}

    def test_positions_bounds(self):
        with pytest.raises(ValueError):
            layered_graph(3).positions(8)

    def test_weight_class(self):
        graph = layered_graph(4)
        ones_2 = graph.weight_class(2)
        assert len(ones_2) == 6
        assert all(bin(v).count("1") == 2 for v in ones_2)

    def test_weight_class_size_matches(self):
        graph = layered_graph(5)
        for j in range(1, 6):
            assert graph.weight_class_size(j) == len(graph.weight_class(j))

    def test_is_hit(self):
        graph = layered_graph(4)
        assert graph.is_hit(0b0101, {1})       # exactly position 1
        assert not graph.is_hit(0b0101, {1, 3})  # both positions: collision
        assert not graph.is_hit(0b0101, {2})   # no transmitting neighbour
        assert graph.is_hit(0b0101, {1, 2})    # position 2 irrelevant

    def test_every_value_hittable_by_singletons(self):
        graph = layered_graph(4)
        for value in range(1, 16):
            assert any(
                graph.is_hit(value, {pos}) for pos in graph.positions(value)
            )
