"""Tests for the planner and the tree-lifted Kučera algorithm."""

import pytest

from repro.analysis.estimation import estimate_success
from repro.core.kucera import (
    Edge,
    KuceraBroadcast,
    Repeat,
    Serial,
    alpha_exponent,
    build_plan,
    guarantee,
    working_failure_level,
)
from repro.engine import run_execution
from repro.failures import (
    FaultFree,
    MaliciousFailures,
    RandomFlipAdversary,
    Restriction,
    SilentAdversary,
)
from repro.graphs import binary_tree, grid, line
from repro.rng import RngStream


class TestPlanner:
    def test_length_and_failure_targets_met(self):
        for length, target in [(1, 1e-3), (10, 1e-6), (100, 1e-8)]:
            plan = build_plan(length, 0.25, target)
            g = guarantee(plan, 0.25)
            assert g.length >= length
            assert g.failure <= target

    def test_time_linear_in_length(self):
        times = {}
        for length in (16, 256):
            g = guarantee(build_plan(length, 0.2, 1e-6), 0.2)
            times[length] = g.time / g.length
        assert times[256] <= 3 * times[16]

    def test_p_at_half_rejected(self):
        with pytest.raises(ValueError, match="1/2"):
            build_plan(8, 0.5, 1e-3)

    def test_rho_kappa_ordering_enforced(self):
        with pytest.raises(ValueError, match="rho > kappa"):
            build_plan(8, 0.2, 1e-3, rho=3, kappa=3)

    def test_alpha_exponent(self):
        assert alpha_exponent(4, 3) == pytest.approx(3.419, abs=0.01)
        # larger constants approach alpha = 1
        assert alpha_exponent(9, 8) < alpha_exponent(4, 3)

    def test_working_failure_level_contracts(self):
        from repro.analysis.chernoff import binomial_tail_ge
        rho, kappa = 4, 3
        q = working_failure_level(rho, kappa)
        image = binomial_tail_ge(kappa, kappa / 2, 1 - (1 - q) ** rho)
        assert image <= q / 2 + 1e-12

    def test_p_zero_trivial_plan(self):
        plan = build_plan(4, 0.0, 0.5)
        assert guarantee(plan, 0.0).failure == 0.0


class TestAlgorithmFaultFree:
    @pytest.mark.parametrize("topology,source", [
        (line(5), 0), (binary_tree(3), 0), (grid(3, 3), 0),
    ])
    def test_broadcast_succeeds(self, topology, source):
        algo = KuceraBroadcast(topology, source, 1, p=0.2)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert result.is_successful_broadcast()

    def test_bit_zero_also_works(self):
        algo = KuceraBroadcast(line(4), 0, 0, p=0.2, default=1)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert result.is_successful_broadcast()

    def test_rounds_equal_plan_time(self):
        algo = KuceraBroadcast(line(6), 0, 1, p=0.2)
        assert algo.rounds == guarantee(algo.plan, 0.2).time

    def test_plan_too_short_rejected(self):
        short_plan = Repeat(Edge(), 3)  # length 1
        with pytest.raises(ValueError, match="height"):
            KuceraBroadcast(line(5), 0, 1, p=0.2, plan=short_plan)

    def test_describe_mentions_plan(self):
        algo = KuceraBroadcast(line(4), 0, 1, p=0.2)
        assert "plan=" in algo.describe()


class TestAlgorithmUnderFailures:
    def test_flip_adversary_line(self):
        topology = line(8)
        reference = KuceraBroadcast(topology, 0, 1, p=0.25)

        def trial(stream: RngStream) -> bool:
            algo = KuceraBroadcast(topology, 0, 1, p=0.25,
                                   plan=reference.plan)
            failure = MaliciousFailures(0.25, RandomFlipAdversary(),
                                        Restriction.FLIP)
            result = run_execution(algo, failure, stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 30, 3)
        assert outcome.estimate == 1.0  # bound is ~1e-5 per run

    def test_drop_adversary_tree(self):
        # limited-malicious message loss: abstentions, not flips
        topology = binary_tree(3)
        reference = KuceraBroadcast(topology, 0, 1, p=0.25)

        def trial(stream: RngStream) -> bool:
            algo = KuceraBroadcast(topology, 0, 1, p=0.25,
                                   plan=reference.plan)
            failure = MaliciousFailures(0.25, SilentAdversary(),
                                        Restriction.LIMITED)
            result = run_execution(algo, failure, stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 20, 5)
        assert outcome.estimate == 1.0

    def test_branching_nodes_transmit_same_bit_to_all_children(self):
        algo = KuceraBroadcast(binary_tree(2), 0, 1, p=0.2)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        for record in result.trace:
            for node, intent in record.actual.items():
                payloads = set(intent.values())
                assert len(payloads) == 1  # same line bit to every child

    def test_counterfactual_source(self):
        algo = KuceraBroadcast(line(4), 0, 1, p=0.2)
        twin = algo.counterfactual_source(0)
        # the twin's first transmission carries the flipped bit
        for round_index in range(algo.rounds):
            intent = twin.intent(round_index)
            if intent is not None:
                assert intent == {1: 0}
                break
        else:
            pytest.fail("twin never transmitted")
