"""Integration: the paper's four-scenario feasibility matrix on one graph.

One network, one story — the whole Section 2 feasibility map exercised
end to end through the reference engine:

* omission + message passing  -> almost-safe even at p = 0.8
* omission + radio            -> almost-safe even at p = 0.8
* malicious + message passing -> works at p = 0.35, collapses at p = 0.6
* malicious + radio           -> works below p*(Δ), collapses above

These are the library's "does the whole stack tell the paper's story"
tests; per-component behaviour is covered by the unit suites.
"""

import pytest

from repro.analysis.estimation import estimate_success
from repro.analysis.thresholds import radio_malicious_threshold
from repro.core import SimpleMalicious, SimpleOmission
from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import ComplementAdversary, MaliciousFailures, OmissionFailures
from repro.graphs import random_tree
from repro.rng import RngStream

TRIALS = 60


@pytest.fixture(scope="module")
def network():
    """A bounded-degree random tree (so the radio threshold is usable)."""
    return random_tree(24, 99, max_degree=3)


def _rate(trial):
    return estimate_success(trial, TRIALS, 17).estimate


class TestOmissionScenarios:
    @pytest.mark.parametrize("model", [MESSAGE_PASSING, RADIO])
    def test_high_p_still_almost_safe(self, network, model):
        p = 0.8
        algo = SimpleOmission(network, 0, 1, model, p=p)

        def trial(stream: RngStream) -> bool:
            result = run_execution(algo, OmissionFailures(p), stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        assert _rate(trial) >= 1 - 2.5 / network.order


class TestMaliciousMessagePassing:
    def test_below_half_succeeds(self, network):
        p = 0.35
        algo = SimpleMalicious(network, 0, 1, MESSAGE_PASSING, p=p)

        def trial(stream: RngStream) -> bool:
            failure = MaliciousFailures(p, ComplementAdversary())
            result = run_execution(algo, failure, stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        assert _rate(trial) >= 1 - 2.5 / network.order

    def test_above_half_collapses(self, network):
        feasible_m = SimpleMalicious(
            network, 0, 1, MESSAGE_PASSING, p=0.45
        ).phase_length
        p = 0.6
        algo = SimpleMalicious(network, 0, 1, MESSAGE_PASSING,
                               phase_length=feasible_m)

        def trial(stream: RngStream) -> bool:
            failure = MaliciousFailures(p, ComplementAdversary())
            result = run_execution(algo, failure, stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        assert _rate(trial) < 0.3


class TestMaliciousRadio:
    def test_below_threshold_succeeds(self, network):
        p_star = radio_malicious_threshold(network.max_degree())
        p = round(0.5 * p_star, 3)
        algo = SimpleMalicious(network, 0, 1, RADIO, p=p)

        def trial(stream: RngStream) -> bool:
            failure = MaliciousFailures(p, ComplementAdversary())
            result = run_execution(algo, failure, stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        assert _rate(trial) >= 1 - 2.5 / network.order

    def test_above_threshold_collapses(self, network):
        # The complement adversary never jams, so the collapse here comes
        # from running the Theorem 2.4 repetition budget (sized for the
        # sub-threshold p) at a much higher failure rate; the sharp
        # jamming-threshold demonstrations live in E05/E06.
        p_star = radio_malicious_threshold(network.max_degree())
        safe_m = SimpleMalicious(
            network, 0, 1, RADIO, p=round(0.5 * p_star, 3)
        ).phase_length
        p = min(0.45, round(2.0 * p_star, 3))
        algo = SimpleMalicious(network, 0, 1, RADIO, phase_length=safe_m)

        def trial(stream: RngStream) -> bool:
            failure = MaliciousFailures(p, ComplementAdversary())
            result = run_execution(algo, failure, stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        assert _rate(trial) < 0.5
