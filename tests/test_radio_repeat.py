"""Tests for Omission-Radio / Malicious-Radio (Theorem 3.4)."""

import pytest

from repro.analysis.estimation import estimate_success
from repro.core import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.engine import run_execution
from repro.failures import (
    ComplementAdversary,
    FaultFree,
    JammingAdversary,
    MaliciousFailures,
    OmissionFailures,
)
from repro.graphs import layered_graph, line, spider, star
from repro.radio import (
    RadioSchedule,
    layered_schedule,
    line_schedule,
    spider_schedule,
    star_schedule,
)
from repro.rng import RngStream


class TestConstruction:
    def test_rule_validation(self):
        schedule = line_schedule(line(3))
        with pytest.raises(ValueError, match="rule"):
            RadioRepeat(schedule, 1, rule="plurality", phase_length=3)

    def test_invalid_schedule_rejected(self):
        bad = RadioSchedule(line(3), 0, [[0]])
        with pytest.raises(ValueError, match="does not inform"):
            RadioRepeat(bad, 1, phase_length=3)

    def test_rounds_is_opt_times_m(self):
        schedule = spider_schedule(spider(3, 4), 3, 4)
        algo = RadioRepeat(schedule, 1, phase_length=7)
        assert algo.rounds == schedule.length * 7

    def test_phase_length_from_p_by_rule(self):
        schedule = star_schedule(star(4), 0, 0)
        any_rule = RadioRepeat(schedule, 1, rule=ADOPT_ANY, p=0.4)
        maj_rule = RadioRepeat(schedule, 1, rule=ADOPT_MAJORITY, p=0.05)
        assert any_rule.phase_length >= 1
        assert maj_rule.phase_length >= 1

    def test_listening_series_and_parent(self):
        schedule = line_schedule(line(3))
        algo = RadioRepeat(schedule, 1, phase_length=2)
        assert algo.listening_series(0) == -1
        assert algo.listening_series(2) == 1
        assert algo.schedule_parent(2) == 1
        assert algo.schedule_parent(0) is None


class TestFaultFree:
    @pytest.mark.parametrize("rule", [ADOPT_ANY, ADOPT_MAJORITY])
    def test_broadcast_succeeds(self, rule):
        for schedule in (
            line_schedule(line(5)),
            spider_schedule(spider(3, 3), 3, 3),
            layered_schedule(layered_graph(3)),
        ):
            algo = RadioRepeat(schedule, 1, rule=rule, phase_length=3)
            result = run_execution(algo, FaultFree(), 0,
                                   metadata=algo.metadata())
            assert result.is_successful_broadcast()

    def test_transmitters_follow_base_schedule(self):
        schedule = line_schedule(line(3))
        algo = RadioRepeat(schedule, 1, phase_length=2)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        for record in result.trace:
            series = record.round_index // 2
            assert set(record.actual) == set(schedule.transmitters(series))


class TestUnderFailures:
    def test_omission_radio_almost_safe(self):
        schedule = spider_schedule(spider(3, 3), 3, 3)
        n = schedule.topology.order
        algo = RadioRepeat(schedule, 1, rule=ADOPT_ANY, p=0.4)

        def trial(stream: RngStream) -> bool:
            run = RadioRepeat(schedule, 1, rule=ADOPT_ANY,
                              phase_length=algo.phase_length)
            result = run_execution(run, OmissionFailures(0.4), stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 80, 3)
        assert outcome.estimate >= 1 - 2.5 / n

    def test_malicious_radio_with_complement(self):
        schedule = layered_schedule(layered_graph(3))
        algo = RadioRepeat(schedule, 1, rule=ADOPT_MAJORITY, p=0.03)

        def trial(stream: RngStream) -> bool:
            run = RadioRepeat(schedule, 1, rule=ADOPT_MAJORITY,
                              phase_length=algo.phase_length)
            failure = MaliciousFailures(0.03, ComplementAdversary())
            result = run_execution(run, failure, stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 60, 7)
        assert outcome.estimate >= 1 - 2.5 / schedule.topology.order

    def test_malicious_radio_with_jamming(self):
        schedule = star_schedule(star(5), 0, 0)
        algo = RadioRepeat(schedule, 1, rule=ADOPT_MAJORITY, p=0.05)

        def trial(stream: RngStream) -> bool:
            run = RadioRepeat(schedule, 1, rule=ADOPT_MAJORITY,
                              phase_length=algo.phase_length)
            failure = MaliciousFailures(0.05, JammingAdversary())
            result = run_execution(run, failure, stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 60, 9)
        assert outcome.estimate >= 1 - 2.5 / schedule.topology.order

    def test_any_rule_trusts_first_payload(self):
        schedule = line_schedule(line(2))
        algo = RadioRepeat(schedule, "M", rule=ADOPT_ANY, phase_length=3)
        protocol = algo.protocol(1)
        protocol.deliver(0, "M")
        protocol.deliver(1, "X")  # later payloads ignored
        assert protocol.output() == "M"

    def test_majority_rule_votes(self):
        schedule = line_schedule(line(2))
        algo = RadioRepeat(schedule, 1, rule=ADOPT_MAJORITY, phase_length=3)
        protocol = algo.protocol(1)
        protocol.deliver(0, 1)
        protocol.deliver(1, 0)
        protocol.deliver(2, 1)
        assert protocol.output() == 1

    def test_counterfactual_source(self):
        schedule = line_schedule(line(2))
        algo = RadioRepeat(schedule, 1, phase_length=2)
        twin = algo.counterfactual_source(0)
        assert twin.intent(0) == 0
