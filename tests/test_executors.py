"""Executor-contract conformance suite, run against every backend.

The contract (``repro.montecarlo.executors.base``) is what the sharded
dispatch tiers rely on: index-ordered results, in-order ``on_result``
streaming cut off strictly below the lowest failing shard, lowest-index
deterministic error propagation, ``WorkerCrashError`` attribution and
bounded shard retry.  Each test here runs against the in-process, the
local-pool and the remote-socket backend through the *same* assertions,
so a new backend cannot silently weaken the semantics the trial
runners' bit-identity guarantee is built on.

Shard functions come from :mod:`repro.distrib.testing` — the remote
worker only resolves functions under the ``repro.`` trust prefix, so
test-module locals cannot cross the wire.
"""

from __future__ import annotations

import concurrent.futures

import pytest

from repro import obs
from repro.distrib.testing import (
    shard_exit,
    shard_exit_unless_marked,
    shard_fail_on_odd,
    shard_slow_first,
    shard_square,
)
from repro.montecarlo.executors import (
    DEFAULT_SPEC_RETRIES,
    InProcessExecutor,
    LocalProcessExecutor,
    RemoteSocketExecutor,
    WorkerCrashError,
    make_executor,
)
from repro.montecarlo.executors.base import pool_context
from repro.montecarlo.executors.remote import parse_peers
from tests.helpers import WorkerProcess

fork_only = pytest.mark.skipif(
    pool_context().get_start_method() != "fork",
    reason="crash-injection workers rely on fork-shared module state",
)


@pytest.fixture(scope="module")
def worker_pair():
    """Two loopback workers shared by the read-only conformance tests."""
    workers = [WorkerProcess(), WorkerProcess()]
    yield workers
    for worker in workers:
        worker.close()


BACKENDS = ["in-process", "local-process", "remote-socket"]


@pytest.fixture(params=BACKENDS)
def executor(request, worker_pair):
    """One executor per contract backend; remote rides the loopback pair."""
    if request.param == "in-process":
        built = InProcessExecutor()
    elif request.param == "local-process":
        built = LocalProcessExecutor(2)
    else:
        built = RemoteSocketExecutor(
            [(w.host, w.port) for w in worker_pair])
    yield built
    built.close()


class TestConformance:
    """The same assertions against every backend."""

    def test_results_come_back_in_shard_order(self, executor):
        assert executor.run_sharded(
            shard_square, [(i,) for i in range(7)]
        ) == [0, 1, 4, 9, 16, 25, 36]

    def test_on_result_streams_in_shard_order(self, executor):
        # Shard 0 completes last on any parallel backend; the callback
        # must still fire strictly in index order.
        seen = []
        results = executor.run_sharded(
            shard_slow_first, [(i,) for i in range(4)],
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert results == [0, 1, 2, 3]
        assert seen == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_lowest_shard_index_error_wins(self, executor):
        with pytest.raises(ValueError, match="shard value 1 failed"):
            executor.run_sharded(
                shard_fail_on_odd, [(i,) for i in range(6)])

    def test_on_result_never_fires_at_or_after_the_failing_shard(
            self, executor):
        seen = []
        with pytest.raises(ValueError, match="shard value 1 failed"):
            executor.run_sharded(
                shard_fail_on_odd, [(0,), (1,), (2,)],
                on_result=lambda index, value: seen.append((index, value)),
            )
        assert seen == [(0, 0)]

    def test_metrics_labelled_by_backend(self, executor):
        with obs.use_registry() as registry:
            executor.run_sharded(shard_square, [(i,) for i in range(3)])
            counter = registry.counter("mc.executor.shards",
                                       backend=executor.name)
            assert counter.value == 3
            assert registry.histogram("mc.executor.shard.seconds",
                                      backend=executor.name).count == 3
            assert registry.histogram("mc.executor.shard.queue_seconds",
                                      backend=executor.name).count == 3

    def test_describe_names_backend_and_workers(self, executor):
        summary = executor.describe()
        assert summary["backend"] == executor.name
        assert summary["workers"] == executor.worker_count()


class TestLocalCrashSemantics:
    """The historical pool guarantees, now on the executor interface."""

    @fork_only
    def test_crash_attributed_to_lowest_shard_with_zero_retries(self):
        executor = LocalProcessExecutor(2, max_shard_retries=0)
        with pytest.raises(WorkerCrashError,
                           match=r"shard 0 of 3.*shard args: \(0,\)"):
            executor.run_sharded(shard_exit, [(i,) for i in range(3)])

    @fork_only
    def test_crashed_shard_is_retried_within_budget(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        executor = LocalProcessExecutor(2, max_shard_retries=1)
        with obs.use_registry() as registry:
            results = executor.run_sharded(
                shard_exit_unless_marked, [(7, marker)])
            assert results == [49]
            assert registry.counter("mc.executor.retries",
                                    backend="local-process").value == 1

    @fork_only
    def test_retry_budget_is_bounded(self):
        executor = LocalProcessExecutor(2, max_shard_retries=1)
        with obs.use_registry() as registry:
            with pytest.raises(WorkerCrashError, match="shard 0 of 1"):
                executor.run_sharded(shard_exit, [(0,)])
            # One retry attempted (and counted) before the crash surfaced.
            assert registry.counter("mc.executor.retries",
                                    backend="local-process").value == 1

    @fork_only
    def test_deterministic_error_is_never_retried(self):
        # An ordinary exception must surface immediately even with a
        # generous retry budget — it would raise identically anywhere.
        executor = LocalProcessExecutor(2, max_shard_retries=5)
        with obs.use_registry() as registry:
            with pytest.raises(ValueError, match="shard value 1 failed"):
                executor.run_sharded(shard_fail_on_odd, [(0,), (1,)])
            assert registry.counter("mc.executor.retries",
                                    backend="local-process").value == 0

    def test_first_error_cancels_siblings_exactly_once(self, monkeypatch):
        calls = []
        original = concurrent.futures.Future.cancel

        def counting_cancel(future):
            calls.append(future)
            return original(future)

        monkeypatch.setattr(concurrent.futures.Future, "cancel",
                            counting_cancel)
        shards = [(2 * i + 1,) for i in range(6)]  # all odd: all raise
        executor = LocalProcessExecutor(2, max_shard_retries=0)
        with pytest.raises(ValueError, match="shard value 1 failed"):
            executor.run_sharded(shard_fail_on_odd, shards)
        assert len(calls) == len(shards)


class TestRemoteCrashSemantics:
    """Worker death over the wire: retry, reassignment, attribution."""

    def test_killed_worker_reassigns_shard_to_survivor(self, tmp_path):
        # The marker protocol is cross-process: the first worker to run
        # the shard creates the marker and dies; the retry lands on the
        # surviving worker, sees the marker and completes — with the
        # same shard arguments, so the answer is the undisturbed one.
        doomed, steady = WorkerProcess(), WorkerProcess()
        try:
            marker = str(tmp_path / "remote-crash")
            executor = RemoteSocketExecutor(
                [(doomed.host, doomed.port), (steady.host, steady.port)],
                max_shard_retries=1)
            with obs.use_registry() as registry:
                results = executor.run_sharded(
                    shard_exit_unless_marked, [(9, marker)])
                assert results == [81]
                assert registry.counter(
                    "mc.executor.retries",
                    backend="remote-socket").value == 1
            # Exactly one of the pair died executing the shard.
            assert sum(1 for w in (doomed, steady) if w.alive()) == 1
        finally:
            doomed.close()
            steady.close()

    def test_retries_exhausted_surfaces_worker_crash_error(self):
        worker = WorkerProcess()
        try:
            executor = RemoteSocketExecutor(
                [(worker.host, worker.port)], max_shard_retries=0)
            with pytest.raises(WorkerCrashError,
                               match=r"shard 0 of 1 \(retries exhausted\)"):
                executor.run_sharded(shard_exit, [(0,)])
        finally:
            worker.close()

    def test_unreachable_peers_fail_fast(self):
        executor = RemoteSocketExecutor([("127.0.0.1", 1)],
                                        connect_timeout=0.5)
        with pytest.raises(WorkerCrashError, match="no remote workers"):
            executor.run_sharded(shard_square, [(1,)])

    def test_heartbeat_reports_per_peer_liveness(self, worker_pair):
        live, dead_port = worker_pair[0], 1
        executor = RemoteSocketExecutor(
            [(live.host, live.port), ("127.0.0.1", dead_port)],
            connect_timeout=0.5)
        beat = executor.heartbeat()
        assert beat[live.address] is True
        assert beat[f"127.0.0.1:{dead_port}"] is False

    def test_forbidden_function_is_a_deterministic_rejection(
            self, worker_pair):
        executor = RemoteSocketExecutor(
            [(w.host, w.port) for w in worker_pair])

        with pytest.raises(RuntimeError, match="forbidden-function"):
            executor.run_sharded(_outside_trust_prefix, [(1,)])


def _outside_trust_prefix(value):
    """Module-level (picklable spec) but outside the repro. namespace."""
    return value


class TestMakeExecutor:
    """Spec-string parsing shared by every CLI ``--executor`` flag."""

    def test_default_resolves_from_workers(self):
        assert isinstance(make_executor(None, workers=1), InProcessExecutor)
        local = make_executor(None, workers=3)
        assert isinstance(local, LocalProcessExecutor)
        assert local.worker_count() == 3

    def test_instance_passes_through(self):
        executor = InProcessExecutor()
        assert make_executor(executor, workers=8) is executor

    def test_in_process_spec(self):
        assert isinstance(make_executor("in-process", workers=4),
                          InProcessExecutor)

    def test_local_process_spec_with_and_without_width(self):
        sized = make_executor("local-process:5", workers=1)
        assert isinstance(sized, LocalProcessExecutor)
        assert sized.worker_count() == 5
        defaulted = make_executor("local-process", workers=3)
        assert defaulted.worker_count() == 3

    def test_remote_spec_parses_peers_and_default_retries(self):
        remote = make_executor("remote:127.0.0.1:7000,127.0.0.1:7001",
                               workers=1)
        assert isinstance(remote, RemoteSocketExecutor)
        summary = remote.describe()
        assert summary["peers"] == ["127.0.0.1:7000", "127.0.0.1:7001"]
        assert summary["max_shard_retries"] == DEFAULT_SPEC_RETRIES

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            make_executor("warp-drive", workers=1)
        with pytest.raises(ValueError):
            make_executor("remote:", workers=1)
        with pytest.raises(ValueError):
            make_executor("local-process:zero", workers=1)

    def test_parse_peers_validation(self):
        assert parse_peers("a:1, b:2") == [("a", 1), ("b", 2)]
        with pytest.raises(ValueError, match="host:port"):
            parse_peers(":99")
        with pytest.raises(ValueError, match="non-integer"):
            parse_peers("host:http")
        with pytest.raises(ValueError, match="out of range"):
            parse_peers("host:70000")
