"""Tests for the shared phase schedule."""

import pytest

from repro.core.tree_phase import PhaseSchedule
from repro.graphs import bfs_tree, binary_tree, line


class TestPhaseSchedule:
    def setup_method(self):
        self.tree = bfs_tree(binary_tree(2), 0)  # 7 nodes
        self.schedule = PhaseSchedule(self.tree, phase_length=4)

    def test_total_rounds(self):
        assert self.schedule.total_rounds == 7 * 4

    def test_windows_partition_time(self):
        covered = []
        for node in self.tree.topology.nodes:
            start, end = self.schedule.window_of(node)
            covered.extend(range(start, end))
        assert sorted(covered) == list(range(28))

    def test_window_follows_rank(self):
        first = self.tree.order[0]
        assert self.schedule.window_of(first) == (0, 4)
        third = self.tree.order[2]
        assert self.schedule.window_of(third) == (8, 12)

    def test_in_window(self):
        node = self.tree.order[1]
        assert self.schedule.in_window(node, 4)
        assert self.schedule.in_window(node, 7)
        assert not self.schedule.in_window(node, 8)

    def test_listening_window_is_parents(self):
        child = self.tree.children(0)[0]
        assert self.schedule.listening_window(child) == self.schedule.window_of(0)

    def test_root_has_no_listening_window(self):
        assert self.schedule.listening_window(0) is None
        assert not self.schedule.in_listening_window(0, 0)

    def test_transmitter_at(self):
        assert self.schedule.transmitter_at(0) == 0
        assert self.schedule.transmitter_at(27) == self.tree.order[6]
        with pytest.raises(ValueError):
            self.schedule.transmitter_at(28)

    def test_listening_precedes_transmission(self):
        # the paper's induction requires every node's listening window to
        # end no later than its own window starts
        tree = bfs_tree(line(6), 0)
        schedule = PhaseSchedule(tree, phase_length=3)
        for node in tree.topology.nodes:
            listening = schedule.listening_window(node)
            if listening is None:
                continue
            own_start, _ = schedule.window_of(node)
            assert listening[1] <= own_start
