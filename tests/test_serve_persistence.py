"""The persistent memo journal: warm restarts are byte-identical.

Contracts pinned here, in the order ISSUE states them:

* **round trip** — property-tested: any batch of
  ``(fingerprint, TrialResult | SequentialResult)`` records written
  through :class:`MemoJournal` is rehydrated bit-identically by a
  fresh journal on the same path (the snapshot/kill/rehydrate cycle);
* **service warm restart** — a restarted :class:`SimulationService`
  on the same ``memo_path`` answers every previously-computed query
  from cache with identical indicator digests, including sequential
  answers served by prefix truncation from the journalled trace;
* **corruption** — a truncated tail or a CRC-mismatched line drops
  exactly the damaged record (logged + counted), never crashes, and
  never poisons the surviving records;
* **format discipline** — a mangled header restarts the journal
  fresh; a *newer* format version refuses to load; compaction is an
  atomic rewrite that preserves exactly the live entries.

No pytest-asyncio in the environment, so async scenarios run under
``asyncio.run`` inside plain test functions.
"""

import asyncio
import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.montecarlo.trials import (
    SequentialResult,
    SequentialStep,
    TrialResult,
)
from repro.obs import use_registry
from repro.serve import (
    MemoJournal,
    Query,
    SequentialQuery,
    SimulationService,
)
from repro.serve.persistence import FORMAT_NAME, FORMAT_VERSION


def run(coro):
    return asyncio.run(coro)


def _values_equal(left, right):
    if isinstance(left, TrialResult):
        return (isinstance(right, TrialResult)
                and np.array_equal(left.indicators, right.indicators)
                and left.indicators.dtype == right.indicators.dtype
                and (left.backend, left.workers, left.seed, left.confidence)
                == (right.backend, right.workers, right.seed,
                    right.confidence))
    return (isinstance(right, SequentialResult)
            and _values_equal(left.result, right.result)
            and left.steps == right.steps
            and (left.target_width, left.bound, left.met)
            == (right.target_width, right.bound, right.met))


# -- hypothesis strategies ---------------------------------------------

_trial_results = st.builds(
    lambda bits, backend, workers, seed: TrialResult(
        indicators=np.array(bits, dtype=bool), backend=backend,
        workers=workers, seed=seed,
    ),
    st.lists(st.booleans(), min_size=1, max_size=64),
    st.sampled_from(["batchsim", "engine", "fastsim:flooding", "exact"]),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**32 - 1),
)


def _sequential_from(result, target_width, bound, met):
    trials = result.trials
    successes = int(result.indicators.sum())
    steps = (SequentialStep(trials=trials, successes=successes,
                            width=max(target_width, 1e-6)),)
    return SequentialResult(result=result, steps=steps,
                            target_width=target_width, bound=bound, met=met)


_sequential_results = st.builds(
    _sequential_from,
    _trial_results,
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    st.sampled_from(["hoeffding", "bernstein"]),
    st.booleans(),
)

_records = st.lists(
    st.tuples(st.text(alphabet="0123456789abcdef", min_size=4, max_size=12),
              st.one_of(_trial_results, _sequential_results)),
    min_size=1, max_size=8,
)


class TestRoundTrip:
    # hypothesis reuses function-scoped fixtures across examples, so
    # each example gets its own TemporaryDirectory instead of tmp_path.
    @settings(max_examples=25, deadline=None)
    @given(records=_records)
    def test_append_then_rehydrate_is_identical(self, records):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "memo.ndjson"
            journal = MemoJournal(path)
            journal.load()
            for key, value in records:
                journal.append(key, value)
            journal.close()

            replayed = MemoJournal(path)
            loaded = replayed.load()
            replayed.close()
            assert len(loaded) == len(records)
            assert replayed.records_dropped == 0
            for (key, value), (loaded_key, loaded_value) in zip(records,
                                                                loaded):
                assert key == loaded_key
                assert _values_equal(value, loaded_value)

    def test_last_writer_wins_through_replay_order(self, tmp_path):
        path = tmp_path / "memo.ndjson"
        first = TrialResult(np.array([True]), "batchsim", 1, 0)
        second = TrialResult(np.array([False, True]), "batchsim", 1, 1)
        journal = MemoJournal(path)
        journal.load()
        journal.append("k", first)
        journal.append("k", second)
        journal.close()
        loaded = MemoJournal(path).load()
        # File order: a cache replaying oldest-first ends up holding
        # the newest record for each key.
        assert [key for key, _ in loaded] == ["k", "k"]
        assert _values_equal(loaded[-1][1], second)


class TestServiceWarmRestart:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50),
           trials=st.integers(min_value=1, max_value=64))
    def test_restart_replays_byte_identically(self, seed, trials):
        async def cold(path):
            service = SimulationService(memo_path=str(path))
            queries = [
                Query("flooding", 0.1, 5, trials, seed=seed),
                Query("windowed-malicious", 0.25, 2, trials, seed=seed),
                Query("layered-opt", 0.0, 3, 1, seed=0),
            ]
            answers = [await service.submit(query) for query in queries]
            service.close()
            return queries, answers

        async def warm(path, queries):
            service = SimulationService(memo_path=str(path))
            answers = [await service.submit(query) for query in queries]
            service.close()
            return answers

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "memo.ndjson"
            queries, cold_answers = run(cold(path))
            warm_answers = run(warm(path, queries))
        for before, after in zip(cold_answers, warm_answers):
            assert after.source == "cache"
            assert after.indicators_digest() == before.indicators_digest()
            assert after.fingerprint == before.fingerprint

    def test_sequential_answers_survive_restart(self, tmp_path):
        path = tmp_path / "memo.ndjson"
        strict = SequentialQuery("flooding", 0.1, 5, target_width=0.1,
                                 max_trials=4096, seed=3)
        wide = SequentialQuery("flooding", 0.1, 5, target_width=0.9,
                               max_trials=4096, seed=3)

        async def cold():
            service = SimulationService(memo_path=str(path))
            answer = await service.submit_until(strict)
            service.close()
            return answer

        async def warm():
            service = SimulationService(memo_path=str(path))
            replay = await service.submit_until(strict)
            truncated = await service.submit_until(wide)
            service.close()
            return replay, truncated

        cold_answer = run(cold())
        replay, truncated = run(warm())
        assert replay.source == "cache"
        assert replay.indicators_digest() == cold_answer.indicators_digest()
        assert replay.sequential.steps == cold_answer.sequential.steps
        # The wider target is served from the journalled stricter trace
        # by prefix truncation — met honestly, bytes a prefix.
        assert truncated.source == "cache"
        assert truncated.met
        prefix = cold_answer.result.indicators[:truncated.result.trials]
        assert np.array_equal(truncated.result.indicators, prefix)


class TestCorruption:
    def _journal_with_records(self, path, count=3):
        journal = MemoJournal(path)
        journal.load()
        for index in range(count):
            journal.append(f"key{index}",
                           TrialResult(np.array([index % 2 == 0]),
                                       "batchsim", 1, index))
        journal.close()

    def test_truncated_tail_drops_only_last_record(self, tmp_path):
        path = tmp_path / "memo.ndjson"
        self._journal_with_records(path, count=3)
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])  # tear the final line mid-record

        journal = MemoJournal(path)
        loaded = journal.load()
        journal.close()
        assert [key for key, _ in loaded] == ["key0", "key1"]
        assert journal.records_dropped == 1

    def test_crc_mismatch_drops_only_damaged_record(self, tmp_path):
        path = tmp_path / "memo.ndjson"
        self._journal_with_records(path, count=3)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])  # the middle record
        record["payload"]["seed"] += 1  # bit-flip without fixing the CRC
        lines[2] = json.dumps(record, sort_keys=True,
                              separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")

        with use_registry() as registry:
            journal = MemoJournal(path)
            loaded = journal.load()
            journal.close()
        assert [key for key, _ in loaded] == ["key0", "key2"]
        assert journal.records_dropped == 1
        corrupt = [entry["value"] for entry in
                   registry.snapshot()["counters"]
                   if entry["name"] == "serve.memo.corrupt"]
        assert corrupt == [1]

    def test_corrupt_record_does_not_poison_service(self, tmp_path):
        path = tmp_path / "memo.ndjson"
        query = Query("windowed-malicious", 0.25, 2, 32, seed=9)

        async def cold():
            service = SimulationService(memo_path=str(path))
            answer = await service.submit(query)
            service.close()
            return answer

        cold_answer = run(cold())
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # tear the journalled record

        async def warm():
            service = SimulationService(memo_path=str(path))
            answer = await service.submit(query)
            service.close()
            return answer

        warm_answer = run(warm())
        # The damaged record is gone, so the query recomputes — and by
        # the determinism invariant recomputing yields the same bytes.
        assert warm_answer.source == "computed"
        assert (warm_answer.indicators_digest()
                == cold_answer.indicators_digest())


class TestFormatDiscipline:
    def test_mangled_header_restarts_fresh(self, tmp_path):
        path = tmp_path / "memo.ndjson"
        self._seed_one_record(path)
        raw = path.read_text().splitlines()
        raw[0] = "not json at all"
        path.write_text("\n".join(raw) + "\n")

        journal = MemoJournal(path)
        assert journal.load() == []
        journal.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == FORMAT_NAME
        assert header["version"] == FORMAT_VERSION

    def test_newer_version_refuses_to_load(self, tmp_path):
        path = tmp_path / "memo.ndjson"
        header = {"format": FORMAT_NAME, "version": FORMAT_VERSION + 1,
                  "fingerprint_version": 1}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="newer"):
            MemoJournal(path).load()
        # And the refusing load must not have clobbered the file.
        assert json.loads(path.read_text().splitlines()[0]) == header

    def test_compaction_is_atomic_and_exact(self, tmp_path):
        path = tmp_path / "memo.ndjson"
        journal = MemoJournal(path)
        journal.load()
        final = None
        for index in range(10):  # same key: nine superseded records
            final = TrialResult(np.array([index % 2 == 0]), "batchsim",
                                1, index)
            journal.append("hot", final)
        assert journal.record_count == 10
        journal.compact([("hot", final)])
        assert journal.record_count == 1
        assert not path.with_name(path.name + ".tmp").exists()
        # The journal stays appendable after compaction.
        journal.append("cold", final)
        journal.close()
        loaded = MemoJournal(path).load()
        assert [key for key, _ in loaded] == ["hot", "cold"]
        assert _values_equal(loaded[0][1], final)

    @staticmethod
    def _seed_one_record(path):
        journal = MemoJournal(path)
        journal.load()
        journal.append("k", TrialResult(np.array([True]), "batchsim", 1, 0))
        journal.close()


class TestServiceCompactionTrigger:
    def test_superseded_sequential_traces_get_compacted(self, tmp_path):
        path = tmp_path / "memo.ndjson"

        async def scenario():
            # Tiny cache => low compaction watermark (max(32, 2*2)=32).
            service = SimulationService(memo_path=str(path),
                                        cache_capacity=2)
            for seed in range(40):
                await service.submit(Query("flooding", 0.1, 5, 8,
                                           seed=seed))
            journal = service.journal
            count, compactions = journal.record_count, journal.compactions
            service.close()
            return count, compactions

        count, compactions = run(scenario())
        assert compactions >= 1
        # Post-compaction the file holds at most cache-capacity live
        # records plus what accumulated since the last rewrite.
        assert count <= 35
