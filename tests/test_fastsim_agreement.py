"""Engine agreement suite for every exported fastsim sampler.

Each vectorised sampler in :mod:`repro.fastsim` promises to reproduce
the reference engine's success law for its scenario shape.  This module
holds one agreement test per exported sampler: the sampler's success
(or completion-time) estimate must fall inside a Clopper–Pearson
interval of a modest engine Monte-Carlo run with the same parameters,
padded by a small binomial tolerance.  The engine side always goes
through :class:`repro.montecarlo.TrialRunner` with dispatch disabled,
so this suite also pins the exact scenarios the dispatch matchers in
``repro/montecarlo/samplers.py`` are allowed to claim.
"""

from functools import partial
from typing import Any, Optional

import numpy as np

from repro.core import FastFlooding, SimpleMalicious, SimpleOmission
from repro.engine import RADIO
from repro.engine.protocol import MESSAGE_PASSING, Algorithm, Protocol
from repro.failures import (
    ComplementAdversary,
    MaliciousFailures,
    OmissionFailures,
    RadioWorstCaseAdversary,
)
from repro.fastsim import (
    layered_success_estimate,
    sample_flooding_success,
    sample_flooding_times,
    sample_layered_omission,
    sample_simple_malicious_mp,
    sample_simple_malicious_radio,
    sample_simple_omission,
)
from repro.graphs import bfs_tree, binary_tree, layered_graph, line
from repro.montecarlo import TrialRunner

SAMPLER_TRIALS = 20000
ENGINE_TRIALS = 400
TOLERANCE = 0.04  # CI padding: CP at 99% on 400 trials is ~±0.07 already


def engine_estimate(factory, failure, trials=ENGINE_TRIALS, seed=11):
    """Engine Monte-Carlo interval via TrialRunner (dispatch disabled)."""
    runner = TrialRunner(factory, failure, use_fastsim=False)
    return runner.run(trials, seed).stats()


def assert_agrees(sampled: float, engine_stats) -> None:
    """The sampler estimate must sit inside the padded engine interval."""
    assert engine_stats.lower - TOLERANCE <= sampled <= \
        engine_stats.upper + TOLERANCE, (
            f"sampler {sampled:.4f} outside engine CI "
            f"[{engine_stats.lower:.4f}, {engine_stats.upper:.4f}] ± {TOLERANCE}"
        )


class TestSampleSimpleOmission:
    def test_message_passing_agreement(self):
        topology, p, m = binary_tree(3), 0.4, 3
        sampled = sample_simple_omission(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 3
        ).mean()
        stats = engine_estimate(
            partial(SimpleOmission, topology, 0, 1, MESSAGE_PASSING, m),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)

    def test_radio_agreement(self):
        # One transmitter per step: the radio execution must coincide.
        topology, p, m = binary_tree(3), 0.5, 4
        sampled = sample_simple_omission(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 5
        ).mean()
        stats = engine_estimate(
            partial(SimpleOmission, topology, 0, 1, RADIO, m),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)


class TestSampleSimpleMaliciousMp:
    def test_complement_adversary_agreement(self):
        topology, p, m = binary_tree(2), 0.35, 5
        sampled = sample_simple_malicious_mp(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 3
        ).mean()
        stats = engine_estimate(
            partial(SimpleMalicious, topology, 0, 1, MESSAGE_PASSING, m),
            MaliciousFailures(p, ComplementAdversary()),
        )
        assert_agrees(sampled, stats)


class TestSampleSimpleMaliciousRadio:
    def test_worst_case_adversary_agreement_on_chain(self):
        # The sampler draws the per-node trinomial of the Theorem 2.4
        # analysis; RadioWorstCaseAdversary realises exactly that law
        # in the engine.  On a chain the per-node events use disjoint
        # phases, so the joint distributions coincide (with siblings
        # only the marginals would).
        topology, p, m = line(4), 0.15, 9
        sampled = sample_simple_malicious_radio(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 7
        ).mean()
        stats = engine_estimate(
            partial(SimpleMalicious, topology, 0, 1, RADIO, m),
            MaliciousFailures(p, RadioWorstCaseAdversary()),
        )
        assert_agrees(sampled, stats)


class TestSampleFloodingTimes:
    def test_completion_law_agreement(self):
        # P[time <= R] from the sampler vs engine success at budget R.
        topology, p, rounds = binary_tree(3), 0.4, 12
        times = sample_flooding_times(
            bfs_tree(topology, 0), p, SAMPLER_TRIALS, 9
        )
        sampled = float((times <= rounds).mean())
        stats = engine_estimate(
            partial(FastFlooding, topology, 0, 1, None, rounds),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)


class TestSampleFloodingSuccess:
    def test_fixed_budget_agreement(self):
        topology, p, rounds = binary_tree(3), 0.3, 10
        sampled = sample_flooding_success(
            bfs_tree(topology, 0), rounds, p, SAMPLER_TRIALS, 5
        ).mean()
        stats = engine_estimate(
            partial(FastFlooding, topology, 0, 1, None, rounds),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)


# -- engine twin of the layered-schedule sampler ------------------------


class _LayeredProtocol(Protocol):
    """Radio program of one node under an explicit layered schedule."""

    def __init__(self, algorithm: "_LayeredScheduleAlgorithm", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._message = initial_message

    def intent(self, round_index: int):
        algorithm = self._algorithm
        if self._node == algorithm.graph.source:
            if round_index < algorithm.source_steps:
                return algorithm.source_message
            return None
        if round_index < algorithm.source_steps:
            return None
        step = algorithm.steps[round_index - algorithm.source_steps]
        if self._node in algorithm.graph.bit_nodes and self._node in step:
            # An uninformed bit node still transmits (the default), so
            # it occupies the medium exactly as the sampler assumes.
            return self._message if self._message is not None else \
                algorithm.default
        return None

    def deliver(self, round_index: int, received) -> None:
        if self._message is None and received is not None:
            self._message = received

    def output(self) -> Any:
        if self._message is not None:
            return self._message
        return self._algorithm.default


class _LayeredScheduleAlgorithm(Algorithm):
    """Source phase + explicit layer-2 steps on ``G(m)``, radio model.

    The engine ground truth for :func:`sample_layered_omission`: the
    source transmits alone for ``source_steps`` rounds (all bit nodes
    hear any non-faulty one), then step ``t`` activates the bit nodes
    in ``steps[t]``; a layer-3 value node adopts the payload of any
    round in which exactly one of its bit neighbours survives omission.
    """

    def __init__(self, graph, steps, source_steps: int,
                 source_message: Any = 1, default: Any = 0):
        super().__init__(graph.topology, RADIO)
        self.graph = graph
        self.steps = [
            {graph.bit_node(position) for position in step} for step in steps
        ]
        self.source_steps = source_steps
        self.source_message = source_message
        self.default = default

    @property
    def rounds(self) -> int:
        return self.source_steps + len(self.steps)

    def protocol(self, node: int) -> Protocol:
        initial = self.source_message if node == self.graph.source else None
        return _LayeredProtocol(self, node, initial)

    def metadata(self):
        return {
            "source": self.graph.source,
            "source_message": self.source_message,
        }


class TestSampleLayeredOmission:
    GRAPH = layered_graph(3)
    STEPS = [{1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}]
    P = 0.4
    SOURCE_STEPS = 2

    def test_engine_agreement(self):
        sampled = sample_layered_omission(
            self.GRAPH, self.STEPS, self.P, SAMPLER_TRIALS, 3,
            source_steps=self.SOURCE_STEPS,
        ).mean()
        stats = engine_estimate(
            partial(_LayeredScheduleAlgorithm, self.GRAPH, self.STEPS,
                    self.SOURCE_STEPS),
            OmissionFailures(self.P),
        )
        assert_agrees(sampled, stats)

    def test_layered_success_estimate_is_the_mean(self):
        estimate = layered_success_estimate(
            self.GRAPH, self.STEPS, self.P, 4000, 9,
            source_steps=self.SOURCE_STEPS,
        )
        indicators = sample_layered_omission(
            self.GRAPH, self.STEPS, self.P, 4000, 9,
            source_steps=self.SOURCE_STEPS,
        )
        assert estimate == indicators.mean()


class TestDispatchedScenariosStayHonest:
    """The dispatch matchers claim exactly the scenarios tested above."""

    def test_every_builtin_sampler_has_an_agreement_test(self):
        from repro.montecarlo import registered_samplers
        covered = {
            "simple-omission", "simple-malicious-mp",
            "simple-malicious-radio", "flooding",
        }
        builtin = {entry.name for entry in registered_samplers()}
        # Equality both ways: a newly registered sampler must add an
        # agreement test here (and this set) before it may dispatch.
        assert builtin == covered
