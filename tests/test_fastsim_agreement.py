"""Engine agreement suite for every exported fastsim sampler.

Each vectorised sampler in :mod:`repro.fastsim` promises to reproduce
the reference engine's success law for its scenario shape.  This module
holds one agreement test per exported sampler: the sampler's success
(or completion-time) estimate must fall inside a Clopper–Pearson
interval of a modest engine Monte-Carlo run with the same parameters,
padded by a small binomial tolerance.  The engine side always goes
through :class:`repro.montecarlo.TrialRunner` with dispatch disabled,
so this suite also pins the exact scenarios the dispatch matchers in
``repro/montecarlo/samplers.py`` are allowed to claim.
"""

from functools import partial

from repro.analysis.thresholds import radio_malicious_threshold
from repro.core import FastFlooding, SimpleMalicious, SimpleOmission
from repro.core.radio_repeat import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.engine import RADIO
from repro.engine.protocol import MESSAGE_PASSING
from repro.failures import (
    ComplementAdversary,
    MaliciousFailures,
    OmissionFailures,
    RadioWorstCaseAdversary,
    SlowingAdversary,
)
from repro.failures import EqualizingStarAdversary
from repro.fastsim import (
    layered_success_estimate,
    sample_equalizing_star,
    sample_flooding_success,
    sample_flooding_times,
    sample_layered_omission,
    sample_radio_repeat_malicious,
    sample_radio_repeat_omission,
    sample_simple_malicious_mp,
    sample_simple_malicious_radio,
    sample_simple_malicious_radio_tree,
    sample_simple_omission,
)
from repro.graphs import bfs_tree, binary_tree, layered_graph, line, spider, star
from repro.montecarlo import TrialRunner
from repro.radio.closed_form import line_schedule, spider_schedule
from repro.radio.layered_broadcast import LayeredScheduleBroadcast

SAMPLER_TRIALS = 20000
ENGINE_TRIALS = 400
TOLERANCE = 0.04  # CI padding: CP at 99% on 400 trials is ~±0.07 already


def engine_estimate(factory, failure, trials=ENGINE_TRIALS, seed=11):
    """Engine Monte-Carlo interval via TrialRunner (dispatch disabled)."""
    runner = TrialRunner(factory, failure, use_fastsim=False)
    return runner.run(trials, seed).stats()


def assert_agrees(sampled: float, engine_stats) -> None:
    """The sampler estimate must sit inside the padded engine interval."""
    assert engine_stats.lower - TOLERANCE <= sampled <= \
        engine_stats.upper + TOLERANCE, (
            f"sampler {sampled:.4f} outside engine CI "
            f"[{engine_stats.lower:.4f}, {engine_stats.upper:.4f}] ± {TOLERANCE}"
        )


class TestSampleSimpleOmission:
    def test_message_passing_agreement(self):
        topology, p, m = binary_tree(3), 0.4, 3
        sampled = sample_simple_omission(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 3
        ).mean()
        stats = engine_estimate(
            partial(SimpleOmission, topology, 0, 1, MESSAGE_PASSING, m),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)

    def test_radio_agreement(self):
        # One transmitter per step: the radio execution must coincide.
        topology, p, m = binary_tree(3), 0.5, 4
        sampled = sample_simple_omission(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 5
        ).mean()
        stats = engine_estimate(
            partial(SimpleOmission, topology, 0, 1, RADIO, m),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)


class TestSampleSimpleMaliciousMp:
    def test_complement_adversary_agreement(self):
        topology, p, m = binary_tree(2), 0.35, 5
        sampled = sample_simple_malicious_mp(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 3
        ).mean()
        stats = engine_estimate(
            partial(SimpleMalicious, topology, 0, 1, MESSAGE_PASSING, m),
            MaliciousFailures(p, ComplementAdversary()),
        )
        assert_agrees(sampled, stats)


class TestSampleSimpleMaliciousRadio:
    def test_worst_case_adversary_agreement_on_chain(self):
        # The sampler draws the per-node trinomial of the Theorem 2.4
        # analysis; RadioWorstCaseAdversary realises exactly that law
        # in the engine.  On a chain the per-node events use disjoint
        # phases, so the joint distributions coincide (with siblings
        # only the marginals would).
        topology, p, m = line(4), 0.15, 9
        sampled = sample_simple_malicious_radio(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 7
        ).mean()
        stats = engine_estimate(
            partial(SimpleMalicious, topology, 0, 1, RADIO, m),
            MaliciousFailures(p, RadioWorstCaseAdversary()),
        )
        assert_agrees(sampled, stats)


class TestSampleSimpleMaliciousRadioTree:
    """The engine-exact tree sampler (what dispatch actually offers)."""

    def test_leaf_sourced_star_agreement(self):
        # Siblings share the root's phase faults: the joint law the
        # independent trinomial sampler cannot reproduce.
        topology, p, m = star(3, source_is_center=False), 0.15, 7
        sampled = sample_simple_malicious_radio_tree(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 7
        ).mean()
        stats = engine_estimate(
            partial(SimpleMalicious, topology, 0, 1, RADIO, m),
            MaliciousFailures(p, RadioWorstCaseAdversary()),
        )
        assert_agrees(sampled, stats)

    def test_binary_tree_agreement(self):
        topology, p, m = binary_tree(2), 0.2, 5
        sampled = sample_simple_malicious_radio_tree(
            bfs_tree(topology, 0), m, p, SAMPLER_TRIALS, 9
        ).mean()
        stats = engine_estimate(
            partial(SimpleMalicious, topology, 0, 1, RADIO, m),
            MaliciousFailures(p, RadioWorstCaseAdversary()),
        )
        assert_agrees(sampled, stats)

    def test_chain_law_matches_trinomial_sampler(self):
        # On chains both radio samplers are engine-exact; their
        # estimates must agree with each other too.
        tree = bfs_tree(line(5), 0)
        trinomial = sample_simple_malicious_radio(
            tree, 9, 0.15, SAMPLER_TRIALS, 3
        ).mean()
        shared = sample_simple_malicious_radio_tree(
            tree, 9, 0.15, SAMPLER_TRIALS, 5
        ).mean()
        assert abs(trinomial - shared) < 0.02

    def test_rejects_non_tree_topology(self):
        cyclic = line(3).with_extra_edges([(0, 3)], name="cycle")
        import pytest
        with pytest.raises(ValueError, match="not a tree"):
            sample_simple_malicious_radio_tree(
                bfs_tree(cyclic, 0), 3, 0.2, 10, 1
            )


class TestSampleRadioRepeatOmission:
    def test_line_schedule_agreement(self):
        schedule, p, m = line_schedule(line(5)), 0.4, 3
        sampled = sample_radio_repeat_omission(
            schedule, m, p, SAMPLER_TRIALS, 3
        ).mean()
        stats = engine_estimate(
            partial(RadioRepeat, schedule, 1, ADOPT_ANY, m),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)

    def test_multi_transmitter_schedule_agreement(self):
        # Spider schedules activate several legs at once: informing
        # groups with distinct parents share rounds but not fault draws.
        schedule, p, m = spider_schedule(spider(3, 3), 3, 3), 0.4, 3
        sampled = sample_radio_repeat_omission(
            schedule, m, p, SAMPLER_TRIALS, 5
        ).mean()
        stats = engine_estimate(
            partial(RadioRepeat, schedule, 1, ADOPT_ANY, m),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)


class TestSampleRadioRepeatMalicious:
    def test_complement_adversary_agreement(self):
        schedule, p, m = line_schedule(line(4)), 0.25, 5
        sampled = sample_radio_repeat_malicious(
            schedule, m, p, SAMPLER_TRIALS, 3
        ).mean()
        stats = engine_estimate(
            partial(RadioRepeat, schedule, 1, ADOPT_MAJORITY, m),
            MaliciousFailures(p, ComplementAdversary()),
        )
        assert_agrees(sampled, stats)

    def test_multi_transmitter_schedule_agreement(self):
        schedule, p, m = spider_schedule(spider(3, 2), 3, 2), 0.2, 5
        sampled = sample_radio_repeat_malicious(
            schedule, m, p, SAMPLER_TRIALS, 7
        ).mean()
        stats = engine_estimate(
            partial(RadioRepeat, schedule, 1, ADOPT_MAJORITY, m),
            MaliciousFailures(p, ComplementAdversary()),
        )
        assert_agrees(sampled, stats)


class TestSampleEqualizingStar:
    """Engine twins for the Theorem 2.4 impossibility sampler.

    The engine side shares one adversary instance across the whole
    TrialRunner batch, which also pins the per-execution twin rebuild
    of the equalizing adversaries.
    """

    def test_native_rate_agreement(self):
        delta, m = 2, 15
        topology = star(delta, source_is_center=False)
        q = radio_malicious_threshold(delta)
        sampled = sample_equalizing_star(
            topology.order, m, q, 1, SAMPLER_TRIALS, 3
        ).mean()
        stats = engine_estimate(
            partial(SimpleMalicious, topology, 0, 1, RADIO, m),
            MaliciousFailures(q, EqualizingStarAdversary(source=0, center=1)),
        )
        assert_agrees(sampled, stats)

    def test_slowing_reduction_agreement(self):
        delta, m = 3, 9
        topology = star(delta, source_is_center=False)
        q = radio_malicious_threshold(delta)
        p = q + 0.1
        sampled = sample_equalizing_star(
            topology.order, m, q, 0, SAMPLER_TRIALS, 5
        ).mean()
        stats = engine_estimate(
            partial(SimpleMalicious, topology, 0, 0, RADIO, m),
            MaliciousFailures(
                p,
                SlowingAdversary(
                    EqualizingStarAdversary(source=0, center=1), p, q
                ),
            ),
        )
        assert_agrees(sampled, stats)


class TestSampleFloodingTimes:
    def test_completion_law_agreement(self):
        # P[time <= R] from the sampler vs engine success at budget R.
        topology, p, rounds = binary_tree(3), 0.4, 12
        times = sample_flooding_times(
            bfs_tree(topology, 0), p, SAMPLER_TRIALS, 9
        )
        sampled = float((times <= rounds).mean())
        stats = engine_estimate(
            partial(FastFlooding, topology, 0, 1, None, rounds),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)


class TestSampleFloodingSuccess:
    def test_fixed_budget_agreement(self):
        topology, p, rounds = binary_tree(3), 0.3, 10
        sampled = sample_flooding_success(
            bfs_tree(topology, 0), rounds, p, SAMPLER_TRIALS, 5
        ).mean()
        stats = engine_estimate(
            partial(FastFlooding, topology, 0, 1, None, rounds),
            OmissionFailures(p),
        )
        assert_agrees(sampled, stats)


# -- the layered-schedule sampler vs its engine algorithm ----------------


class TestSampleLayeredOmission:
    GRAPH = layered_graph(3)
    STEPS = [{1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}]
    P = 0.4
    SOURCE_STEPS = 2

    def test_engine_agreement(self):
        sampled = sample_layered_omission(
            self.GRAPH, self.STEPS, self.P, SAMPLER_TRIALS, 3,
            source_steps=self.SOURCE_STEPS,
        ).mean()
        stats = engine_estimate(
            partial(LayeredScheduleBroadcast, self.GRAPH, self.STEPS,
                    self.SOURCE_STEPS),
            OmissionFailures(self.P),
        )
        assert_agrees(sampled, stats)

    def test_layered_success_estimate_is_the_mean(self):
        estimate = layered_success_estimate(
            self.GRAPH, self.STEPS, self.P, 4000, 9,
            source_steps=self.SOURCE_STEPS,
        )
        indicators = sample_layered_omission(
            self.GRAPH, self.STEPS, self.P, 4000, 9,
            source_steps=self.SOURCE_STEPS,
        )
        assert estimate == indicators.mean()


class TestDispatchedScenariosStayHonest:
    """The dispatch matchers claim exactly the scenarios tested above."""

    def test_every_builtin_sampler_has_an_agreement_test(self):
        from repro.montecarlo import registered_samplers
        covered = {
            "simple-omission", "simple-malicious-mp",
            "simple-malicious-radio", "flooding",
            "radio-repeat-omission", "radio-repeat-malicious",
            "equalizing-star", "layered-omission",
        }
        builtin = {entry.name for entry in registered_samplers()}
        # Equality both ways: a newly registered sampler must add an
        # agreement test here (and this set) before it may dispatch.
        assert builtin == covered
