"""Tests for the Theorem 3.1 fast flooding algorithm."""

import pytest

from repro.analysis.chernoff import binomial_tail_le
from repro.analysis.estimation import estimate_success
from repro.core import FastFlooding, flooding_line_length, flooding_rounds
from repro.engine import MESSAGE_PASSING, run_execution
from repro.failures import FaultFree, OmissionFailures
from repro.graphs import binary_tree, grid, line
from repro.rng import RngStream


class TestRoundCalculator:
    def test_line_length(self):
        assert flooding_line_length(16, 5) == 5 + 4
        assert flooding_line_length(2, 0) == 1

    def test_budget_met_and_minimal(self):
        n, radius, p = 64, 10, 0.3
        rounds = flooding_rounds(n, radius, p)
        length = flooding_line_length(n, radius)
        target = 1.0 / n ** 2
        assert binomial_tail_le(rounds, length - 1, 1 - p) <= target
        assert binomial_tail_le(rounds - 1, length - 1, 1 - p) > target

    def test_fault_free_needs_exactly_length(self):
        assert flooding_rounds(16, 6, 0.0) == flooding_line_length(16, 6)

    def test_grows_with_p(self):
        assert flooding_rounds(64, 10, 0.6) > flooding_rounds(64, 10, 0.2)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            flooding_rounds(16, 5, 1.0)


class TestFaultFreeExecution:
    def test_completes_in_radius_rounds(self):
        topology = grid(3, 4)
        algo = FastFlooding(topology, 0, "m", rounds=topology.radius_from(0))
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert result.is_successful_broadcast()

    def test_one_round_short_fails_fault_free(self):
        topology = line(5)
        algo = FastFlooding(topology, 0, "m", rounds=4)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert not result.is_successful_broadcast()
        assert result.outputs[5] == 0  # default

    def test_all_informed_nodes_transmit_every_round(self):
        topology = line(3)
        algo = FastFlooding(topology, 0, "m", rounds=3)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        # round 0: source; round 1: source + node 1; round 2: + node 2
        assert set(result.trace[0].actual) == {0}
        assert set(result.trace[1].actual) == {0, 1}
        assert set(result.trace[2].actual) == {0, 1, 2}


class TestUnderOmission:
    def test_almost_safe_with_computed_rounds(self):
        topology = binary_tree(4)
        algo = FastFlooding(topology, 0, 1, p=0.3)

        def trial(stream: RngStream) -> bool:
            run = FastFlooding(topology, 0, 1, rounds=algo.rounds)
            result = run_execution(run, OmissionFailures(0.3), stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 150, 7)
        assert outcome.estimate >= 1 - 2 / topology.order

    def test_starved_budget_fails_often(self):
        topology = line(10)

        def trial(stream: RngStream) -> bool:
            run = FastFlooding(topology, 0, 1, rounds=10)  # no slack at p=0.5
            result = run_execution(run, OmissionFailures(0.5), stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 60, 9)
        assert outcome.estimate < 0.2

    def test_construction_validation(self):
        with pytest.raises(ValueError, match="rounds or p"):
            FastFlooding(line(4), 0, 1)
        with pytest.raises(ValueError, match="silence"):
            FastFlooding(line(4), 0, None, rounds=5)

    def test_counterfactual_source(self):
        algo = FastFlooding(line(4), 0, 1, rounds=6)
        twin = algo.counterfactual_source(0)
        assert twin.intent(0) == {1: 0}
