"""Shared test helpers: scripted protocols for exercising the engine."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.engine.protocol import Algorithm, Protocol
from repro.graphs.topology import Topology


class ScriptedProtocol(Protocol):
    """Plays back a fixed per-round intent script and records deliveries."""

    def __init__(self, script: Sequence[Any]):
        self._script = list(script)
        self.received: List[Any] = []

    def intent(self, round_index: int):
        if round_index < len(self._script):
            return self._script[round_index]
        return None

    def deliver(self, round_index: int, received) -> None:
        self.received.append(received)

    def output(self) -> Any:
        return self.received


class ScriptedAlgorithm(Algorithm):
    """An Algorithm whose nodes play fixed scripts.

    ``scripts`` maps node -> list of per-round intents (missing nodes
    stay silent).  Protocol instances are cached so tests can inspect
    ``received`` after the run.
    """

    def __init__(self, topology: Topology, model: str,
                 scripts: Dict[int, Sequence[Any]], rounds: Optional[int] = None):
        super().__init__(topology, model)
        self._scripts = {node: list(script) for node, script in scripts.items()}
        if rounds is None:
            rounds = max(
                (len(script) for script in self._scripts.values()), default=0
            )
        self._rounds = rounds
        self.instances: Dict[int, ScriptedProtocol] = {}

    @property
    def rounds(self) -> int:
        return self._rounds

    def protocol(self, node: int) -> Protocol:
        instance = ScriptedProtocol(self._scripts.get(node, []))
        self.instances[node] = instance
        return instance
