"""Shared test helpers: scripted protocols and distrib worker spawning."""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.protocol import Algorithm, Protocol
from repro.graphs.topology import Topology


class ScriptedProtocol(Protocol):
    """Plays back a fixed per-round intent script and records deliveries."""

    def __init__(self, script: Sequence[Any]):
        self._script = list(script)
        self.received: List[Any] = []

    def intent(self, round_index: int):
        if round_index < len(self._script):
            return self._script[round_index]
        return None

    def deliver(self, round_index: int, received) -> None:
        self.received.append(received)

    def output(self) -> Any:
        return self.received


class ScriptedAlgorithm(Algorithm):
    """An Algorithm whose nodes play fixed scripts.

    ``scripts`` maps node -> list of per-round intents (missing nodes
    stay silent).  Protocol instances are cached so tests can inspect
    ``received`` after the run.
    """

    def __init__(self, topology: Topology, model: str,
                 scripts: Dict[int, Sequence[Any]], rounds: Optional[int] = None):
        super().__init__(topology, model)
        self._scripts = {node: list(script) for node, script in scripts.items()}
        if rounds is None:
            rounds = max(
                (len(script) for script in self._scripts.values()), default=0
            )
        self._rounds = rounds
        self.instances: Dict[int, ScriptedProtocol] = {}

    @property
    def rounds(self) -> int:
        return self._rounds

    def protocol(self, node: int) -> Protocol:
        instance = ScriptedProtocol(self._scripts.get(node, []))
        self.instances[node] = instance
        return instance


_REPO_ROOT = Path(__file__).resolve().parent.parent
_WORKER_BANNER = re.compile(r"listening on ([\d.]+):(\d+)")


class WorkerProcess:
    """One ``python -m repro.distrib worker`` subprocess on a free port.

    The worker binds port 0 and prints its banner; the constructor
    blocks on that line, so by the time it returns the worker is
    accepting connections.  ``extra_args`` pass through to the CLI
    (e.g. ``"--die-after-runs", "1"`` for fault-injection tests).
    """

    def __init__(self, *extra_args: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_REPO_ROOT / "src")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.distrib", "worker",
             "--port", "0", *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(_REPO_ROOT),
        )
        banner = self.process.stdout.readline()
        match = _WORKER_BANNER.search(banner)
        if match is None:  # pragma: no cover - startup failure path
            self.process.kill()
            rest = self.process.stdout.read()
            raise RuntimeError(f"worker failed to start: {banner!r}{rest!r}")
        self.host, self.port = match.group(1), int(match.group(2))

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def alive(self) -> bool:
        return self.process.poll() is None

    def close(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
        self.process.stdout.close()
        self.process.wait()
