"""Model-based property tests against independently written oracles.

The radio collision rule and the BFS metric are the two pieces of
semantics everything else leans on; these tests re-derive both from
first principles (per the paper's definitions) and compare against the
implementations over randomized instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import deliver_radio
from repro.graphs import Topology


@st.composite
def graph_and_transmitters(draw):
    order = draw(st.integers(min_value=2, max_value=10))
    possible = [(u, v) for u in range(order) for v in range(u + 1, order)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=18))
    transmitters = draw(st.sets(
        st.integers(min_value=0, max_value=order - 1), max_size=order
    ))
    return Topology(order, edges), transmitters


def radio_oracle(topology, transmitters):
    """The paper, verbatim: a node receives iff it does not transmit
    itself and exactly one of its neighbours transmits."""
    heard = {}
    for node in topology.nodes:
        if node in transmitters:
            heard[node] = None
            continue
        speaking = [u for u in transmitters if topology.has_edge(node, u)]
        heard[node] = ("payload", speaking[0]) if len(speaking) == 1 else None
    return heard


class TestRadioModel:
    @given(graph_and_transmitters())
    @settings(max_examples=150, deadline=None)
    def test_matches_oracle(self, instance):
        topology, transmitters = instance
        actual_map = {node: ("payload", node) for node in transmitters}
        heard = deliver_radio(topology, actual_map)
        assert heard == radio_oracle(topology, transmitters)

    @given(graph_and_transmitters())
    @settings(max_examples=80, deadline=None)
    def test_transmitters_never_hear(self, instance):
        topology, transmitters = instance
        heard = deliver_radio(topology, {n: "x" for n in transmitters})
        for node in transmitters:
            assert heard[node] is None

    @given(graph_and_transmitters())
    @settings(max_examples=80, deadline=None)
    def test_silence_without_transmitters(self, instance):
        topology, _ = instance
        heard = deliver_radio(topology, {})
        assert all(value is None for value in heard.values())


def bfs_oracle(topology, source):
    """Textbook queue-based BFS, written independently."""
    from collections import deque
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in topology.neighbors(node):
            if neighbour not in distances:
                distances[neighbour] = distances[node] + 1
                queue.append(neighbour)
    return [distances.get(node, -1) for node in topology.nodes]


class TestBfsMetric:
    @given(graph_and_transmitters())
    @settings(max_examples=120, deadline=None)
    def test_matches_oracle(self, instance):
        topology, _ = instance
        assert topology.bfs_distances(0) == bfs_oracle(topology, 0)
