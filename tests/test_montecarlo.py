"""Tests for the batched Monte-Carlo trial subsystem.

Covers the TrialRunner determinism contract (bit-identical indicators
for any worker count, and agreement with ``estimate_success`` under the
same root stream), fastsim auto-dispatch vs engine fallback, the shared
process-pool harness (ordering, cancellation, deterministic error
propagation), the truthfulness of ``TrialResult.workers`` on every
tier, the sampler registry, and the streaming statistics.
"""

import os
from functools import partial

import numpy as np
import pytest

from repro.analysis.estimation import (
    clopper_pearson,
    estimate_success,
    hoeffding_interval,
    wilson_interval,
)
from repro.analysis.thresholds import radio_malicious_threshold
from repro.core import FastFlooding, SimpleMalicious, SimpleOmission
from repro.core.radio_repeat import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import (
    ComplementAdversary,
    EqualizingStarAdversary,
    MaliciousFailures,
    OmissionFailures,
    RadioWorstCaseAdversary,
    SilentAdversary,
    SlowingAdversary,
)
from repro.fastsim import sample_simple_omission
from repro.graphs import bfs_tree, binary_tree, line, star
from repro.montecarlo import (
    FINGERPRINT_VERSION,
    AsyncTrialRunner,
    RunningTally,
    TrialRunner,
    find_sampler,
    register_sampler,
    registered_samplers,
    scenario_fingerprint,
    unregister_sampler,
)
from repro.montecarlo.pool import pool_context, run_sharded
from repro.radio.closed_form import line_schedule
from repro.rng import RngStream


TREE = binary_tree(3)
OMISSION = OmissionFailures(0.4)

# functools.partial over library callables stays picklable, so the same
# factory serves the in-process and the multi-process paths.
mp_factory = partial(SimpleOmission, TREE, 0, 1, MESSAGE_PASSING, 2)
radio_factory = partial(SimpleOmission, TREE, 0, 1, RADIO, 2)


class TestDeterminism:
    def test_single_vs_many_workers_bit_identical(self):
        serial = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             use_batchsim=False, workers=1).run(90, 13)
        sharded = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                              use_batchsim=False, workers=3).run(90, 13)
        assert serial.backend == "engine" and sharded.backend == "engine"
        np.testing.assert_array_equal(serial.indicators, sharded.indicators)

    def test_worker_count_does_not_leak_into_result_streams(self):
        two = TrialRunner(radio_factory, OMISSION, use_fastsim=False,
                          use_batchsim=False, workers=2).run(60, 5)
        four = TrialRunner(radio_factory, OMISSION, use_fastsim=False,
                           use_batchsim=False, workers=4).run(60, 5)
        np.testing.assert_array_equal(two.indicators, four.indicators)

    def test_matches_estimate_success_bit_for_bit(self):
        # Same root stream -> same per-trial child streams as the
        # historical estimate_success loop.
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False)
        batch = runner.run(50, RngStream(21))

        algorithm = mp_factory()

        def trial(stream):
            result = run_execution(
                algorithm, OMISSION, stream,
                metadata=algorithm.metadata(), record_trace=False,
            )
            return result.is_successful_broadcast()

        legacy = estimate_success(trial, 50, RngStream(21))
        assert legacy.successes == batch.successes
        assert legacy.trials == batch.trials

    def test_same_seed_same_indicators(self):
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False)
        np.testing.assert_array_equal(
            runner.run(40, 9).indicators, runner.run(40, 9).indicators
        )
        assert not np.array_equal(
            runner.run(40, 9).indicators, runner.run(40, 10).indicators
        )


class TestDispatch:
    def test_simple_omission_dispatches(self):
        runner = TrialRunner(mp_factory, OMISSION)
        entry = runner.dispatch_entry()
        assert entry is not None and entry.name == "simple-omission"
        result = runner.run(2000, 3)
        assert result.backend == "fastsim:simple-omission"

    def test_dispatch_matches_direct_sampler_call(self):
        result = TrialRunner(mp_factory, OMISSION).run(500, RngStream(17))
        direct = sample_simple_omission(
            bfs_tree(TREE, 0), 2, OMISSION.p, 500, RngStream(17)
        )
        np.testing.assert_array_equal(result.indicators, direct)

    def test_dispatch_agrees_with_engine_fallback(self):
        # Statistical, not bit-level: the sampler draws the success
        # event directly, the engine simulates every round.
        fast = TrialRunner(mp_factory, OMISSION).run(20000, 3)
        slow = TrialRunner(mp_factory, OMISSION, use_fastsim=False).run(400, 7)
        stats = slow.stats()
        assert stats.lower - 0.03 <= fast.estimate <= stats.upper + 0.03

    def test_malicious_scenarios_dispatch(self):
        mp = TrialRunner(
            partial(SimpleMalicious, TREE, 0, 1, MESSAGE_PASSING, 5),
            MaliciousFailures(0.3, ComplementAdversary()),
        )
        assert mp.dispatch_entry().name == "simple-malicious-mp"
        chain = line(4)
        radio = TrialRunner(
            partial(SimpleMalicious, chain, 0, 1, RADIO, 5),
            MaliciousFailures(0.1, RadioWorstCaseAdversary()),
        )
        assert radio.dispatch_entry().name == "simple-malicious-radio"
        # The shared-phase sampler is exact on any tree topology ...
        tree_radio = TrialRunner(
            partial(SimpleMalicious, TREE, 0, 1, RADIO, 5),
            MaliciousFailures(0.1, RadioWorstCaseAdversary()),
        )
        assert tree_radio.dispatch_entry().name == "simple-malicious-radio"
        # ... but non-tree edges correlate the listeners' neighbourhoods,
        # so graphs with cycles must not dispatch.
        cyclic = line(3).with_extra_edges([(0, 3)], name="cycle")
        cyclic_radio = TrialRunner(
            partial(SimpleMalicious, cyclic, 0, 1, RADIO, 5),
            MaliciousFailures(0.1, RadioWorstCaseAdversary()),
        )
        assert cyclic_radio.dispatch_entry() is None

    def test_flooding_dispatches(self):
        runner = TrialRunner(
            partial(FastFlooding, TREE, 0, 1, 0.3),
            OmissionFailures(0.3),
        )
        assert runner.dispatch_entry().name == "flooding"

    def test_radio_repeat_scenarios_dispatch(self):
        schedule = line_schedule(line(4))
        omission = TrialRunner(
            partial(RadioRepeat, schedule, 1, ADOPT_ANY, 3),
            OmissionFailures(0.3),
        )
        assert omission.dispatch_entry().name == "radio-repeat-omission"
        malicious = TrialRunner(
            partial(RadioRepeat, schedule, 1, ADOPT_MAJORITY, 3),
            MaliciousFailures(0.2, ComplementAdversary()),
        )
        assert malicious.dispatch_entry().name == "radio-repeat-malicious"
        # Rule/failure cross-pairings have no sampler.
        crossed = TrialRunner(
            partial(RadioRepeat, schedule, 1, ADOPT_MAJORITY, 3),
            OmissionFailures(0.3),
        )
        assert crossed.dispatch_entry() is None

    def test_equalizing_star_scenarios_dispatch(self):
        topology = star(4, source_is_center=False)
        q = radio_malicious_threshold(4)
        native = TrialRunner(
            partial(SimpleMalicious, topology, 0, 1, RADIO, 15),
            MaliciousFailures(
                q, EqualizingStarAdversary(source=0, center=1)
            ),
        )
        assert native.dispatch_entry().name == "equalizing-star"
        slowed = TrialRunner(
            partial(SimpleMalicious, topology, 0, 0, RADIO, 15),
            MaliciousFailures(
                q + 0.1,
                SlowingAdversary(
                    EqualizingStarAdversary(source=0, center=1), q + 0.1, q
                ),
            ),
        )
        assert slowed.dispatch_entry().name == "equalizing-star"
        # A slowing wrapper derived for a different raw rate would
        # realise a different effective rate: no dispatch.
        mismatched = TrialRunner(
            partial(SimpleMalicious, topology, 0, 1, RADIO, 15),
            MaliciousFailures(
                q + 0.1,
                SlowingAdversary(
                    EqualizingStarAdversary(source=0, center=1), 0.9, q
                ),
            ),
        )
        assert mismatched.dispatch_entry() is None
        # The attack must target the algorithm's actual source.
        wrong_source = TrialRunner(
            partial(SimpleMalicious, topology, 2, 1, RADIO, 15),
            MaliciousFailures(
                q, EqualizingStarAdversary(source=0, center=1)
            ),
        )
        assert wrong_source.dispatch_entry() is None

    def test_unmatched_scenario_falls_back_to_batchsim_then_engine(self):
        # No fastsim sampler covers majority adoption under a silent
        # (omission-like) adversary; the scenario is history-oblivious,
        # so the next tier is the vectorised batch engine — and with
        # that tier disabled too, the scalar engine.
        schedule = line_schedule(line(4))
        runner = TrialRunner(
            partial(RadioRepeat, schedule, 1, ADOPT_MAJORITY, 3),
            MaliciousFailures(0.2, SilentAdversary()),
        )
        assert runner.dispatch_entry() is None
        assert runner.run(10, 3).backend == "batchsim"
        scalar = TrialRunner(
            partial(RadioRepeat, schedule, 1, ADOPT_MAJORITY, 3),
            MaliciousFailures(0.2, SilentAdversary()),
            use_batchsim=False,
        )
        result = scalar.run(10, 3)
        assert result.backend == "engine"
        np.testing.assert_array_equal(
            result.indicators, runner.run(10, 3).indicators
        )

    def test_degenerate_message_convention_blocks_dispatch(self):
        # Ms == default would make every failed run look successful to
        # the engine; the sampler matcher must refuse the scenario.
        runner = TrialRunner(
            partial(SimpleOmission, TREE, 0, 0, MESSAGE_PASSING, 2),
            OMISSION,
        )
        assert runner.dispatch_entry() is None

    def test_custom_success_predicate_disables_dispatch(self):
        runner = TrialRunner(
            mp_factory, OMISSION,
            success=lambda result: 0 in result.correct_nodes(1),
        )
        assert runner.dispatch_entry() is None
        result = runner.run(20, 3)
        assert result.backend == "engine"
        assert result.successes == 20  # the source always knows Ms

    def test_use_fastsim_false_disables_dispatch(self):
        assert TrialRunner(mp_factory, OMISSION,
                           use_fastsim=False).dispatch_entry() is None


def _shard_square(value):
    """Module-level (picklable) pool worker: square the argument."""
    return value * value


def _shard_fail_on_odd(value):
    """Module-level pool worker raising on odd shard arguments."""
    if value % 2:
        raise ValueError(f"shard {value} failed")
    return value


def _shard_low_slow_high_fails(value):
    """Module-level pool worker: shards 0-1 are slow, shard 2 crashes fast.

    Drives the index-based ``on_result`` contract: shard 2's error
    lands on the wall clock *before* the lower shards complete, yet
    their callbacks must still fire.
    """
    import time

    if value < 2:
        time.sleep(0.3)
        return value
    raise ValueError(f"shard {value} failed")


def _shard_slow_first(value):
    """Module-level pool worker where shard 0 finishes last."""
    if value == 0:
        import time

        time.sleep(0.3)
    return value


_PARENT_PID = os.getpid()


def _parent_only_factory():
    """Factory that builds fine in the parent but raises in workers.

    Lets the tests drive the sharded tiers' error path: the parent's
    dispatch probe succeeds, every worker-side rebuild fails.  (Only
    meaningful under the fork start method, where the module state is
    inherited rather than re-imported.)
    """
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("worker-side build failed")
    return SimpleOmission(TREE, 0, 1, MESSAGE_PASSING, 2)


fork_only = pytest.mark.skipif(
    pool_context().get_start_method() != "fork",
    reason="needs fork semantics to tell parent from worker builds "
           "(spawned workers re-import this module and re-stamp "
           "_PARENT_PID)",
)


class TestPoolHarness:
    def test_results_come_back_in_shard_order(self):
        assert run_sharded(
            _shard_square, [(i,) for i in range(7)], max_workers=3
        ) == [0, 1, 4, 9, 16, 25, 36]

    def test_lowest_shard_index_error_wins(self):
        # Shards 1, 3, 5 all raise; whichever order the workers crash
        # in, the surfaced error must be shard 1's.
        with pytest.raises(ValueError, match="shard 1 failed"):
            run_sharded(
                _shard_fail_on_odd, [(i,) for i in range(6)], max_workers=2
            )

    def test_single_shard_still_runs_through_the_pool(self):
        assert run_sharded(_shard_square, [(5,)], max_workers=4) == [25]

    def test_on_result_streams_in_shard_order(self):
        # Shard 0 completes last, so shards 1..3 must be buffered and
        # the callback must still fire strictly in index order.
        seen = []
        results = run_sharded(
            _shard_slow_first, [(i,) for i in range(4)], max_workers=2,
            on_result=lambda index, result: seen.append((index, result)),
        )
        assert results == [0, 1, 2, 3]
        assert seen == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_on_result_contract_is_index_based_not_time_based(self):
        # Shard 2 crashes while the slow shards 0 and 1 are still
        # running: the documented contract ("not called for any shard
        # at or after the first error") is *index*-based, so the lower
        # shards' callbacks must fire even though the error reached the
        # completion loop first on the wall clock.
        seen = []
        with pytest.raises(ValueError, match="shard 2 failed"):
            run_sharded(
                _shard_low_slow_high_fails, [(i,) for i in range(3)],
                max_workers=3,
                on_result=lambda index, result: seen.append((index, result)),
            )
        assert seen == [(0, 0), (1, 1)]

    def test_on_result_never_fires_at_or_after_the_failing_shard(self):
        # Same worker, but the fast-failing argument now rides on shard
        # index 0 (the slow ones on 1 and 2): nothing may stream at all.
        seen = []
        with pytest.raises(ValueError, match="shard 2 failed"):
            run_sharded(
                _shard_low_slow_high_fails, [(2,), (0,), (1,)],
                max_workers=3,
                on_result=lambda index, result: seen.append((index, result)),
            )
        assert seen == []

    def test_first_error_cancels_siblings_exactly_once(self, monkeypatch):
        # Every shard raises; the cancellation sweep must run only on
        # the first error — per-failure re-sweeps would make a broken
        # pool's teardown O(shards^2) in cancel calls.
        import concurrent.futures

        calls = []
        original = concurrent.futures.Future.cancel

        def counting_cancel(self):
            calls.append(self)
            return original(self)

        monkeypatch.setattr(concurrent.futures.Future, "cancel",
                            counting_cancel)
        shards = [(2 * i + 1,) for i in range(6)]  # all odd: all raise
        with pytest.raises(ValueError, match="shard 1 failed"):
            run_sharded(_shard_fail_on_odd, shards, max_workers=2)
        assert len(calls) == len(shards)

    @fork_only
    def test_batchsim_worker_failure_propagates(self):
        runner = TrialRunner(
            _parent_only_factory, OMISSION, use_fastsim=False, workers=2
        )
        assert runner.dispatch_backend() == "batchsim"
        with pytest.raises(RuntimeError, match="worker-side build failed"):
            runner.run(520, 3)

    @fork_only
    def test_engine_worker_failure_propagates(self):
        runner = TrialRunner(
            _parent_only_factory, OMISSION, use_fastsim=False,
            use_batchsim=False, workers=2,
        )
        with pytest.raises(RuntimeError, match="worker-side build failed"):
            runner.run(60, 3)


class TestWorkersTruthful:
    """``TrialResult.workers`` reports the process count actually used."""

    def test_fastsim_always_reports_one(self):
        result = TrialRunner(mp_factory, OMISSION, workers=4).run(2000, 3)
        assert result.backend == "fastsim:simple-omission"
        assert result.workers == 1

    def test_sharded_batchsim_reports_chunk_count(self):
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             workers=2)
        result = runner.run(520, 7)
        assert result.backend == "batchsim"
        assert result.workers == 2

    def test_small_batchsim_batch_stays_in_process(self):
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             workers=4)
        result = runner.run(60, 7)
        assert result.backend == "batchsim"
        assert result.workers == 1

    def test_batchsim_chunks_capped_by_shard_floor(self):
        # 300 trials over 4 requested workers: only two 128-trial
        # chunks fit, so two processes run and two are never spawned.
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             workers=4)
        result = runner.run(300, 7)
        assert result.backend == "batchsim"
        assert result.workers == 2

    def test_engine_reports_pool_width(self):
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             use_batchsim=False, workers=3)
        result = runner.run(90, 13)
        assert result.backend == "engine"
        assert result.workers == 3

    def test_engine_single_trial_stays_in_process(self):
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             use_batchsim=False, workers=4)
        result = runner.run(1, 13)
        assert result.backend == "engine"
        assert result.workers == 1


class TestRegistry:
    def test_builtin_entries_present(self):
        names = [entry.name for entry in registered_samplers()]
        assert names[:4] == [
            "simple-omission", "simple-malicious-mp",
            "simple-malicious-radio", "flooding",
        ]

    def test_register_find_unregister_roundtrip(self):
        entry = register_sampler(
            "test-always-true",
            lambda algorithm, failure: getattr(
                algorithm, "phase_length", None
            ) == 99,
            lambda algorithm, failure, trials, stream:
                np.ones(trials, dtype=bool),
        )
        try:
            probe = SimpleOmission(TREE, 0, 1, MESSAGE_PASSING,
                                   phase_length=99)
            assert find_sampler(probe, OMISSION) is not None
            runner = TrialRunner(
                partial(SimpleOmission, TREE, 0, 1, MESSAGE_PASSING, 99),
                OMISSION,
            )
            # Registration order: the built-in omission matcher wins
            # first, so dispatch still lands there.
            assert runner.dispatch_entry().name == "simple-omission"
            assert entry.name == "test-always-true"
        finally:
            unregister_sampler("test-always-true")
        assert "test-always-true" not in [
            e.name for e in registered_samplers()
        ]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_sampler(
                "simple-omission", lambda a, f: False,
                lambda a, f, t, s: np.zeros(t, dtype=bool),
            )

    def test_unknown_unregister_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            unregister_sampler("no-such-sampler")


class TestStatistics:
    def test_running_tally_streams_counts(self):
        tally = RunningTally()
        tally.update(np.array([True, False, True]))
        tally.update(np.array([True]))
        assert tally.successes == 3 and tally.trials == 4
        assert tally.estimate == 0.75
        assert tally.wilson() == wilson_interval(3, 4)
        assert tally.hoeffding() == hoeffding_interval(3, 4)
        assert tally.clopper_pearson() == clopper_pearson(3, 4)

    def test_progress_callback_sees_growing_tally(self):
        seen = []
        runner = TrialRunner(mp_factory, OMISSION, use_fastsim=False,
                             use_batchsim=False, workers=2)
        result = runner.run(40, 3, progress=lambda t: seen.append(t.trials))
        assert seen[-1] == 40 == result.trials
        assert seen == sorted(seen)

    def test_result_intervals_match_analysis_functions(self):
        result = TrialRunner(mp_factory, OMISSION).run(300, 5)
        stats = result.stats()
        assert (stats.lower, stats.upper) == clopper_pearson(
            result.successes, result.trials, 0.99
        )
        assert result.wilson() == wilson_interval(
            result.successes, result.trials, 0.99
        )
        assert result.hoeffding() == hoeffding_interval(
            result.successes, result.trials, 0.99
        )
        assert stats.lower <= result.estimate <= stats.upper

    def test_hoeffding_interval_properties(self):
        lower, upper = hoeffding_interval(80, 100, confidence=0.95)
        assert lower <= 0.8 <= upper
        wider = hoeffding_interval(80, 100, confidence=0.999)
        assert wider[0] <= lower and upper <= wider[1]
        assert hoeffding_interval(0, 10)[0] == 0.0
        assert hoeffding_interval(10, 10)[1] == 1.0
        with pytest.raises(ValueError, match="exceed"):
            hoeffding_interval(5, 4)


class TestValidation:
    def test_rejects_non_callable_factory(self):
        with pytest.raises(TypeError, match="callable"):
            TrialRunner("not-a-factory", OMISSION)

    def test_rejects_non_failure_model(self):
        with pytest.raises(TypeError, match="FailureModel"):
            TrialRunner(mp_factory, failure_model="omission")

    def test_rejects_bad_trial_count(self):
        runner = TrialRunner(mp_factory, OMISSION)
        with pytest.raises(ValueError):
            runner.run(0, 3)

    def test_default_failure_model_is_fault_free(self):
        result = TrialRunner(radio_factory).run(5, 3)
        assert result.estimate == 1.0


class TestScenarioFingerprint:
    def test_equal_specs_hash_equal(self):
        a = partial(SimpleOmission, binary_tree(3), 0, 1, MESSAGE_PASSING, 2)
        b = partial(SimpleOmission, binary_tree(3), 0, 1, MESSAGE_PASSING, 2)
        assert (scenario_fingerprint(a, OmissionFailures(0.4), 100, 7)
                == scenario_fingerprint(b, OmissionFailures(0.4), 100, 7))

    def test_every_component_is_distinguished(self):
        base = scenario_fingerprint(mp_factory, OMISSION, 100, 7)
        assert base != scenario_fingerprint(mp_factory, OMISSION, 101, 7)
        assert base != scenario_fingerprint(mp_factory, OMISSION, 100, 8)
        assert base != scenario_fingerprint(mp_factory,
                                            OmissionFailures(0.3), 100, 7)
        assert base != scenario_fingerprint(radio_factory, OMISSION, 100, 7)
        assert base != scenario_fingerprint(mp_factory, None, 100, 7)
        assert base != scenario_fingerprint(mp_factory, OMISSION, 100, 7,
                                            extra="predicate-name")

    def test_digest_shape_and_version(self):
        digest = scenario_fingerprint(mp_factory, OMISSION, 10, 0)
        assert len(digest) == 64
        int(digest, 16)  # valid hex
        assert FINGERPRINT_VERSION == 1

    def test_unpicklable_factory_raises_type_error(self):
        with pytest.raises(TypeError, match="picklable"):
            scenario_fingerprint(lambda: None, OMISSION, 10, 0)

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            scenario_fingerprint(mp_factory, OMISSION, 0, 0)


class TestAsyncTrialRunner:
    def test_rejects_non_runner(self):
        with pytest.raises(TypeError, match="TrialRunner"):
            AsyncTrialRunner("not-a-runner")

    def test_run_matches_sync_bytes(self):
        import asyncio

        runner = TrialRunner(mp_factory, OMISSION)
        sync_result = runner.run(64, 5)
        async_result = asyncio.run(AsyncTrialRunner(runner).run(64, 5))
        assert (async_result.indicators.tobytes()
                == sync_result.indicators.tobytes())
        assert async_result.backend == sync_result.backend

    def test_run_until_matches_sync(self):
        import asyncio

        runner = TrialRunner(mp_factory, OMISSION)
        sync_result = runner.run_until(0.5, 2048, 5)
        async_result = asyncio.run(
            AsyncTrialRunner(runner).run_until(0.5, 2048, 5))
        assert (async_result.result.indicators.tobytes()
                == sync_result.result.indicators.tobytes())

    def test_concurrent_batches_overlap_on_the_loop(self):
        import asyncio

        runner = TrialRunner(mp_factory, OMISSION)
        arunner = AsyncTrialRunner(runner)

        async def scenario():
            return await asyncio.gather(
                arunner.run(32, 1), arunner.run(32, 2))

        first, second = asyncio.run(scenario())
        assert first.trials == second.trials == 32
        assert (first.indicators.tobytes()
                != second.indicators.tobytes()
                or first.successes == second.successes)
