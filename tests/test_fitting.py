"""Tests for the shape-fitting helpers."""

import math

import pytest

from repro.analysis.fitting import (
    LinearFit,
    fit_d_plus_log_n,
    fit_linear_model,
    fit_power_law,
    r_squared,
)


class TestRSquared:
    def test_perfect_fit(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == 1.0

    def test_mean_prediction_scores_zero(self):
        assert r_squared([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)

    def test_constant_data(self):
        assert r_squared([5, 5], [5, 5]) == 1.0
        assert r_squared([5, 5], [4, 6]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r_squared([1, 2], [1, 2, 3])


class TestLinearModel:
    def test_exact_recovery(self):
        rows = [[1, 0], [0, 1], [1, 1], [2, 3]]
        targets = [2 * a + 5 * b for a, b in rows]
        fit = fit_linear_model(rows, targets, ["a", "b"])
        assert fit.coefficients == pytest.approx((2.0, 5.0))
        assert fit.score == pytest.approx(1.0)

    def test_predict_row(self):
        fit = LinearFit((2.0, 5.0), ("a", "b"), 1.0)
        assert fit.predict_row([3, 1]) == pytest.approx(11.0)
        with pytest.raises(ValueError):
            fit.predict_row([1])

    def test_describe(self):
        fit = LinearFit((2.0, 5.0), ("a", "b"), 0.99)
        assert "2*a" in fit.describe() and "R^2" in fit.describe()

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            fit_linear_model([[1, 2]], [1, 2], ["a", "b"])


class TestDPlusLogN:
    def test_recovers_planted_coefficients(self):
        radii = [4, 8, 16, 32, 64]
        orders = [16, 64, 256, 1024, 4096]
        times = [3 * d + 7 * math.log2(n) + 2 for d, n in zip(radii, orders)]
        fit = fit_d_plus_log_n(radii, orders, times)
        assert fit.coefficients[0] == pytest.approx(3.0, abs=1e-6)
        assert fit.coefficients[1] == pytest.approx(7.0, abs=1e-6)
        assert fit.score == pytest.approx(1.0)

    def test_custom_exponent(self):
        radii = [4, 8, 16, 6, 40]
        orders = [16, 64, 256, 1024, 100]
        times = [
            2 * d + 3 * math.log2(n) ** 2 for d, n in zip(radii, orders)
        ]
        fit = fit_d_plus_log_n(radii, orders, times, log_exponent=2.0)
        assert fit.coefficients[0] == pytest.approx(2.0, abs=1e-6)
        assert fit.coefficients[1] == pytest.approx(3.0, abs=1e-6)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_d_plus_log_n([1], [2, 3], [4])


class TestPowerLaw:
    def test_exact_recovery(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x ** 1.5 for x in xs]
        a, b = fit_power_law(xs, ys)
        assert a == pytest.approx(3.0, rel=1e-9)
        assert b == pytest.approx(1.5, rel=1e-9)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])
