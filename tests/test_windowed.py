"""Tests for the windowed (no-index) Simple-Malicious variant."""

import pytest

from repro.analysis.estimation import estimate_success
from repro.core import WindowedMalicious
from repro.engine import run_execution
from repro.failures import (
    ComplementAdversary,
    FaultFree,
    GarbageAdversary,
    MaliciousFailures,
    Restriction,
)
from repro.graphs import binary_tree, grid, line
from repro.rng import RngStream


class TestConstruction:
    def test_window_from_p(self):
        algo = WindowedMalicious(line(4), 0, 1, p=0.3)
        assert algo.window_length >= 1
        assert algo.acceptance_threshold == (algo.window_length + 1) // 2

    def test_horizon_default(self):
        algo = WindowedMalicious(line(4), 0, 1, window_length=10)
        assert algo.rounds == (4 + 2) * 10

    def test_requires_window_or_p(self):
        with pytest.raises(ValueError, match="window_length or p"):
            WindowedMalicious(line(4), 0, 1)


class TestFaultFree:
    def test_broadcast_succeeds(self):
        for topology, source in [(line(5), 0), (binary_tree(3), 0),
                                 (grid(3, 3), 4)]:
            algo = WindowedMalicious(topology, source, "M", window_length=6)
            result = run_execution(algo, FaultFree(), 0,
                                   metadata=algo.metadata())
            assert result.is_successful_broadcast()

    def test_acceptance_happens_within_parent_window(self):
        algo = WindowedMalicious(line(3), 0, "M", window_length=6)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        # depth-d node accepts after ceil(m/2) copies: round d*m + m/2 or so
        trace = result.trace
        first_delivery_rounds = {}
        for record in trace:
            for node in record.deliveries:
                first_delivery_rounds.setdefault(node, record.round_index)
        assert first_delivery_rounds[1] == 0
        assert first_delivery_rounds[2] <= 6 + 3

    def test_relay_stops_after_m_rounds(self):
        algo = WindowedMalicious(line(2), 0, "M", window_length=4)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        transmissions = result.trace.transmissions_of(0)
        assert len(transmissions) == 4  # exactly m relays, then silence


class TestUnderAdversaries:
    def test_complement_adversary(self):
        topology = grid(3, 3)
        algo = WindowedMalicious(topology, 0, 1, p=0.25)

        def trial(stream: RngStream) -> bool:
            run = WindowedMalicious(topology, 0, 1,
                                    window_length=algo.window_length)
            failure = MaliciousFailures(0.25, ComplementAdversary())
            result = run_execution(run, failure, stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 60, 3)
        assert outcome.estimate >= 1 - 3 / topology.order

    def test_garbage_adversary_limited(self):
        topology = line(5)
        algo = WindowedMalicious(topology, 0, 1, p=0.3)

        def trial(stream: RngStream) -> bool:
            run = WindowedMalicious(topology, 0, 1,
                                    window_length=algo.window_length)
            failure = MaliciousFailures(0.3, GarbageAdversary(),
                                        Restriction.LIMITED)
            result = run_execution(run, failure, stream,
                                   metadata=run.metadata(),
                                   record_trace=False)
            return result.is_successful_broadcast()

        outcome = estimate_success(trial, 60, 5)
        assert outcome.estimate >= 1 - 3 / topology.order

    def test_never_accepts_minority_noise(self):
        # a window of m rounds with fewer than m/2 identical copies
        # must not trigger acceptance
        algo = WindowedMalicious(line(2), 0, 1, window_length=9)
        protocol = algo.protocol(1)
        for round_index in range(4):
            protocol.deliver(round_index, {0: "noise"})
        for round_index in range(4, 9):
            protocol.deliver(round_index, {})
        assert protocol.accepted is None
