"""Tests for the Kučera plan algebra ([CO1]/[CO2])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.chernoff import binomial_tail_ge
from repro.core.kucera import (
    Edge,
    Repeat,
    Serial,
    describe_plan,
    guarantee,
)


class TestEdge:
    def test_guarantee(self):
        g = guarantee(Edge(), 0.3)
        assert (g.length, g.time, g.delay, g.failure) == (1, 1, 1, 0.3)


class TestSerial:
    def test_co1_algebra(self):
        g = guarantee(Serial(Edge(), 4), 0.2)
        assert g.length == 4
        assert g.time == 4
        assert g.delay == 1
        assert g.failure == pytest.approx(1 - 0.8 ** 4)

    def test_rho_validation(self):
        with pytest.raises(ValueError, match="rho"):
            Serial(Edge(), 1)


class TestRepeat:
    def test_co2_algebra(self):
        g = guarantee(Repeat(Edge(), 5), 0.2)
        assert g.length == 1
        assert g.time == 1 + 4 * 1
        assert g.delay == 5
        assert g.failure == pytest.approx(binomial_tail_ge(5, 2.5, 0.2))

    def test_even_kappa_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            Repeat(Edge(), 4)

    def test_repetition_reduces_failure(self):
        plain = guarantee(Edge(), 0.3).failure
        boosted = guarantee(Repeat(Edge(), 9), 0.3).failure
        assert boosted < plain


class TestComposite:
    def test_nested_algebra(self):
        # R3(S2(R3(E))) at p: verify by hand-computed recurrences
        p = 0.25
        inner = Repeat(Edge(), 3)
        gi = guarantee(inner, p)
        q_inner = binomial_tail_ge(3, 1.5, p)
        assert gi.failure == pytest.approx(q_inner)
        assert (gi.time, gi.delay) == (3, 3)
        serial = Serial(inner, 2)
        gs = guarantee(serial, p)
        assert gs.length == 2
        assert gs.time == 6
        assert gs.delay == 3
        assert gs.failure == pytest.approx(1 - (1 - q_inner) ** 2)
        outer = Repeat(serial, 3)
        go = guarantee(outer, p)
        assert go.length == 2
        assert go.time == 6 + 2 * 3
        assert go.delay == 9
        assert go.failure == pytest.approx(
            binomial_tail_ge(3, 1.5, gs.failure)
        )

    def test_describe(self):
        plan = Repeat(Serial(Repeat(Edge(), 3), 4), 5)
        assert describe_plan(plan) == "R5(S4(R3(E)))"


@st.composite
def plans(draw, max_depth=4):
    if max_depth == 0 or draw(st.booleans()):
        return Edge()
    if draw(st.booleans()):
        return Serial(draw(plans(max_depth=max_depth - 1)),
                      draw(st.integers(min_value=2, max_value=5)))
    return Repeat(draw(plans(max_depth=max_depth - 1)),
                  draw(st.sampled_from([3, 5, 7])))


class TestPlanProperties:
    @given(plans(), st.floats(min_value=0.0, max_value=0.49))
    @settings(max_examples=80, deadline=None)
    def test_guarantee_sanity(self, plan, p):
        g = guarantee(plan, p)
        assert g.length >= 1
        assert g.time >= g.length  # at least one round per hop
        assert g.delay >= 1
        assert 0.0 <= g.failure <= 1.0

    @given(plans())
    @settings(max_examples=60, deadline=None)
    def test_failure_monotone_in_p(self, plan):
        failures = [guarantee(plan, p).failure for p in (0.05, 0.2, 0.4)]
        assert failures == sorted(failures)

    @given(plans())
    @settings(max_examples=60, deadline=None)
    def test_zero_p_means_zero_failure(self, plan):
        assert guarantee(plan, 0.0).failure == 0.0
