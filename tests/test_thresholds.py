"""Tests for the feasibility thresholds."""

import math

import pytest

from repro.analysis.thresholds import (
    MP_MALICIOUS_THRESHOLD,
    mp_malicious_feasible,
    omission_feasible,
    radio_feasible,
    radio_malicious_threshold,
    radio_threshold_asymptote,
    radio_threshold_table,
)


class TestRadioThreshold:
    def test_root_property(self):
        for delta in (0, 1, 2, 5, 10, 50):
            p_star = radio_malicious_threshold(delta)
            assert p_star == pytest.approx(
                (1 - p_star) ** (delta + 1), abs=1e-12
            )

    def test_known_values(self):
        # delta = 0: p = 1 - p -> 1/2
        assert radio_malicious_threshold(0) == pytest.approx(0.5)
        # delta = 1: p = (1-p)^2 -> (3 - sqrt(5)) / 2
        golden = (3 - math.sqrt(5)) / 2
        assert radio_malicious_threshold(1) == pytest.approx(golden, abs=1e-12)

    def test_strictly_decreasing_in_degree(self):
        values = [radio_malicious_threshold(d) for d in range(0, 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_interior(self):
        for delta in (0, 3, 100):
            assert 0.0 < radio_malicious_threshold(delta) < 0.5 + 1e-12

    def test_feasibility_predicate_consistent_with_root(self):
        for delta in (1, 4, 9):
            p_star = radio_malicious_threshold(delta)
            assert radio_feasible(p_star - 1e-6, delta)
            assert not radio_feasible(p_star + 1e-6, delta)

    def test_threshold_table(self):
        table = radio_threshold_table([1, 2, 3])
        assert set(table) == {1, 2, 3}
        assert table[1] == radio_malicious_threshold(1)

    def test_asymptote_shape(self):
        # p*(delta) ~ ln(delta)/delta: ratio tends toward 1 as delta grows
        ratios = [
            radio_malicious_threshold(d) / radio_threshold_asymptote(d)
            for d in (64, 256, 1024)
        ]
        assert all(0.5 < r < 1.5 for r in ratios)
        # and the approximation improves
        assert abs(ratios[-1] - 1) < abs(ratios[0] - 1)


class TestSimplePredicates:
    def test_mp_threshold_constant(self):
        assert MP_MALICIOUS_THRESHOLD == 0.5

    def test_mp_feasible(self):
        assert mp_malicious_feasible(0.49)
        assert not mp_malicious_feasible(0.5)

    def test_omission_always_feasible(self):
        assert omission_feasible(0.99)
        assert omission_feasible(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mp_malicious_feasible(1.5)
        with pytest.raises(ValueError):
            radio_malicious_threshold(-1)
