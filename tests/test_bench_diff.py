"""Tests for the soft benchmark-regression diff used by CI."""

import json

from benchmarks.diff_bench import DEFAULT_THRESHOLD, compare, load_means, main


def _bench_json(means):
    return {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadMeans:
    def test_reads_fullname_and_mean(self, tmp_path):
        path = _write(tmp_path, "bench.json",
                      _bench_json({"bench_a": 0.5, "bench_b": 0.01}))
        assert load_means(path) == {"bench_a": 0.5, "bench_b": 0.01}

    def test_missing_file_is_none(self, tmp_path):
        assert load_means(str(tmp_path / "nope.json")) is None

    def test_malformed_json_is_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_means(str(path)) is None
        other = _write(tmp_path, "wrong.json", {"something": "else"})
        assert load_means(other) is None


class TestCompare:
    def test_flags_only_regressions_beyond_threshold(self):
        previous = {"fast": 1.0, "steady": 1.0, "improved": 1.0}
        current = {"fast": 1.5, "steady": 1.1, "improved": 0.5}
        rows = compare(previous, current, threshold=0.2)
        assert [row[0] for row in rows] == ["fast"]
        name, before, now, change = rows[0]
        assert (before, now) == (1.0, 1.5)
        assert abs(change - 0.5) < 1e-12

    def test_sorted_worst_first(self):
        rows = compare({"a": 1.0, "b": 1.0}, {"a": 1.3, "b": 2.0}, 0.2)
        assert [row[0] for row in rows] == ["b", "a"]

    def test_unmatched_benchmarks_ignored(self):
        assert compare({"gone": 1.0}, {"new": 9.0}) == []

    def test_default_threshold_is_twenty_percent(self):
        assert compare({"x": 1.0}, {"x": 1.19})  == []
        assert DEFAULT_THRESHOLD == 0.20
        assert compare({"x": 1.0}, {"x": 1.21}) != []


class TestMain:
    def test_regression_warns_but_exits_zero(self, tmp_path, capsys):
        prev = _write(tmp_path, "prev.json", _bench_json({"bench": 0.1}))
        curr = _write(tmp_path, "curr.json", _bench_json({"bench": 0.2}))
        assert main([prev, curr]) == 0
        out = capsys.readouterr().out
        assert "::warning title=benchmark regression::bench" in out
        assert "+100.0%" in out

    def test_missing_previous_is_soft(self, tmp_path, capsys):
        curr = _write(tmp_path, "curr.json", _bench_json({"bench": 0.1}))
        assert main([str(tmp_path / "absent.json"), curr]) == 0
        assert "::notice::" in capsys.readouterr().out

    def test_clean_run_reports_counts(self, tmp_path, capsys):
        prev = _write(tmp_path, "prev.json", _bench_json({"bench": 0.1}))
        curr = _write(tmp_path, "curr.json", _bench_json({"bench": 0.105}))
        assert main([prev, curr]) == 0
        assert "none regressed" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path, capsys):
        prev = _write(tmp_path, "prev.json", _bench_json({"bench": 0.1}))
        curr = _write(tmp_path, "curr.json", _bench_json({"bench": 0.125}))
        assert main(["--threshold", "0.5", prev, curr]) == 0
        assert "none regressed" in capsys.readouterr().out
        assert main(["--threshold", "0.2", prev, curr]) == 0
        assert "::warning" in capsys.readouterr().out


class TestHistory:
    def _history(self, *means_list):
        from benchmarks.diff_bench import append_history, load_history

        history = {"runs": []}
        for index, means in enumerate(means_list):
            history = append_history(history, f"run{index}", means)
        return history

    def test_load_missing_or_malformed_starts_fresh(self, tmp_path):
        from benchmarks.diff_bench import load_history

        assert load_history(str(tmp_path / "nope.json")) == {"runs": []}
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_history(str(bad)) == {"runs": []}
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"runs": "not-a-list"}))
        assert load_history(str(wrong)) == {"runs": []}

    def test_append_trims_to_max_runs(self):
        from benchmarks.diff_bench import append_history

        history = {"runs": []}
        for index in range(10):
            history = append_history(
                history, f"sha{index}", {"bench": 0.1}, max_runs=4
            )
        assert len(history["runs"]) == 4
        assert [run["run_id"] for run in history["runs"]] == [
            "sha6", "sha7", "sha8", "sha9",
        ]

    def test_trend_flags_drift_above_median(self):
        from benchmarks.diff_bench import trend_regressions

        history = self._history(
            {"bench_a": 0.10, "bench_b": 0.10},
            {"bench_a": 0.11, "bench_b": 0.10},
            {"bench_a": 0.09, "bench_b": 0.10},
        )
        current = {"bench_a": 0.30, "bench_b": 0.11}  # a drifted 3x, b noise
        rows = trend_regressions(history, current, threshold=0.2)
        assert [row[0] for row in rows] == ["bench_a"]
        name, median, now, change, samples = rows[0]
        assert median == 0.10 and now == 0.30 and samples == 3
        assert abs(change - 2.0) < 1e-9

    def test_trend_needs_a_stored_baseline(self):
        from benchmarks.diff_bench import trend_regressions

        assert trend_regressions({"runs": []}, {"bench": 1.0}) == []

    def test_new_benchmarks_are_skipped(self):
        from benchmarks.diff_bench import trend_regressions

        history = self._history({"old": 0.1})
        current = {"old": 0.1, "new": 9.0}
        assert trend_regressions(history, current, threshold=0.2) == []

    def test_judged_run_never_sits_in_its_own_baseline(self):
        from benchmarks.diff_bench import trend_regressions

        # One stored run at 0.1, current at 0.13 (+30%).  An
        # append-first implementation would judge 0.13 against the
        # median of {0.1, 0.13} = 0.115 (+13%) and miss the drift.
        history = self._history({"bench": 0.10})
        rows = trend_regressions(history, {"bench": 0.13}, threshold=0.2)
        assert [row[0] for row in rows] == ["bench"]
        assert rows[0][1] == 0.10 and rows[0][4] == 1

    def test_drifting_series_detected_at_full_history_depth(self):
        from benchmarks.diff_bench import append_history, trend_regressions

        # A synthetic slow drift that has already filled the history to
        # --max-runs depth: stored means 0.10, 0.12, 0.14; current 0.15.
        # Judged against the stored median (0.12) the drift is +25% and
        # must be flagged at the default-ish 20% threshold.  The old
        # append-before-judge path trimmed the series to
        # [0.12, 0.14, 0.15] first and compared 0.15 against
        # median(0.12, 0.14) = 0.13 (+15%) — silently under threshold,
        # and ever more dampened as each new drifted run evicted the
        # oldest (fastest) baseline sample.
        history = {"runs": []}
        for index, mean in enumerate([0.10, 0.12, 0.14]):
            history = append_history(history, f"sha{index}",
                                     {"bench": mean}, max_runs=3)
        rows = trend_regressions(history, {"bench": 0.15}, threshold=0.2)
        assert [row[0] for row in rows] == ["bench"]
        name, median, now, change, samples = rows[0]
        assert median == 0.12 and now == 0.15 and samples == 3
        assert abs(change - 0.25) < 1e-9


class TestHistoryCli:
    def test_history_mode_appends_and_persists(self, tmp_path, capsys):
        current = _write(tmp_path, "curr.json", _bench_json({"bench": 0.1}))
        history_path = str(tmp_path / "history.json")
        assert main(["--history", history_path, "--run-id", "abc",
                     current]) == 0
        assert main(["--history", history_path, "--run-id", "def",
                     current]) == 0
        with open(history_path) as handle:
            history = json.load(handle)
        assert [run["run_id"] for run in history["runs"]] == ["abc", "def"]
        out = capsys.readouterr().out
        assert "benchmark trend" in out

    def test_history_mode_warns_on_trend(self, tmp_path, capsys):
        from benchmarks.diff_bench import append_history

        history_path = tmp_path / "history.json"
        seeded = {"runs": []}
        for index in range(3):
            seeded = append_history(seeded, f"sha{index}", {"bench": 0.1})
        history_path.write_text(json.dumps(seeded))
        current = _write(tmp_path, "curr.json", _bench_json({"bench": 0.5}))
        assert main(["--history", str(history_path), current]) == 0
        assert "trend regression" in capsys.readouterr().out

    def test_drift_warns_even_when_history_is_at_capacity(self, tmp_path,
                                                          capsys):
        from benchmarks.diff_bench import append_history

        history_path = tmp_path / "history.json"
        seeded = {"runs": []}
        for index, mean in enumerate([0.10, 0.12, 0.14]):
            seeded = append_history(seeded, f"sha{index}", {"bench": mean},
                                    max_runs=3)
        history_path.write_text(json.dumps(seeded))
        current = _write(tmp_path, "curr.json", _bench_json({"bench": 0.15}))
        assert main(["--history", str(history_path), "--max-runs", "3",
                     current]) == 0
        assert "trend regression" in capsys.readouterr().out
        # The judged run is persisted after the check, still trimmed.
        with open(history_path) as handle:
            runs = json.load(handle)["runs"]
        assert [run["means"]["bench"] for run in runs] == [0.12, 0.14, 0.15]

    def test_pairwise_mode_still_requires_two_files(self, tmp_path):
        current = _write(tmp_path, "curr.json", _bench_json({"bench": 0.1}))
        import pytest

        with pytest.raises(SystemExit):
            main([current])
