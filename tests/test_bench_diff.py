"""Tests for the soft benchmark-regression diff used by CI."""

import json

from benchmarks.diff_bench import DEFAULT_THRESHOLD, compare, load_means, main


def _bench_json(means):
    return {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadMeans:
    def test_reads_fullname_and_mean(self, tmp_path):
        path = _write(tmp_path, "bench.json",
                      _bench_json({"bench_a": 0.5, "bench_b": 0.01}))
        assert load_means(path) == {"bench_a": 0.5, "bench_b": 0.01}

    def test_missing_file_is_none(self, tmp_path):
        assert load_means(str(tmp_path / "nope.json")) is None

    def test_malformed_json_is_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_means(str(path)) is None
        other = _write(tmp_path, "wrong.json", {"something": "else"})
        assert load_means(other) is None


class TestCompare:
    def test_flags_only_regressions_beyond_threshold(self):
        previous = {"fast": 1.0, "steady": 1.0, "improved": 1.0}
        current = {"fast": 1.5, "steady": 1.1, "improved": 0.5}
        rows = compare(previous, current, threshold=0.2)
        assert [row[0] for row in rows] == ["fast"]
        name, before, now, change = rows[0]
        assert (before, now) == (1.0, 1.5)
        assert abs(change - 0.5) < 1e-12

    def test_sorted_worst_first(self):
        rows = compare({"a": 1.0, "b": 1.0}, {"a": 1.3, "b": 2.0}, 0.2)
        assert [row[0] for row in rows] == ["b", "a"]

    def test_unmatched_benchmarks_ignored(self):
        assert compare({"gone": 1.0}, {"new": 9.0}) == []

    def test_default_threshold_is_twenty_percent(self):
        assert compare({"x": 1.0}, {"x": 1.19})  == []
        assert DEFAULT_THRESHOLD == 0.20
        assert compare({"x": 1.0}, {"x": 1.21}) != []


class TestMain:
    def test_regression_warns_but_exits_zero(self, tmp_path, capsys):
        prev = _write(tmp_path, "prev.json", _bench_json({"bench": 0.1}))
        curr = _write(tmp_path, "curr.json", _bench_json({"bench": 0.2}))
        assert main([prev, curr]) == 0
        out = capsys.readouterr().out
        assert "::warning title=benchmark regression::bench" in out
        assert "+100.0%" in out

    def test_missing_previous_is_soft(self, tmp_path, capsys):
        curr = _write(tmp_path, "curr.json", _bench_json({"bench": 0.1}))
        assert main([str(tmp_path / "absent.json"), curr]) == 0
        assert "::notice::" in capsys.readouterr().out

    def test_clean_run_reports_counts(self, tmp_path, capsys):
        prev = _write(tmp_path, "prev.json", _bench_json({"bench": 0.1}))
        curr = _write(tmp_path, "curr.json", _bench_json({"bench": 0.105}))
        assert main([prev, curr]) == 0
        assert "none regressed" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path, capsys):
        prev = _write(tmp_path, "prev.json", _bench_json({"bench": 0.1}))
        curr = _write(tmp_path, "curr.json", _bench_json({"bench": 0.125}))
        assert main(["--threshold", "0.5", prev, curr]) == 0
        assert "none regressed" in capsys.readouterr().out
        assert main(["--threshold", "0.2", prev, curr]) == 0
        assert "::warning" in capsys.readouterr().out
