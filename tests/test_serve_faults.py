"""Wire fault injection: the server survives hostile clients.

Each test throws one failure mode at a live :class:`SimulationServer`
and asserts three things: the server **survives** (a follow-up query
on a fresh connection succeeds), the client gets a **structured**
error code (never a hung or torn connection where a response was
possible), and the failure is **counted** (``serve.wire.errors{code}``
/ ``serve.errors{code}``) without poisoning the memo — after any
fault, recomputing the same fingerprint yields bytes identical to a
clean direct run.

Failure modes covered: malformed NDJSON, oversized request lines,
connections torn mid-line and mid-flight, slow-loris clients
dribbling a request byte-by-byte (while other connections stay
served), an executor whose workers die mid-batch, and admission-
control overload (structured ``overloaded`` + ``retry_after_ms``,
deterministic with a 1-slot controller).

No pytest-asyncio in the environment, so every async scenario runs
under ``asyncio.run`` inside plain test functions.
"""

import asyncio
import json
from concurrent.futures import Executor, ThreadPoolExecutor
from hashlib import sha256

from repro.experiments.registry import resolve_scenario
from repro.montecarlo import TrialRunner
from repro.obs import render_prometheus, use_registry
from repro.serve import (
    Query,
    SimulationServer,
    SimulationService,
    query_many,
    query_one,
)
from repro.serve.protocol import MAX_LINE_BYTES

SLOW_QUERY = {"scenario": "windowed-malicious", "p": 0.25, "n": 2,
              "trials": 150, "seed": 4}


def run(coro):
    return asyncio.run(coro)


async def _with_server(callback, **service_kwargs):
    service = SimulationService(**service_kwargs)
    server = SimulationServer(service)
    host, port = await server.start()
    try:
        return await callback(host, port, server)
    finally:
        await server.close()
        service.close()


async def _server_is_alive(host, port):
    response = await query_one(host, port, {
        "scenario": "flooding", "p": 0.1, "n": 5, "trials": 16, "seed": 1,
    })
    assert response["ok"] is True
    return response


class DyingExecutor(Executor):
    """Executor whose first ``failures`` submissions die mid-batch.

    Models a worker pool losing its processes: ``submit`` raises (the
    same ``RuntimeError`` a shut-down pool raises) and then recovers,
    so tests can assert both the structured failure and that the memo
    was not poisoned by it.
    """

    def __init__(self, failures=1):
        self._inner = ThreadPoolExecutor(max_workers=1)
        self.failures = failures

    def submit(self, fn, /, *args, **kwargs):
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("worker died mid-batch")
        return self._inner.submit(fn, *args, **kwargs)

    def shutdown(self, wait=True, *, cancel_futures=False):
        self._inner.shutdown(wait, cancel_futures=cancel_futures)


class TestMalformedInput:
    def test_garbage_line_then_valid_query_same_connection(self):
        async def scenario(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"{not json\n")
                writer.write((json.dumps({
                    "id": 1, "scenario": "flooding", "p": 0.1, "n": 5,
                    "trials": 16, "seed": 1,
                }) + "\n").encode())
                await writer.drain()
                first = json.loads(await reader.readline())
                second = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            return first, second

        with use_registry() as registry:
            first, second = run(_with_server(scenario))
            snapshot = registry.snapshot()
        by_order = sorted([first, second], key=lambda r: r.get("ok"))
        assert by_order[0]["error"] == "bad-json"
        assert by_order[1]["ok"] is True
        wire_errors = {entry["labels"]["code"]: entry["value"]
                       for entry in snapshot["counters"]
                       if entry["name"] == "serve.wire.errors"}
        assert wire_errors.get("bad-json") == 1

    def test_non_object_and_unknown_op_lines(self):
        async def scenario(host, port, server):
            responses = []
            for line in ('[1,2,3]', '"hello"', '{"op":"explode"}'):
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write((line + "\n").encode())
                    await writer.drain()
                    responses.append(json.loads(await reader.readline()))
                finally:
                    writer.close()
                    await writer.wait_closed()
            await _server_is_alive(host, port)
            return responses

        responses = run(_with_server(scenario))
        assert [r["error"] for r in responses] == ["bad-request"] * 3
        assert all(r["ok"] is False for r in responses)

    def test_oversized_line_gets_structured_error(self):
        async def scenario(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b'{"pad": "' + b"x" * (2 * MAX_LINE_BYTES)
                             + b'"}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            alive = await _server_is_alive(host, port)
            return response, alive

        response, alive = run(_with_server(scenario))
        assert response["ok"] is False
        assert response["error"] == "bad-request"
        assert "exceeds" in response["message"]
        assert alive["ok"] is True


class TestTornConnections:
    def test_disconnect_mid_line_leaves_server_serving(self):
        async def scenario(host, port, server):
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"scenario": "floo')  # no newline, then vanish
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            return await _server_is_alive(host, port)

        assert run(_with_server(scenario))["ok"] is True

    def test_disconnect_mid_flight_does_not_poison_memo(self):
        async def scenario(host, port, server):
            _, writer = await asyncio.open_connection(host, port)
            writer.write((json.dumps(SLOW_QUERY) + "\n").encode())
            await writer.drain()
            writer.close()  # leave before the answer arrives
            await writer.wait_closed()
            # Ask again from a healthy connection: whatever happened to
            # the orphaned in-flight run, the answer must match a
            # clean direct execution bit-for-bit.
            response = await query_one(host, port, SLOW_QUERY)
            return response

        response = run(_with_server(scenario))
        assert response["ok"] is True
        factory, model = resolve_scenario(
            SLOW_QUERY["scenario"], SLOW_QUERY["p"], SLOW_QUERY["n"], {})
        direct = TrialRunner(factory, model).run(SLOW_QUERY["trials"],
                                                 SLOW_QUERY["seed"])
        assert response["indicators_sha256"] == sha256(
            direct.indicators.tobytes()).hexdigest()


class TestSlowLoris:
    def test_dribbled_request_completes_and_does_not_block_others(self):
        async def scenario(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                line = (json.dumps({
                    "id": 77, "scenario": "flooding", "p": 0.1, "n": 5,
                    "trials": 16, "seed": 2,
                }) + "\n").encode()
                half = len(line) // 2
                for byte in line[:half]:
                    writer.write(bytes([byte]))
                    await writer.drain()
                    await asyncio.sleep(0.001)
                # Mid-dribble, a well-behaved client is still served.
                concurrent = await _server_is_alive(host, port)
                for byte in line[half:]:
                    writer.write(bytes([byte]))
                    await writer.drain()
                    await asyncio.sleep(0.001)
                response = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            return concurrent, response

        concurrent, response = run(_with_server(scenario))
        assert concurrent["ok"] is True
        assert response["ok"] is True and response["id"] == 77

    def test_partial_line_forever_is_just_ignored(self):
        async def scenario(host, port, server):
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"scenario": "windowed')  # never finishes
            await writer.drain()
            alive = await _server_is_alive(host, port)
            writer.close()
            await writer.wait_closed()
            return alive

        assert run(_with_server(scenario))["ok"] is True


class TestWorkerDeath:
    def test_dying_worker_answers_internal_then_recovers(self):
        executor = DyingExecutor(failures=1)

        async def scenario(host, port, server):
            first = await query_one(host, port, SLOW_QUERY)
            second = await query_one(host, port, SLOW_QUERY)
            return first, second

        with use_registry() as registry:
            first, second = run(_with_server(scenario, executor=executor))
            snapshot = registry.snapshot()
        assert first["ok"] is False
        assert first["error"] == "internal"
        assert "worker died" in first["message"]
        # The failed flight must not leave a poisoned memo entry: the
        # retry recomputes and matches a clean direct run exactly.
        assert second["ok"] is True
        assert second["source"] == "computed"
        factory, model = resolve_scenario(
            SLOW_QUERY["scenario"], SLOW_QUERY["p"], SLOW_QUERY["n"], {})
        direct = TrialRunner(factory, model).run(SLOW_QUERY["trials"],
                                                 SLOW_QUERY["seed"])
        assert second["indicators_sha256"] == sha256(
            direct.indicators.tobytes()).hexdigest()
        wire_errors = {entry["labels"]["code"]: entry["value"]
                       for entry in snapshot["counters"]
                       if entry["name"] == "serve.wire.errors"}
        assert wire_errors.get("internal") == 1
        executor.shutdown()


class TestOverload:
    def test_saturating_burst_sheds_with_structured_overloaded(self):
        # One run slot, zero queue: of two *distinct* concurrent
        # queries (distinct so they cannot coalesce), exactly one runs
        # and one sheds — deterministically, because admission grants
        # are synchronous and the second line is admitted while the
        # first still holds the only slot.
        async def scenario(host, port, server):
            other = dict(SLOW_QUERY, seed=SLOW_QUERY["seed"] + 1)
            responses = await query_many(host, port, [SLOW_QUERY, other])
            retry = await query_one(host, port, other)
            return responses, retry

        with use_registry() as registry:
            (responses, retry) = run(_with_server(
                scenario, max_concurrent_runs=1, max_queued_runs=0))
            snapshot = registry.snapshot()
        by_ok = sorted(responses, key=lambda r: r["ok"])
        shed, served = by_ok[0], by_ok[1]
        assert served["ok"] is True
        assert shed["error"] == "overloaded"
        assert shed["retry_after_ms"] > 0
        assert "full" in shed["message"]
        # After the burst the same query is admitted and served.
        assert retry["ok"] is True

        counters = {(entry["name"],
                     tuple(sorted(entry["labels"].items()))): entry["value"]
                    for entry in snapshot["counters"]}
        assert counters[("serve.admission.rejected",
                         (("op", "query"),))] == 1
        assert counters[("serve.errors", (("code", "overloaded"),))] == 1
        assert counters[("serve.wire.errors",
                         (("code", "overloaded"),))] == 1
        # The admission series must reach the Prometheus exposition.
        text = render_prometheus(snapshot)
        assert 'serve_admission_admitted_total{op="query"}' in text
        assert 'serve_admission_rejected_total{op="query"}' in text

    def test_queued_run_waits_instead_of_shedding(self):
        # With queue room, the second distinct query waits for the
        # slot and both succeed — backpressure, not rejection.
        async def scenario(host, port, server):
            other = dict(SLOW_QUERY, seed=SLOW_QUERY["seed"] + 2)
            responses = await query_many(host, port, [SLOW_QUERY, other])
            return responses, server.service.admission.stats()

        responses, admission = run(_with_server(
            scenario, max_concurrent_runs=1, max_queued_runs=4))
        assert all(response["ok"] for response in responses)
        assert admission.rejected == 0
        assert admission.admitted == 2

    def test_cache_hits_bypass_admission_under_overload(self):
        # A saturated controller must not starve the cheap paths:
        # cached answers are served even with zero free slots.
        async def scenario(host, port, server):
            await query_one(host, port, SLOW_QUERY)  # fill the memo
            controller = server.service.admission
            await controller.acquire("query")  # hold the only slot
            try:
                response = await query_one(host, port, SLOW_QUERY)
            finally:
                controller.release("query")
            return response

        response = run(_with_server(
            scenario, max_concurrent_runs=1, max_queued_runs=0))
        assert response["ok"] is True
        assert response["source"] == "cache"


class TestRunUntilWire:
    def test_run_until_round_trip_and_prefix_serving(self):
        async def scenario(host, port, server):
            base = {"op": "run_until", "scenario": "flooding", "p": 0.1,
                    "n": 8, "max_trials": 4096, "seed": 2}
            strict = await query_one(host, port,
                                     dict(base, target_width=0.1))
            wider = await query_one(host, port,
                                    dict(base, target_width=0.8))
            return strict, wider

        strict, wider = run(_with_server(scenario))
        assert strict["ok"] and strict["met"] is True
        assert strict["width"] <= 0.1
        assert strict["steps"][-1][0] == strict["trials"]
        assert wider["source"] == "cache"
        # Sequential indicators are prefixes: the wider answer's trace
        # is a prefix of the stricter one's.
        assert wider["steps"] == strict["steps"][:len(wider["steps"])]

    def test_run_until_validation_errors_are_structured(self):
        async def scenario(host, port, server):
            cases = [
                dict(op="run_until", scenario="flooding", p=0.1, n=8),
                dict(op="run_until", scenario="flooding", p=0.1, n=8,
                     target_width=2.0, max_trials=100),
                dict(op="run_until", scenario="flooding", p=0.1, n=8,
                     target_width=0.1, max_trials=100, bound="magic"),
                dict(op="run_until", scenario="layered-opt", p=0.0, n=3,
                     target_width=0.1, max_trials=100),
                dict(op="run_until", scenario="flooding", p=0.1, n=8,
                     target_width=0.1, max_trials=100, bogus=1),
            ]
            return [await query_one(host, port, case) for case in cases]

        responses = run(_with_server(scenario))
        assert [r["error"] for r in responses] == ["bad-request"] * 5
        assert all(r["ok"] is False for r in responses)

    def test_concurrent_identical_run_until_coalesce(self):
        async def scenario(host, port, server):
            request = {"op": "run_until", "scenario": "windowed-malicious",
                       "p": 0.25, "n": 2, "target_width": 0.2,
                       "max_trials": 2048, "seed": 6}
            responses = await query_many(host, port, [request] * 4)
            return responses, server.service.stats()

        responses, stats = run(_with_server(scenario))
        assert all(response["ok"] for response in responses)
        assert len({response["indicators_sha256"]
                    for response in responses}) == 1
        sources = sorted(response["source"] for response in responses)
        assert sources == ["coalesced"] * 3 + ["computed"]
        assert stats.computed == 1
