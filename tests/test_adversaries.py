"""Tests for the concrete adversaries: complement, flip, slowing."""

import pytest

from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import (
    ComplementAdversary,
    MaliciousFailures,
    RandomFlipAdversary,
    Restriction,
    SilentAdversary,
    SlowingAdversary,
    flip_bit,
)
from repro.graphs import line, star

from tests.helpers import ScriptedAlgorithm


class TestFlipBit:
    def test_flips_bits(self):
        assert flip_bit(0) == 1
        assert flip_bit(1) == 0

    def test_passes_other_payloads(self):
        assert flip_bit("hello") == "hello"


class TestComplementAdversary:
    def test_flips_every_faulty_transmission_mp(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: 1}] * 100},
                                 rounds=100)
        failure = MaliciousFailures(0.4, ComplementAdversary())
        result = run_execution(algo, failure, 3)
        for record in result.trace:
            payload = record.deliveries[1][0]
            if 0 in record.faulty:
                assert payload == 0
            else:
                assert payload == 1

    def test_flips_radio_payloads(self):
        g = star(1)
        algo = ScriptedAlgorithm(g, RADIO, {0: [1] * 100}, rounds=100)
        failure = MaliciousFailures(0.4, ComplementAdversary())
        result = run_execution(algo, failure, 5)
        for record in result.trace:
            if 0 in record.faulty:
                assert record.actual[0] == 0

    def test_silent_nodes_stay_silent(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {}, rounds=50)
        failure = MaliciousFailures(0.9, ComplementAdversary())
        result = run_execution(algo, failure, 5)
        assert all(not record.actual for record in result.trace)


class TestRandomFlipAdversary:
    def test_legal_under_flip_restriction(self):
        g = line(1)
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: 1}] * 60},
                                 rounds=60)
        failure = MaliciousFailures(0.4, RandomFlipAdversary(), Restriction.FLIP)
        result = run_execution(algo, failure, 3)
        flipped = sum(
            1 for record in result.trace if record.deliveries[1][0] == 0
        )
        assert flipped == result.trace.fault_count(0)


class TestSlowingAdversary:
    def test_target_above_p_rejected(self):
        with pytest.raises(ValueError, match="slow failures upwards"):
            SlowingAdversary(SilentAdversary(), p=0.3, target=0.5)

    def test_effective_rate_property(self):
        adversary = SlowingAdversary(SilentAdversary(), p=0.8, target=0.4)
        assert adversary.effective_rate == 0.4

    def test_effective_rate_statistical(self):
        # Complement inner adversary: flipped rounds are exactly the
        # effectively-malicious rounds; their rate must match the target.
        g = line(1)
        rounds = 4000
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: 1}] * rounds},
                                 rounds=rounds)
        inner = ComplementAdversary()
        failure = MaliciousFailures(
            0.8, SlowingAdversary(inner, p=0.8, target=0.4)
        )
        result = run_execution(algo, failure, 13)
        flipped = sum(
            1 for record in result.trace if record.deliveries[1][0] == 0
        )
        assert abs(flipped / rounds - 0.4) < 0.03

    def test_slowed_away_nodes_behave_fault_free(self):
        g = line(1)
        rounds = 600
        algo = ScriptedAlgorithm(g, MESSAGE_PASSING, {0: [{1: 1}] * rounds},
                                 rounds=rounds)
        failure = MaliciousFailures(
            0.9, SlowingAdversary(SilentAdversary(), p=0.9, target=0.1)
        )
        result = run_execution(algo, failure, 17)
        delivered = sum(1 for record in result.trace if 1 in record.deliveries)
        # silent only on effectively-faulty rounds (~10%), not ~90%
        assert delivered > rounds * 0.8

    def test_describe(self):
        text = SlowingAdversary(SilentAdversary(), 0.8, 0.5).describe()
        assert "0.8" in text and "0.5" in text
