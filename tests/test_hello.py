"""Tests for the hello timing-channel protocol."""

import itertools

import pytest

from repro.core import HelloProtocolAlgorithm, hello_success_probability
from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import (
    FaultFree,
    GarbageAdversary,
    MaliciousFailures,
    Restriction,
    SilentAdversary,
)
from repro.graphs import line, two_node


def brute_force_success_zero(p, m):
    """P[two consecutive non-faulty rounds exist] by full enumeration."""
    rounds = 2 * m
    total = 0.0
    for pattern in itertools.product([0, 1], repeat=rounds):  # 1 = faulty
        weight = 1.0
        for bit in pattern:
            weight *= p if bit else (1 - p)
        if any(pattern[i] == 0 and pattern[i + 1] == 0
               for i in range(rounds - 1)):
            total += weight
    return total


class TestExactFormula:
    def test_against_brute_force(self):
        for p, m in [(0.3, 2), (0.5, 3), (0.7, 4), (0.9, 5)]:
            expected = brute_force_success_zero(p, m)
            assert hello_success_probability(p, m, 0) == pytest.approx(
                expected, abs=1e-12
            )

    def test_message_one_never_fails(self):
        for p in (0.1, 0.5, 0.99):
            assert hello_success_probability(p, 10, 1) == 1.0

    def test_fault_free_always_succeeds(self):
        assert hello_success_probability(0.0, 1, 0) == 1.0

    def test_monotone_in_m(self):
        values = [hello_success_probability(0.8, m, 0) for m in (2, 8, 32, 128)]
        assert values == sorted(values)

    def test_exponential_decay_of_failure(self):
        f16 = 1 - hello_success_probability(0.6, 16, 0)
        f64 = 1 - hello_success_probability(0.6, 64, 0)
        assert f64 < f16 ** 2  # much faster than linear


class TestProtocolExecution:
    def test_construction_validation(self):
        with pytest.raises(ValueError, match="2-node"):
            HelloProtocolAlgorithm(line(2), 0, m=4)
        with pytest.raises(ValueError):
            HelloProtocolAlgorithm(two_node(), 2, m=4)

    @pytest.mark.parametrize("model", [MESSAGE_PASSING, RADIO])
    @pytest.mark.parametrize("message", [0, 1])
    def test_fault_free_decoding(self, model, message):
        algo = HelloProtocolAlgorithm(two_node(), message, m=5, model=model)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert result.outputs[1] == message

    def test_transmission_pattern_zero(self):
        algo = HelloProtocolAlgorithm(two_node(), 0, m=3)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        assert all(0 in record.actual for record in result.trace)

    def test_transmission_pattern_one(self):
        algo = HelloProtocolAlgorithm(two_node(), 1, m=3)
        result = run_execution(algo, FaultFree(), 0, metadata=algo.metadata())
        for record in result.trace:
            transmitted = 0 in record.actual
            assert transmitted == (record.round_index % 2 == 1)

    def test_message_one_correct_under_any_dropping(self):
        # exhaustive over seeds: dropping failures can never corrupt a 1
        for seed in range(40):
            algo = HelloProtocolAlgorithm(two_node(), 1, m=6)
            failure = MaliciousFailures(0.6, SilentAdversary(),
                                        Restriction.LIMITED)
            result = run_execution(algo, failure, seed,
                                   metadata=algo.metadata())
            assert result.outputs[1] == 1

    def test_corruption_without_dropping_is_harmless(self):
        for message in (0, 1):
            for seed in range(20):
                algo = HelloProtocolAlgorithm(two_node(), message, m=6)
                failure = MaliciousFailures(0.7, GarbageAdversary(),
                                            Restriction.LIMITED)
                result = run_execution(algo, failure, seed,
                                       metadata=algo.metadata())
                assert result.outputs[1] == message

    def test_dropping_rate_matches_exact_formula(self):
        from repro.analysis.estimation import estimate_success
        from repro.rng import RngStream
        p, m = 0.6, 4
        exact = hello_success_probability(p, m, 0)

        def trial(stream: RngStream) -> bool:
            algo = HelloProtocolAlgorithm(two_node(), 0, m=m)
            failure = MaliciousFailures(p, SilentAdversary(),
                                        Restriction.LIMITED)
            result = run_execution(algo, failure, stream,
                                   metadata=algo.metadata(),
                                   record_trace=False)
            return result.outputs[1] == 0

        outcome = estimate_success(trial, 600, 3)
        assert outcome.lower - 0.02 <= exact <= outcome.upper + 0.02
