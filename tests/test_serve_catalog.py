"""Catalog completeness: every experiment servable, every family live.

The invariant this file pins (so it cannot rot as families are added
or renamed):

* the registered family set is **exactly** the sample table below —
  adding a family without extending the table fails, as does removing
  or renaming one;
* every experiment E01–E15 is tagged by at least one family;
* every family **serves**: its sample query resolves, fingerprints,
  answers over the in-process API on the expected backend, and the
  answer is bit-identical to a direct :class:`TrialRunner` run of the
  same resolved scenario (the exact family is checked against its
  ``compute`` verdict instead);
* unregistered scenario names are refused with a structured
  ``unknown-scenario`` error, never a crash or a silent empty answer.

No pytest-asyncio in the environment, so async scenarios run under
``asyncio.run`` inside plain test functions.
"""

import asyncio

import numpy as np
import pytest

from repro.experiments.registry import (
    FAMILY_EXACT,
    all_experiments,
    all_families,
    families_for_experiment,
    get_family,
    resolve_scenario,
)
from repro.montecarlo import TrialRunner
from repro.serve import Query, QueryError, SimulationService

#: One known-good sample per registered family:
#: ``name -> (p, n, params, expected backend)``.  Kept tiny so the
#: whole catalog serves in well under a second.
SAMPLES = {
    "simple-omission": (0.3, 2, {}, "fastsim:simple-omission"),
    "simple-omission-radio": (0.3, 2, {}, "fastsim:simple-omission"),
    "hetero-omission": (0.5, 2, {}, "fastsim:simple-omission"),
    "simple-malicious-mp": (0.2, 2, {}, "fastsim:simple-malicious-mp"),
    "equalizing-mp": (0.3, 6, {}, "engine"),
    "malicious-radio-star": (0.1, 4, {}, "fastsim:simple-malicious-radio"),
    "equalizing-star": (0.3, 4, {}, "fastsim:equalizing-star"),
    "windowed-malicious": (0.25, 2, {}, "batchsim"),
    "flooding": (0.1, 5, {}, "fastsim:flooding"),
    "grid-flooding": (0.1, 3, {}, "fastsim:flooding"),
    "kucera-flip": (0.3, 4, {}, "batchsim"),
    "layered-opt": (0.0, 3, {}, "exact"),
    "layered-omission": (0.3, 3, {}, "fastsim:layered-omission"),
    "radio-repeat": (0.2, 5, {}, "fastsim:radio-repeat-omission"),
    "hello": (0.2, 4, {}, "batchsim"),
    "round-robin": (0.3, 2, {}, "batchsim"),
    "prime-schedule": (0.3, 5, {"rounds": 200}, "batchsim"),
}

EXPERIMENT_IDS = tuple(f"E{index:02d}" for index in range(1, 16))

TRIALS = 16
SEED = 7


def run(coro):
    return asyncio.run(coro)


class TestCatalogShape:
    def test_registered_families_are_exactly_the_samples(self):
        assert {family.name for family in all_families()} == set(SAMPLES)

    def test_every_experiment_is_servable(self):
        registered = {exp.experiment_id for exp in all_experiments()}
        assert registered == set(EXPERIMENT_IDS)
        missing = [experiment_id for experiment_id in EXPERIMENT_IDS
                   if not families_for_experiment(experiment_id)]
        assert missing == []

    def test_family_tags_reference_real_experiments(self):
        registered = {exp.experiment_id for exp in all_experiments()}
        for family in all_families():
            assert family.experiments, f"{family.name} tags no experiment"
            assert set(family.experiments) <= registered

    def test_exactly_one_exact_family(self):
        exact = [family.name for family in all_families()
                 if family.kind == FAMILY_EXACT]
        assert exact == ["layered-opt"]

    def test_unregistered_scenario_is_refused(self):
        with pytest.raises(KeyError):
            get_family("no-such-family")
        with pytest.raises(QueryError) as excinfo:
            run(SimulationService().submit(
                Query("no-such-family", 0.1, 2, 8)))
        assert excinfo.value.code == "unknown-scenario"


class TestEveryFamilyServes:
    def test_all_samples_round_trip(self):
        async def scenario():
            service = SimulationService()
            answers = {}
            for name, (p, n, params, _) in SAMPLES.items():
                family = get_family(name)
                if family.kind == FAMILY_EXACT:
                    query = Query(name, p, n, 1, seed=0, params=params)
                else:
                    query = Query(name, p, n, TRIALS, seed=SEED,
                                  params=params)
                assert service.fingerprint(query)  # resolves + keys
                answers[name] = await service.submit(query)
            return answers

        answers = run(scenario())
        for name, (p, n, params, backend) in SAMPLES.items():
            answer = answers[name]
            assert answer.backend == backend, name
            family = get_family(name)
            if family.kind == FAMILY_EXACT:
                compute, model = family.build(p, n, **params)
                assert model is None
                assert answer.result.indicators.tolist() == [compute()]
                continue
            factory, model = resolve_scenario(name, p, n, params)
            direct = TrialRunner(factory, model).run(TRIALS, SEED)
            assert np.array_equal(answer.result.indicators,
                                  direct.indicators), name
            assert answer.result.backend == direct.backend, name
