"""Tests for the Kučera plan compiler."""

import pytest

from repro.core.kucera import (
    Edge,
    Repeat,
    Serial,
    compile_plan,
    guarantee,
)


class TestEdgeCompilation:
    def test_single_transmission(self):
        compiled = compile_plan(Edge(), 0.2)
        assert compiled.transmissions == {0: {0: ()}}
        assert compiled.receptions == {1: {0: ()}}
        assert compiled.transmission_count() == 1


class TestSerialCompilation:
    def test_blocks_shifted_in_space_and_time(self):
        compiled = compile_plan(Serial(Edge(), 3), 0.2)
        assert compiled.transmissions[0] == {0: ()}
        assert compiled.transmissions[1] == {1: ()}
        assert compiled.transmissions[2] == {2: ()}
        assert compiled.transmission_count() == 3


class TestRepeatCompilation:
    def test_pipelined_executions(self):
        compiled = compile_plan(Repeat(Edge(), 3), 0.2)
        # three executions at rounds 0, 1, 2 with contexts (0,), (1,), (2,)
        assert compiled.transmissions[0] == {0: (0,), 1: (1,), 2: (2,)}
        # copies at the block source, votes at both positions
        kinds = [d.kind for d in compiled.controls[0]]
        assert kinds.count("copy") == 3
        assert kinds.count("vote") == 1
        assert [d.kind for d in compiled.controls[1]].count("vote") == 1

    def test_vote_round_is_block_end(self):
        plan = Repeat(Edge(), 3)
        compiled = compile_plan(plan, 0.2)
        g = guarantee(plan, 0.2)
        votes = [d for d in compiled.controls[1] if d.kind == "vote"]
        assert votes[0].round_index == g.time
        assert votes[0].source_contexts == ((0,), (1,), (2,))
        assert votes[0].target_context == ()


class TestConflictDetection:
    def test_valid_plans_compile_without_conflicts(self):
        plans = [
            Repeat(Serial(Repeat(Edge(), 13), 4), 3),
            Repeat(Serial(Repeat(Serial(Repeat(Edge(), 5), 2), 3), 4), 3),
            Serial(Repeat(Edge(), 3), 5),
        ]
        for plan in plans:
            compiled = compile_plan(plan, 0.2)
            assert compiled.transmission_count() > 0

    def test_transmission_counts_match_algebra(self):
        # total transmissions = sum over positions of scheduled rounds;
        # every position < length transmits at least once
        plan = Repeat(Serial(Repeat(Edge(), 3), 4), 3)
        compiled = compile_plan(plan, 0.1)
        g = guarantee(plan, 0.1)
        assert set(compiled.transmissions) == set(range(g.length))
        for position in range(g.length):
            rounds = compiled.transmissions[position]
            assert len(rounds) >= 1
            assert max(rounds) < g.time

    def test_reception_map_is_shifted_transmission_map(self):
        plan = Serial(Repeat(Edge(), 3), 2)
        compiled = compile_plan(plan, 0.1)
        for position, by_round in compiled.transmissions.items():
            assert compiled.receptions[position + 1] == by_round


class TestControlOrdering:
    def test_votes_precede_copies_at_same_round(self):
        # Serial of Repeats: the boundary node votes (block j) and copies
        # (block j+1 seed) in the same round; the vote must come first.
        plan = Serial(Repeat(Edge(), 3), 2)
        compiled = compile_plan(plan, 0.1)
        boundary = compiled.controls[1]
        same_round = {}
        for directive in boundary:
            same_round.setdefault(directive.round_index, []).append(directive.kind)
        for kinds in same_round.values():
            if "vote" in kinds and "copy" in kinds:
                assert kinds.index("vote") < kinds.index("copy")

    def test_controls_sorted_by_round(self):
        plan = Repeat(Serial(Repeat(Edge(), 3), 2), 3)
        compiled = compile_plan(plan, 0.1)
        for directives in compiled.controls.values():
            rounds = [d.round_index for d in directives]
            assert rounds == sorted(rounds)
