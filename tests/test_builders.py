"""Tests for the standard topology builders."""

import pytest

from repro.graphs import (
    barbell,
    binary_tree,
    caterpillar,
    complete,
    erdos_renyi,
    grid,
    hypercube,
    kary_tree,
    line,
    random_regular,
    random_tree,
    ring,
    spider,
    star,
    torus,
    two_node,
)
from repro.rng import RngStream


class TestLine:
    def test_structure(self):
        g = line(5)
        assert g.order == 6
        assert g.size == 5
        assert g.radius_from(0) == 5

    def test_degrees(self):
        g = line(5)
        assert g.degree(0) == 1 and g.degree(5) == 1
        assert all(g.degree(i) == 2 for i in range(1, 5))

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            line(0)


class TestTwoNode:
    def test_structure(self):
        g = two_node()
        assert g.order == 2 and g.has_edge(0, 1)


class TestRing:
    def test_structure(self):
        g = ring(6)
        assert g.order == 6 and g.size == 6
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_minimum_size(self):
        with pytest.raises(ValueError, match="at least 3"):
            ring(2)


class TestStar:
    def test_center_source(self):
        g = star(5)
        assert g.order == 6
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_leaf_source(self):
        g = star(5, source_is_center=False)
        assert g.degree(1) == 5  # node 1 is the center
        assert g.degree(0) == 1  # node 0 (source) is a leaf
        assert g.has_edge(0, 1)


class TestComplete:
    def test_structure(self):
        g = complete(5)
        assert g.size == 10
        assert g.max_degree() == 4
        assert g.diameter() == 1


class TestGridAndTorus:
    def test_grid_structure(self):
        g = grid(3, 4)
        assert g.order == 12
        assert g.size == 3 * 3 + 2 * 4  # vertical + horizontal runs
        assert g.radius_from(0) == 2 + 3

    def test_torus_regular(self):
        g = torus(3, 4)
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_torus_minimum(self):
        with pytest.raises(ValueError):
            torus(2, 5)


class TestHypercube:
    def test_structure(self):
        g = hypercube(4)
        assert g.order == 16
        assert all(g.degree(v) == 4 for v in g.nodes)
        assert g.radius_from(0) == 4


class TestTrees:
    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.order == 15
        assert g.size == 14
        assert g.radius_from(0) == 3

    def test_kary_tree(self):
        g = kary_tree(3, 2)
        assert g.order == 1 + 3 + 9
        assert g.degree(0) == 3

    def test_depth_zero(self):
        assert kary_tree(2, 0).order == 1


class TestSpider:
    def test_structure(self):
        g = spider(4, 3)
        assert g.order == 1 + 12
        assert g.degree(0) == 4
        assert g.radius_from(0) == 3

    def test_leg_disjointness(self):
        g = spider(3, 2)
        # depth-1 nodes of different legs must not be adjacent
        depth1 = [1, 3, 5]
        for i, u in enumerate(depth1):
            for v in depth1[i + 1:]:
                assert not g.has_edge(u, v)


class TestCaterpillar:
    def test_structure(self):
        g = caterpillar(3, 2)
        assert g.order == 4 + 4 * 2
        assert g.degree(0) == 3  # one spine neighbour + two legs


class TestBarbell:
    def test_structure(self):
        g = barbell(4, 3)
        assert g.order == 2 * 4 + 2
        assert g.is_connected()
        assert g.max_degree() == 4

    def test_rejects_tiny_clique(self):
        with pytest.raises(ValueError):
            barbell(1, 2)


class TestRandomTree:
    def test_is_tree(self):
        g = random_tree(20, 7)
        assert g.size == 19
        assert g.is_connected()

    def test_deterministic(self):
        assert random_tree(15, 7) == random_tree(15, 7)

    def test_seed_changes_tree(self):
        trees = {random_tree(15, seed) for seed in range(8)}
        assert len(trees) > 1

    def test_max_degree_respected(self):
        g = random_tree(30, 3, max_degree=3)
        assert g.max_degree() <= 3

    def test_infeasible_degree_bound(self):
        with pytest.raises(ValueError, match="max_degree"):
            random_tree(4, 0, max_degree=1)

    def test_accepts_stream(self):
        g = random_tree(10, RngStream(3))
        assert g.order == 10


class TestErdosRenyi:
    def test_connected_by_default(self):
        g = erdos_renyi(20, 0.3, 1)
        assert g.is_connected()

    def test_deterministic(self):
        assert erdos_renyi(15, 0.3, 5) == erdos_renyi(15, 0.3, 5)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5, 0)

    def test_unconnected_allowed(self):
        g = erdos_renyi(10, 0.0, 0, ensure_connected=False)
        assert g.size == 0

    def test_impossible_connectivity_raises(self):
        with pytest.raises(RuntimeError, match="connected"):
            erdos_renyi(10, 0.0, 0, max_attempts=3)


class TestRandomRegular:
    def test_regularity(self):
        g = random_regular(12, 3, 2)
        assert all(g.degree(v) == 3 for v in g.nodes)
        assert g.is_connected()

    def test_parity_validation(self):
        with pytest.raises(ValueError, match="even"):
            random_regular(5, 3, 0)

    def test_degree_too_large(self):
        with pytest.raises(ValueError, match="below order"):
            random_regular(4, 4, 0)

    def test_deterministic(self):
        assert random_regular(10, 3, 4) == random_regular(10, 3, 4)
