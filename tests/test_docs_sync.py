"""Docs-freshness pins: the registry is the source of truth.

Three layers of protection against documentation drift:

* the tier table in ``repro/montecarlo/dispatch.py``'s module docstring
  and the ``describe`` output must name **every** registered fastsim
  sampler and batchsim lift — registering a new entry without
  documenting it fails here;
* the committed ``EXPERIMENTS.md`` must be byte-identical to what
  ``python -m repro.experiments describe --markdown`` regenerates from
  the live registry (backends included, so a dispatch change that
  silently demotes an experiment to a slower tier also fails here);
* ``ARCHITECTURE.md``/``README.md`` exist, cross-link, name every
  sampler/lift, and no top-level markdown file carries a broken
  relative link.
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro.montecarlo.dispatch as dispatch_module
from repro.batchsim.programs import registered_lifts
from repro.experiments.describe import (
    render_markdown,
    render_text,
    throughput_data,
    throughput_provenance,
)
from repro.montecarlo.dispatch import registered_samplers

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))
from lint_docs import broken_links  # noqa: E402


def sampler_names():
    names = [entry.name for entry in registered_samplers()]
    assert names, "sampler registry unexpectedly empty"
    return names


def lift_names():
    names = [entry.name for entry in registered_lifts()]
    assert names, "lift registry unexpectedly empty"
    return names


class TestDispatchDocstring:
    def test_names_every_registered_sampler(self):
        docstring = dispatch_module.__doc__
        for name in sampler_names():
            assert name in docstring, (
                f"sampler {name!r} is registered but missing from the "
                f"dispatch.py tier table docstring"
            )

    def test_names_every_registered_lift(self):
        docstring = dispatch_module.__doc__
        for name in lift_names():
            assert name in docstring, (
                f"batchsim lift {name!r} is registered but missing from "
                f"the dispatch.py tier table docstring"
            )


class TestDescribeOutput:
    def test_names_every_sampler_and_lift(self):
        text = render_text()
        for name in sampler_names() + lift_names():
            assert name in text, (
                f"registry entry {name!r} missing from the describe output"
            )

    def test_markdown_names_every_sampler_and_lift(self):
        markdown = render_markdown()
        for name in sampler_names() + lift_names():
            assert f"`{name}`" in markdown

    def test_cli_entrypoint_runs(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "describe",
             "--markdown"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == render_markdown().strip()


class TestCommittedDocs:
    def test_experiments_md_matches_registry(self):
        committed = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        regenerated = render_markdown()
        assert committed.strip() == regenerated.strip(), (
            "EXPERIMENTS.md drifted from the registry — regenerate with "
            "`PYTHONPATH=src python -m repro.experiments describe "
            "--markdown > EXPERIMENTS.md`"
        )

    def test_architecture_md_names_every_sampler_and_lift(self):
        architecture = (REPO_ROOT / "ARCHITECTURE.md").read_text()
        for name in sampler_names() + lift_names():
            assert f"`{name}`" in architecture, (
                f"registry entry {name!r} missing from ARCHITECTURE.md"
            )

    def test_readme_links_architecture_and_experiments(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "ARCHITECTURE.md" in readme
        assert "EXPERIMENTS.md" in readme

    @pytest.mark.parametrize("name", ["README.md", "ARCHITECTURE.md",
                                      "EXPERIMENTS.md", "ROADMAP.md"])
    def test_markdown_links_resolve(self, name):
        assert broken_links([REPO_ROOT / name]) == []


class TestObservabilityDocs:
    """ARCHITECTURE/README must document the metrics layer they ship."""

    def test_architecture_has_an_observability_section(self):
        architecture = (REPO_ROOT / "ARCHITECTURE.md").read_text()
        assert "## Observability" in architecture
        for series in ("serve.query.seconds", "serve.cache.hits",
                       "serve.coalesce.started", "mc.trials",
                       "mc.pool.shard.seconds", "mc.dispatch.match"):
            assert f"`{series}`" in architecture, (
                f"metric series {series!r} missing from ARCHITECTURE.md's "
                f"Observability section"
            )
        assert "repro.obs.slow" in architecture  # the slow-span log

    def test_readme_quickstarts_the_metrics_op(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert '{"op": "metrics"}' in readme
        assert "python -m repro.obs render" in readme


class TestServiceDocs:
    """The persistence + admission layers must ship with their docs."""

    def test_architecture_documents_the_memo_journal(self):
        architecture = (REPO_ROOT / "ARCHITECTURE.md").read_text()
        assert "### Persistent memo" in architecture
        assert "repro-serve-memo" in architecture, (
            "ARCHITECTURE.md must pin the journal header format name"
        )
        assert "os.replace" in architecture  # atomic compaction contract

    def test_architecture_documents_admission_control(self):
        architecture = (REPO_ROOT / "ARCHITECTURE.md").read_text()
        assert "### Admission control" in architecture
        assert "retry_after_ms" in architecture
        for series in ("serve.admission.admitted", "serve.admission.rejected",
                       "serve.admission.inflight", "serve.admission.waiting",
                       "serve.memo.corrupt"):
            assert series in architecture, (
                f"metric series {series!r} missing from ARCHITECTURE.md"
            )

    def test_readme_quickstarts_warm_restart(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "--memo-path" in readme
        assert "run_until" in readme
        assert "--max-concurrent-runs" in readme
        assert '"overloaded"' in readme

    def test_experiments_md_has_a_servable_column(self):
        committed = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "| Servable |" in committed


class TestExecutorDocs:
    """The execution substrate must ship with its docs."""

    def test_architecture_has_an_execution_substrate_section(self):
        architecture = (REPO_ROOT / "ARCHITECTURE.md").read_text()
        assert "## Execution substrate" in architecture
        for backend in ("in-process", "local-process", "remote-socket"):
            assert f"`{backend}`" in architecture, (
                f"executor backend {backend!r} missing from "
                f"ARCHITECTURE.md's Execution substrate section"
            )
        for series in ("mc.executor.shards", "mc.executor.shard.seconds",
                       "mc.executor.shard.queue_seconds",
                       "mc.executor.retries"):
            assert f"`{series}`" in architecture, (
                f"metric series {series!r} missing from ARCHITECTURE.md"
            )
        assert "WorkerCrashError" in architecture
        assert "max_shard_retries" in architecture

    def test_architecture_layer_map_names_the_new_packages(self):
        architecture = (REPO_ROOT / "ARCHITECTURE.md").read_text()
        assert "montecarlo/executors/" in architecture
        assert "distrib/" in architecture

    def test_readme_quickstarts_the_distributed_workers(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "python -m repro.distrib worker" in readme
        assert "--executor remote:" in readme
        assert "--executor-workers" in readme
        assert "python -m repro.distrib smoke" in readme

    def test_experiments_md_documents_the_executor_flag(self):
        committed = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "--executor SPEC" in committed


class TestThroughputTable:
    """The measured-throughput column the ROADMAP asks EXPERIMENTS.md for."""

    def test_committed_measurement_covers_every_backend_tier(self):
        data = throughput_data()
        assert data is not None, (
            "benchmarks/throughput.json is missing — regenerate with "
            "tools/measure_throughput.py"
        )
        backends = {row["backend"] for row in data["rows"]}
        assert "engine (pinned)" in backends
        assert "batchsim" in backends
        assert "batchsim (4 workers)" in backends, (
            "the sharded-batchsim throughput row is missing"
        )
        assert any(name.startswith("fastsim:") for name in backends)

    def test_every_row_names_its_executor_substrate(self):
        data = throughput_data()
        executors = {row["executor"] for row in data["rows"]}
        assert "in-process" in executors
        assert "local-process (4)" in executors, (
            "the sharded row must name its local-process substrate"
        )
        markdown = render_markdown()
        assert "| Executor |" in markdown

    def test_rendered_docs_carry_the_measurement(self):
        data = throughput_data()
        markdown = render_markdown()
        assert "### Measured throughput per backend" in markdown
        for row in data["rows"]:
            assert f"`{row['backend']}`" in markdown
        text = render_text()
        assert "measured throughput per backend" in text

    def test_committed_measurement_is_provenance_stamped(self):
        """Numbers without machine/cores/date are unreviewable."""
        data = throughput_data()
        assert isinstance(data.get("machine"), str) and data["machine"]
        assert isinstance(data.get("cpu_count"), int)
        assert data["cpu_count"] >= 1
        measured_at = data.get("measured_at")
        assert isinstance(measured_at, str), (
            "benchmarks/throughput.json lacks a measured_at stamp — "
            "regenerate with tools/measure_throughput.py"
        )
        import re
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", measured_at
        ), f"measured_at is not a UTC ISO-8601 stamp: {measured_at!r}"

    def test_rendered_docs_carry_the_provenance(self):
        """Both renderers must show when/where the numbers were taken."""
        data = throughput_data()
        sentence = throughput_provenance(data)
        assert data["measured_at"] in sentence
        assert str(data["cpu_count"]) in sentence
        for rendered in (render_text(), render_markdown()):
            assert data["measured_at"] in rendered
            assert "measured on" in rendered

    def test_provenance_caveat_tracks_core_count(self):
        starved = throughput_provenance(
            {"machine": "m", "cpu_count": 1, "measured_at": "now"})
        assert "overhead" in starved
        healthy = throughput_provenance(
            {"machine": "m", "cpu_count": 8, "measured_at": "now"})
        assert "overhead" not in healthy
        undated = throughput_provenance({"machine": "m", "cpu_count": 8})
        assert "not recorded" in undated
