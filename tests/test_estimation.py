"""Tests for Monte-Carlo estimation and confidence intervals."""

import pytest

from repro.analysis.estimation import (
    MonteCarloResult,
    clopper_pearson,
    estimate_success,
    wilson_interval,
)
from repro.rng import RngStream


class TestClopperPearson:
    def test_contains_point_estimate(self):
        low, high = clopper_pearson(70, 100)
        assert low < 0.7 < high

    def test_zero_successes(self):
        low, high = clopper_pearson(0, 50)
        assert low == 0.0
        assert 0 < high < 0.25

    def test_all_successes(self):
        low, high = clopper_pearson(50, 50)
        assert high == 1.0
        assert 0.8 < low < 1.0

    def test_narrows_with_trials(self):
        narrow = clopper_pearson(700, 1000)
        wide = clopper_pearson(70, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_successes_cannot_exceed_trials(self):
        with pytest.raises(ValueError):
            clopper_pearson(11, 10)

    def test_known_value(self):
        # exact CP for 0/10 at 95%: upper = 1 - (0.025)^(1/10) ~ 0.3085
        _, high = clopper_pearson(0, 10, confidence=0.95)
        assert high == pytest.approx(1 - 0.025 ** 0.1, abs=1e-9)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(70, 100)
        assert low < 0.7 < high

    def test_within_unit_interval(self):
        low, high = wilson_interval(1, 2, confidence=0.999)
        assert 0.0 <= low <= high <= 1.0

    def test_narrower_than_clopper_pearson(self):
        cp = clopper_pearson(80, 100)
        wi = wilson_interval(80, 100)
        assert wi[1] - wi[0] <= cp[1] - cp[0] + 1e-9


class TestMonteCarloResult:
    def _result(self, successes, trials):
        low, high = clopper_pearson(successes, trials)
        return MonteCarloResult(successes, trials, 0.99, low, high)

    def test_estimates(self):
        result = self._result(90, 100)
        assert result.estimate == pytest.approx(0.9)
        assert result.failure_estimate == pytest.approx(0.1)

    def test_verdicts(self):
        confident = self._result(5000, 5000)
        assert confident.almost_safe_verdict(10) == "almost-safe"
        hopeless = self._result(100, 5000)
        assert hopeless.almost_safe_verdict(10) == "not-almost-safe"
        unclear = self._result(9, 10)
        assert unclear.almost_safe_verdict(10) == "inconclusive"

    def test_describe(self):
        text = self._result(9, 10).describe()
        assert "9/10" in text


class TestEstimateSuccess:
    def test_deterministic_given_seed(self):
        def trial(stream: RngStream) -> bool:
            return stream.bernoulli(0.5)

        a = estimate_success(trial, 200, 42)
        b = estimate_success(trial, 200, 42)
        assert a.successes == b.successes

    def test_rate_statistical(self):
        def trial(stream: RngStream) -> bool:
            return stream.bernoulli(0.7)

        result = estimate_success(trial, 3000, 7)
        assert abs(result.estimate - 0.7) < 0.03
        assert result.lower < 0.7 < result.upper

    def test_independent_trials_get_distinct_streams(self):
        seeds = []

        def trial(stream: RngStream) -> bool:
            seeds.append(stream.seed)
            return True

        estimate_success(trial, 10, 3)
        assert len(set(seeds)) == 10

    def test_early_stop(self):
        def trial(stream: RngStream) -> bool:
            return False

        result = estimate_success(trial, 1000, 0, early_stop_failures=5)
        assert result.trials == 5
        assert result.successes == 0
