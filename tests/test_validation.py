"""Tests for the shared validation helpers."""

import pytest

from repro._validation import (
    check_bit,
    check_in_range,
    check_node,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)


class TestCheckProbability:
    def test_interior_value(self):
        assert check_probability(0.5) == 0.5

    def test_zero_allowed_by_default(self):
        assert check_probability(0.0) == 0.0

    def test_zero_rejectable(self):
        with pytest.raises(ValueError):
            check_probability(0.0, allow_zero=False)

    def test_one_rejected_by_default(self):
        with pytest.raises(ValueError):
            check_probability(1.0)

    def test_one_allowed_when_requested(self):
        assert check_probability(1.0, allow_one=True) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="must lie in"):
            check_probability(-0.1)

    def test_above_one_rejected(self):
        with pytest.raises(ValueError):
            check_probability(1.1, allow_one=True)

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="myprob"):
            check_probability(2.0, "myprob")

    def test_coerces_to_float(self):
        assert isinstance(check_probability(0), float)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_positive_int(1.5, "x")

    def test_accepts_integral_float(self):
        assert check_positive_int(3.0, "x") == 3


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_non_negative_int(-1, "x")


class TestCheckNode:
    def test_accepts_in_range(self):
        assert check_node(3, 5) == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_node(5, 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_node(-1, 5)

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_node(1.5, 5)


class TestCheckInRange:
    def test_accepts_boundaries(self):
        assert check_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert check_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, 0.0, 1.0, "x")


class TestCheckBit:
    def test_accepts_bits(self):
        assert check_bit(0) == 0
        assert check_bit(1) == 1

    def test_rejects_two(self):
        with pytest.raises(ValueError):
            check_bit(2)

    def test_rejects_none(self):
        with pytest.raises(ValueError):
            check_bit(None)
