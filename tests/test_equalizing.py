"""Tests for the counterfactual equalizing adversaries (Thms 2.3, 2.4)."""

import pytest

from repro.core import SimpleMalicious
from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import (
    EqualizingMpAdversary,
    EqualizingStarAdversary,
    MaliciousFailures,
    SlowingAdversary,
)
from repro.graphs import star, two_node

from tests.helpers import ScriptedAlgorithm


def _mp_run(message, seed, p=0.5, phase_length=11, adversary=None):
    topology = two_node()
    algorithm = SimpleMalicious(
        topology, 0, message, model=MESSAGE_PASSING, phase_length=phase_length
    )
    adversary = adversary or EqualizingMpAdversary(source=0)
    failure = MaliciousFailures(p, adversary)
    return run_execution(
        algorithm, failure, seed, metadata=algorithm.metadata()
    )


class TestEqualizingMp:
    def test_faulty_rounds_deliver_flipped_message(self):
        # With Simple-Malicious the twin transmits the flipped bit, so
        # every faulty source round must deliver exactly the flip.
        result = _mp_run(message=1, seed=3)
        for record in result.trace:
            if record.round_index >= 11:
                break  # only the source's phase transmits to node 1
            payload = record.deliveries.get(1, {}).get(0)
            if 0 in record.faulty:
                assert payload == 0
            else:
                assert payload == 1

    def test_success_rate_pinned_at_half(self):
        successes = 0
        trials = 300
        for seed in range(trials):
            result = _mp_run(message=seed % 2, seed=seed)
            successes += result.is_successful_broadcast()
        rate = successes / trials
        assert 0.38 < rate < 0.62

    def test_slowed_variant_also_pins(self):
        successes = 0
        trials = 200
        for seed in range(trials):
            adversary = SlowingAdversary(
                EqualizingMpAdversary(source=0), p=0.7, target=0.5
            )
            result = _mp_run(message=seed % 2, seed=seed, p=0.7,
                             adversary=adversary)
            successes += result.is_successful_broadcast()
        assert 0.35 < successes / trials < 0.65

    def test_requires_twinnable_algorithm(self):
        topology = two_node()
        algo = ScriptedAlgorithm(topology, MESSAGE_PASSING,
                                 {0: [{1: 1}] * 40}, rounds=40)
        failure = MaliciousFailures(0.9, EqualizingMpAdversary(source=0))
        with pytest.raises(TypeError, match="counterfactual"):
            run_execution(algo, failure, 0, metadata={"source_message": 1})

    def test_requires_binary_message(self):
        topology = two_node()
        algorithm = SimpleMalicious(
            topology, 0, "not-a-bit", model=MESSAGE_PASSING, phase_length=8
        )
        failure = MaliciousFailures(0.9, EqualizingMpAdversary(source=0))
        with pytest.raises(ValueError, match="binary"):
            run_execution(algorithm, failure, 1, metadata=algorithm.metadata())


class TestEqualizingStar:
    def _run(self, delta, message, seed, p, phase_length=9, slow_to=None):
        topology = star(delta, source_is_center=False)
        algorithm = SimpleMalicious(
            topology, 0, message, model=RADIO, phase_length=phase_length
        )
        adversary = EqualizingStarAdversary(source=0, center=1)
        if slow_to is not None:
            adversary = SlowingAdversary(adversary, p=p, target=slow_to)
        failure = MaliciousFailures(p, adversary)
        return run_execution(
            algorithm, failure, seed, metadata=algorithm.metadata()
        )

    def test_rejects_source_equal_center(self):
        with pytest.raises(ValueError, match="leaf"):
            EqualizingStarAdversary(source=1, center=1)

    def test_rejects_message_passing_model(self):
        topology = star(2, source_is_center=False)
        algorithm = SimpleMalicious(
            topology, 0, 1, model=MESSAGE_PASSING, phase_length=5
        )
        failure = MaliciousFailures(
            0.9, EqualizingStarAdversary(source=0, center=1)
        )
        with pytest.raises(ValueError, match="radio"):
            run_execution(algorithm, failure, 0, metadata=algorithm.metadata())

    def test_faulty_source_rounds_deliver_flip_or_silence(self):
        from repro.analysis.thresholds import radio_malicious_threshold
        q = radio_malicious_threshold(3)
        result = self._run(3, message=1, seed=5, p=q)
        # during the source phase, the center hears either the true bit,
        # the flipped bit, or silence — never arbitrary payloads
        for record in result.trace:
            if record.round_index >= 9:
                break
            heard = record.deliveries.get(1)
            assert heard in (0, 1, None)

    def test_success_rate_collapses(self):
        from repro.analysis.thresholds import radio_malicious_threshold
        q = radio_malicious_threshold(2)
        successes = 0
        trials = 200
        for seed in range(trials):
            result = self._run(2, message=seed % 2, seed=seed, p=q)
            successes += result.is_successful_broadcast()
        # posterior pinned at 1/2 at the center; downstream decisions can
        # only lose more — far below almost-safe (1 - 1/n = 0.75)
        assert successes / trials < 0.7
