"""Quickstart: broadcast a bit through a faulty network, both models.

Runs Algorithm Simple-Omission (Theorem 2.1) on a binary tree in the
message-passing and radio models, estimates the success probability
against the almost-safe bar ``1 - 1/n`` with the batched
:class:`~repro.montecarlo.TrialRunner` (vectorised fastsim dispatch
plus a reference-engine cross-check), demonstrates all three dispatch
tiers via ``result.backend``, and prints the feasibility map of the
paper's four scenarios for this network.

Run:  python examples/quickstart.py
"""

from repro import MESSAGE_PASSING, RADIO, TrialRunner, run_execution
from repro.analysis import radio_malicious_threshold
from repro.core import SimpleOmission
from repro.core.radio_repeat import ADOPT_MAJORITY, RadioRepeat
from repro.failures import OmissionFailures
from repro.graphs import binary_tree, line
from repro.radio.closed_form import line_schedule


def main() -> None:
    topology = binary_tree(4)  # 31 nodes, radius 4
    p = 0.4
    print(f"network: {topology.name} (n={topology.order}, "
          f"radius={topology.radius_from(0)}, max degree="
          f"{topology.max_degree()})")
    print(f"per-round transmitter failure probability p = {p}")
    print()

    for model in (MESSAGE_PASSING, RADIO):
        algorithm = SimpleOmission(
            topology, source=0, source_message=1, model=model, p=p
        )
        print(f"[{model}] Simple-Omission: m={algorithm.phase_length} "
              f"steps/phase, {algorithm.rounds} rounds total")

        one_run = run_execution(
            algorithm, OmissionFailures(p), seed_or_stream=7,
            metadata=algorithm.metadata(),
        )
        print(f"  single run: success={one_run.is_successful_broadcast()}, "
              f"faulty transmissions={one_run.trace.fault_count()}")

        # The batched trial harness: auto-dispatches to the vectorised
        # Simple-Omission sampler, so 20k trials are one numpy draw.
        runner = TrialRunner(
            lambda m=model: SimpleOmission(topology, 0, 1, model=m, p=p),
            OmissionFailures(p),
        )
        fast = runner.run(trials=20_000, seed_or_stream=42)
        # Scalar engine cross-check: same per-trial streams, both
        # vectorised tiers disabled.  (To shard engine trials — or
        # large batchsim batches — across processes, pass workers=N
        # and a picklable factory: functools.partial(SimpleOmission,
        # ...) instead of this lambda.)
        engine = TrialRunner(
            lambda m=model: SimpleOmission(topology, 0, 1, model=m, p=p),
            OmissionFailures(p), use_fastsim=False, use_batchsim=False,
        ).run(trials=150, seed_or_stream=42)
        outcome = fast.stats()
        bar = 1 - 1 / topology.order
        print(f"  Monte Carlo: {fast.describe()}")
        print(f"  engine cross-check: {engine.describe()}")
        print(f"  almost-safe bar 1 - 1/n = {bar:.4f} -> "
              f"{outcome.almost_safe_verdict(topology.order)}")
        print()

    # The three dispatch tiers, told apart by result.backend: a
    # registered closed-form sampler wins when one matches; otherwise
    # an eligible history-oblivious scenario runs on the vectorised
    # batchsim engine (bit-identical to the scalar engine, only
    # faster).  Every algorithm family implements the batch interface,
    # so the scalar engine is only dispatched for history-dependent
    # adversaries or — as here — a custom success predicate.
    print("dispatch tiers (result.backend):")
    covered = TrialRunner(
        lambda: SimpleOmission(topology, 0, 1, MESSAGE_PASSING, p=p),
        OmissionFailures(p),
    ).run(2_000, seed_or_stream=7)
    print(f"  matched scenario        -> {covered.backend}")
    schedule = line_schedule(line(8))
    uncovered = TrialRunner(
        lambda: RadioRepeat(schedule, 1, ADOPT_MAJORITY, phase_length=4),
        OmissionFailures(p),  # majority + omission: no sampler law
    ).run(2_000, seed_or_stream=7)
    print(f"  uncovered, oblivious    -> {uncovered.backend}")
    custom = TrialRunner(
        lambda: SimpleOmission(topology, 0, 1, MESSAGE_PASSING, p=p),
        OmissionFailures(p),
        success=lambda result: 1 in result.correct_nodes(1),
    ).run(50, seed_or_stream=7)
    print(f"  custom success predicate-> {custom.backend}")
    print()

    delta = topology.max_degree()
    print("feasibility map for this network (the paper's four scenarios):")
    print(f"  omission + message passing : any p < 1")
    print(f"  omission + radio           : any p < 1")
    print(f"  malicious + message passing: p < 1/2")
    print(f"  malicious + radio          : p < (1-p)^(max_degree+1) = "
          f"{radio_malicious_threshold(delta):.4f}  (max degree {delta})")


if __name__ == "__main__":
    main()
