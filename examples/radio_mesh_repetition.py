"""Scenario: a radio mesh under jamming — Theorem 3.4 in action.

A spider-shaped radio mesh (a hub with six 4-hop legs) must broadcast
a configuration bit.  Faulty transmitters behave maliciously: they can
jam (transmit out of turn, colliding with legitimate traffic) or flip
relayed bits.  The example

1. computes a fault-free schedule (``opt`` steps),
2. derives the degree threshold ``p* = (1-p)^{Δ+1}`` of Theorem 2.4,
3. runs Algorithm Malicious-Radio (every schedule step repeated
   ``m = ⌈c log n⌉`` times, majority adoption) below the threshold, and
4. shows the same machinery collapsing above the threshold.

Run:  python examples/radio_mesh_repetition.py
"""

from repro import run_execution
from repro.analysis import estimate_success, radio_malicious_threshold
from repro.core import ADOPT_MAJORITY, RadioRepeat
from repro.failures import ComplementAdversary, JammingAdversary, MaliciousFailures
from repro.graphs import spider
from repro.radio import spider_schedule


def success_rate(schedule, p, phase_length, adversary, trials=100):
    """Monte-Carlo success of Malicious-Radio under one adversary."""
    algorithm = RadioRepeat(schedule, 1, rule=ADOPT_MAJORITY,
                            phase_length=phase_length)

    def trial(stream):
        result = run_execution(
            algorithm, MaliciousFailures(p, adversary), stream,
            metadata=algorithm.metadata(), record_trace=False,
        )
        return result.is_successful_broadcast()

    return estimate_success(trial, trials, seed_or_stream=23)


def main() -> None:
    legs, leg_length = 6, 4
    topology = spider(legs, leg_length)
    schedule = spider_schedule(topology, legs, leg_length)
    n = topology.order
    delta = topology.max_degree()
    p_star = radio_malicious_threshold(delta)
    print(f"mesh: {topology.name}, n={n}, max degree={delta}")
    print(f"fault-free schedule: opt={schedule.length} steps")
    print(f"Theorem 2.4 threshold: p* = {p_star:.4f}")
    print()

    p_safe = round(0.5 * p_star, 3)
    algorithm = RadioRepeat(schedule, 1, rule=ADOPT_MAJORITY, p=p_safe)
    print(f"below threshold (p={p_safe}): m={algorithm.phase_length}, "
          f"total {algorithm.rounds} rounds = opt x m")
    for name, adversary in [("jamming", JammingAdversary()),
                            ("bit-flipping", ComplementAdversary())]:
        outcome = success_rate(schedule, p_safe, algorithm.phase_length,
                               adversary)
        print(f"  vs {name:13s}: {outcome.describe()}  "
              f"[{outcome.almost_safe_verdict(n)}]")
    print()

    p_unsafe = round(min(0.45, 2.5 * p_star), 3)
    outcome = success_rate(schedule, p_unsafe, algorithm.phase_length,
                           ComplementAdversary())
    print(f"above threshold (p={p_unsafe} > p*): {outcome.describe()}")
    print("  the repetition budget that was almost-safe below the "
          "threshold no longer helps — Theorem 2.4's feasibility wall")


if __name__ == "__main__":
    main()
