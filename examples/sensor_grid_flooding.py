"""Scenario: a lossy sensor grid — naive vs fast broadcast (Theorem 3.1).

A 6x10 sensor grid disseminates a firmware flag from a corner node.
Transmitters fail 30% of the time (node-omission: a dropped radio
frame, not a corrupted one).  Compare:

* Algorithm Simple-Omission — the Section 2 naive algorithm, one
  transmitter per step, time Θ(n log n);
* Fast flooding — the Theorem 3.1 algorithm, everyone relays every
  round, time Θ(D + log n).

Both are almost-safe; the point is the time bill, which the example
prints together with measured completion-time quantiles.

Run:  python examples/sensor_grid_flooding.py
"""

from repro import MESSAGE_PASSING, run_execution
from repro.analysis import estimate_success
from repro.core import FastFlooding, SimpleOmission
from repro.failures import OmissionFailures
from repro.fastsim import sample_flooding_times
from repro.graphs import bfs_tree, grid


def main() -> None:
    topology = grid(6, 10)
    source, p = 0, 0.3
    n = topology.order
    radius = topology.radius_from(source)
    print(f"sensor grid: {topology.name}, n={n}, D={radius}, p={p}")
    print()

    naive = SimpleOmission(topology, source, 1, MESSAGE_PASSING, p=p)
    fast = FastFlooding(topology, source, 1, p=p)
    print(f"Simple-Omission : {naive.rounds:5d} rounds "
          f"(n={n} phases x m={naive.phase_length})")
    print(f"Fast flooding   : {fast.rounds:5d} rounds "
          f"(Theorem 3.1: O(D + log n))")
    print(f"speedup         : {naive.rounds / fast.rounds:.1f}x")
    print()

    # Measured completion times of flooding (vectorised sampler).
    tree = bfs_tree(topology, source)
    times = sample_flooding_times(tree, p, trials=4000, seed_or_stream=3)
    for quantile in (0.5, 0.9, 1 - 1 / n):
        import numpy

        value = float(numpy.quantile(times, quantile))
        print(f"flooding completion time, q={quantile:.3f}: {value:.0f} rounds")
    print(f"flooding safe budget (exact binomial): {fast.rounds} rounds")
    print()

    # Engine validation of the fast algorithm at the safe budget.
    def trial(stream):
        result = run_execution(
            fast, OmissionFailures(p), stream,
            metadata=fast.metadata(), record_trace=False,
        )
        return result.is_successful_broadcast()

    outcome = estimate_success(trial, trials=120, seed_or_stream=11)
    print(f"fast flooding Monte Carlo: {outcome.describe()}")
    print(f"verdict vs 1 - 1/n: {outcome.almost_safe_verdict(n)}")


if __name__ == "__main__":
    main()
