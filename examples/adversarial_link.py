"""Scenario: one unreliable link — the 1/2 wall and the timing loophole.

Theorem 2.3 says that once ``p >= 1/2``, no protocol — however clever —
can push a bit across a link whose failures can speak out of turn: the
proof's adversary answers every faulty round with what the sender
*would have sent had the bit been flipped*, pinning the receiver's
posterior at 1/2.  This example runs that exact adversary (a
counterfactual twin of the sender) and watches success collapse to a
coin flip.

Then it flips the assumption: if failures cannot speak out of turn
(the *limited malicious* model), the hello protocol encodes the bit in
the *timing pattern* of transmissions and wins for any ``p < 1`` —
even ``p = 0.8`` (Section 2.2.2).

Run:  python examples/adversarial_link.py
"""

from repro import MESSAGE_PASSING, run_execution
from repro.core import HelloProtocolAlgorithm, SimpleMalicious, hello_success_probability
from repro.failures import (
    EqualizingMpAdversary,
    MaliciousFailures,
    Restriction,
    SilentAdversary,
    SlowingAdversary,
)
from repro.graphs import two_node


def equalized_success_rate(p, trials=400, phase_length=15):
    """Success of a majority-vote protocol against the Thm 2.3 adversary."""
    successes = 0
    for seed in range(trials):
        message = seed % 2  # uniform source bit, as in the proof
        algorithm = SimpleMalicious(
            two_node(), 0, message, model=MESSAGE_PASSING,
            phase_length=phase_length,
        )
        adversary = EqualizingMpAdversary(source=0)
        if p > 0.5:
            adversary = SlowingAdversary(adversary, p, 0.5)
        result = run_execution(
            algorithm, MaliciousFailures(p, adversary), seed,
            metadata=algorithm.metadata(), record_trace=False,
        )
        successes += result.is_successful_broadcast()
    return successes / trials


def hello_success_rate(p, m, message, trials=300):
    """Success of the hello protocol under worst-case limited failures."""
    successes = 0
    for seed in range(trials):
        algorithm = HelloProtocolAlgorithm(two_node(), message, m=m)
        failure = MaliciousFailures(p, SilentAdversary(), Restriction.LIMITED)
        result = run_execution(
            algorithm, failure, seed,
            metadata=algorithm.metadata(), record_trace=False,
        )
        successes += result.outputs[1] == message
    return successes / trials


def main() -> None:
    print("-- full malicious failures: the p >= 1/2 wall (Theorem 2.3) --")
    for p in (0.5, 0.65, 0.8):
        rate = equalized_success_rate(p)
        print(f"  p={p}: majority voting over 15 rounds succeeds "
              f"{rate:.3f} of the time (pinned at ~1/2)")
    print()

    print("-- limited malicious failures: the hello protocol loophole --")
    p = 0.8
    for m in (8, 32, 128):
        exact = hello_success_probability(p, m, 0)
        measured = hello_success_rate(p, m, message=0)
        print(f"  p={p}, m={m:4d}: bit 0 decoded correctly "
              f"{measured:.3f} (exact {exact:.4f}); bit 1: always correct")
    print()
    print("same link, same failure rate — the only change is whether a")
    print("failure may transmit when the protocol says silence.")


if __name__ == "__main__":
    main()
