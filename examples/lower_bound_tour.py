"""Tour of the Section 3 lower-bound graph G(m).

The graph that separates the radio model from message passing: a
source, ``m`` bit nodes, and ``2^m - 1`` subset-coded receivers.
Fault-free broadcast takes exactly ``m + 1`` steps (Lemma 3.3), yet
almost-safe broadcast under omission failures needs far more than
``opt + log n`` steps (Lemma 3.4 / Theorem 3.3).

The tour: build the graph, verify the optimum exhaustively, run the
hit-count analytics of Lemma 3.4, and measure how a short budget fails
where the Theorem 3.4 budget succeeds.

Run:  python examples/lower_bound_tour.py
"""

import math

from repro.analysis.hitcount import (
    analyze_layer2_schedule,
    lemma34_lower_bound,
    min_hits_required,
)
from repro.core.parameters import omission_phase_length
from repro.fastsim import layered_success_estimate
from repro.graphs import layered_graph
from repro.radio import layered_min_layer2_steps, layered_schedule


def main() -> None:
    m, p = 6, 0.5
    graph = layered_graph(m)
    n = graph.topology.order
    print(f"G(m={m}): n = 2^{m} + {m} = {n} nodes")
    print(f"layers: source 0 | bit nodes {list(graph.bit_nodes)} | "
          f"{len(list(graph.value_nodes))} value nodes")
    print()

    schedule = layered_schedule(graph)
    print(f"Lemma 3.3 constructive schedule: {schedule.length} steps "
          f"(source, then each bit node alone)")
    small = layered_graph(4)
    print(f"exhaustive check at m=4: min layer-2 steps = "
          f"{layered_min_layer2_steps(small)} (so opt = m + 1, exactly)")
    print()

    print(f"Lemma 3.4 analytics at p={p}:")
    need = min_hits_required(n, p)
    print(f"  every value node needs >= {need:.1f} hits "
          f"(steps where exactly one of its neighbours transmits)")
    print(f"  cascade bound: tau > {lemma34_lower_bound(m, p):.1f} "
          f"layer-2 steps for any almost-safe schedule")
    print()

    short_budget = (m + 1) + math.ceil(math.log2(n))
    short_steps = [{(i % m) + 1} for i in range(short_budget)]
    analysis = analyze_layer2_schedule(graph, short_steps)
    short = layered_success_estimate(
        graph, short_steps, p, trials=6000, seed_or_stream=3,
        source_steps=max(1, short_budget // m),
    )
    print(f"budget opt + log n = {short_budget} steps "
          f"(min hits/node: {analysis.min_hits}):")
    print(f"  success = {short:.4f}  vs almost-safe bar {1 - 1 / n:.4f}  "
          f"-> FAILS")

    repeat = omission_phase_length(n, p)
    long_steps = []
    for position in range(1, m + 1):
        long_steps.extend([{position}] * repeat)
    long = layered_success_estimate(
        graph, long_steps, p, trials=6000, seed_or_stream=5,
        source_steps=repeat,
    )
    print(f"budget opt x ceil(c log n) = {len(long_steps)} steps "
          f"(Theorem 3.4):")
    print(f"  success = {long:.4f}  -> almost-safe")
    print()
    print("message passing broadcasts this graph in O(D + log n); the")
    print("radio model cannot — Theorem 3.3's separation, reproduced.")


if __name__ == "__main__":
    main()
