"""Small argument-validation helpers shared across the library.

Validation raises early with precise messages, per the "errors should
never pass silently" principle; every public constructor funnels its
argument checking through these helpers so that error text stays
uniform across the package.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "check_probability",
    "check_positive_int",
    "check_non_negative_int",
    "check_node",
    "check_in_range",
    "check_bit",
]


def check_probability(value: float, name: str = "p", *, allow_zero: bool = True,
                      allow_one: bool = False) -> float:
    """Validate that ``value`` is a probability and return it as float."""
    value = float(value)
    low_ok = value > 0.0 or (allow_zero and value == 0.0)
    high_ok = value < 1.0 or (allow_one and value == 1.0)
    if not (low_ok and high_ok):
        lo = "[0" if allow_zero else "(0"
        hi = "1]" if allow_one else "1)"
        raise ValueError(f"{name} must lie in {lo}, {hi}, got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate a strictly positive integer."""
    if int(value) != value or value < 1:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate a non-negative integer."""
    if int(value) != value or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return int(value)


def check_node(node: int, order: int, name: str = "node") -> int:
    """Validate a node identifier against a graph of ``order`` nodes."""
    if int(node) != node or not 0 <= node < order:
        raise ValueError(f"{name} must be an integer in [0, {order}), got {node!r}")
    return int(node)


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def check_bit(value: int, name: str = "bit") -> int:
    """Validate that ``value`` is a 0/1 bit."""
    if value not in (0, 1):
        raise ValueError(f"{name} must be 0 or 1, got {value!r}")
    return int(value)
