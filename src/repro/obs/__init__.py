"""``repro.obs`` — dependency-free metrics and tracing.

The unified observability layer for the serving and Monte-Carlo
stack: a process-wide :class:`MetricsRegistry` (counters, gauges,
fixed-bucket latency histograms), a nested wall-clock span API, an
optional NDJSON slow-span log over stdlib :mod:`logging`, and a
Prometheus-style text renderer (``python -m repro.obs render``).

Everything here is pure stdlib (``threading``, ``time``, ``logging``,
``json``) and **provably inert**: recording a metric or opening a span
consumes no randomness, so instrumented runs produce bit-identical
indicators to uninstrumented ones — pinned by ``tests/test_obs.py``
and the ``benchmarks/bench_obs.py`` overhead gate (<3 %).

Typical instrumentation site::

    from repro import obs

    with obs.span("serve.query", scenario=query.scenario):
        ...
    obs.get_registry().counter("serve.queries").inc()

The process-wide registry is swappable (:func:`set_registry` /
:func:`use_registry`), which is how tests isolate their counts and how
the overhead benchmark compares against the no-op
:class:`NullRegistry` (``obs.NULL``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.render import prometheus_name, render_prometheus, render_registry
from repro.obs.spans import (
    SLOW_LOG_NAME,
    NdjsonFormatter,
    Span,
    configure_slow_log,
    current_span,
    disable_slow_log,
    slow_log_threshold,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NdjsonFormatter",
    "Span",
    "DEFAULT_LATENCY_BUCKETS",
    "NULL",
    "SLOW_LOG_NAME",
    "configure_slow_log",
    "current_span",
    "disable_slow_log",
    "get_registry",
    "prometheus_name",
    "render_prometheus",
    "render_registry",
    "set_registry",
    "slow_log_threshold",
    "span",
    "use_registry",
]

#: The shared no-op registry: install it to switch metrics off.
NULL = NullRegistry()

_lock = threading.Lock()
_registry: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumentation site records to."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one.

    Pass :data:`NULL` to disable instrumentation entirely.
    """
    global _registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            f"registry must be a MetricsRegistry, got "
            f"{type(registry).__name__}"
        )
    with _lock:
        previous, _registry = _registry, registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None
                 ) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (a fresh one by default).

    The test idiom: every series recorded inside the block lands in an
    isolated registry, and the previous one is restored on exit even
    when the block raises.
    """
    if registry is None:
        registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
