"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the single sink every instrumentation site in the
library writes to.  Three instrument kinds cover the serving and
Monte-Carlo stack:

* :class:`Counter` — monotone event counts (queries served, cache
  hits, trials executed per backend);
* :class:`Gauge` — instantaneous levels (in-flight wire requests,
  coalescer flights);
* :class:`Histogram` — fixed-bucket latency distributions (query
  spans, batch runs, pool shard durations) with bucket-interpolated
  percentile estimates.

Design constraints, in order of importance:

1. **Provably inert.**  Instruments consume no randomness and never
   touch numpy's generators — recording a metric cannot perturb a
   single indicator bit (pinned in ``tests/test_obs.py`` and
   ``benchmarks/bench_obs.py``).
2. **Lock-safe.**  The serve layer records from the event-loop thread
   *and* from executor threads simultaneously; every instrument guards
   its mutation with its own lock (plain ``+=`` on an int is not
   atomic across the interpreter's bytecode boundary).
3. **Snapshot-able and resettable.**  ``snapshot()`` returns a plain
   JSON-serialisable dict (what the wire ``metrics`` op ships and
   ``repro.obs.render`` formats); ``reset()`` drops every series so
   tests start from zero.

Instruments are get-or-create by ``(name, labels)``: asking for the
same series twice returns the same object, so call sites never cache
instrument handles unless they are hot.  A :class:`NullRegistry` with
no-op instruments is the "metrics off" baseline the overhead benchmark
compares against.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default latency buckets in seconds: sub-millisecond resolution for
#: cache hits and fastsim draws, multi-second tail for sharded sweeps.
#: An implicit +Inf overflow bucket always follows the last bound.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical hashable identity of a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise ValueError(f"metric name must be a non-empty string, got {name!r}")
    return name


class Counter:
    """A monotone counter.  ``inc`` only; negative increments are bugs."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """An instantaneous level that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Pin the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current level."""
        return self._value


class Histogram:
    """Fixed-bucket distribution of non-negative observations.

    ``buckets`` are strictly increasing finite upper bounds; an
    implicit overflow bucket catches everything beyond the last bound.
    Observations record into exactly one bucket plus the running
    ``sum``/``count``, so a snapshot is O(buckets) and recording is one
    binary search — no per-observation storage.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if bounds[-1] == float("inf"):
            raise ValueError("the +Inf overflow bucket is implicit; "
                             "pass finite bounds only")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def bounds(self) -> Tuple[float, ...]:
        """Finite bucket upper bounds (the +Inf bucket is implicit)."""
        return self._bounds

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts (last entry is the +Inf overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def percentile(self, quantile: float) -> float:
        """Bucket-interpolated quantile estimate (0.0 when empty).

        Standard Prometheus-style estimation: find the bucket holding
        the target rank and interpolate linearly inside it.  Values in
        the overflow bucket clamp to the last finite bound — an honest
        lower bound rather than a fabricated tail.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {quantile}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = quantile * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self._bounds):
                    return self._bounds[-1]
                lower = self._bounds[index - 1] if index else 0.0
                upper = self._bounds[index]
                inside = rank - (cumulative - bucket_count)
                return lower + (upper - lower) * inside / bucket_count
        return self._bounds[-1]


class MetricsRegistry:
    """Named instrument store: get-or-create by ``(name, labels)``.

    All three accessors are safe to call from any thread; the registry
    lock guards only instrument creation (each instrument carries its
    own mutation lock), so hot recording paths never contend on the
    registry itself.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- accessors -----------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (_check_name(name), _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (_check_name(name), _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``buckets`` only matters at creation; later callers get the
        existing instrument whatever bounds they pass.
        """
        key = (_check_name(name), _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(
                    DEFAULT_LATENCY_BUCKETS if buckets is None else buckets
                )
        return instrument

    # -- read side -----------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> int:
        """Current count of a series (0 if it never recorded)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """JSON-serialisable dump of every series, deterministically ordered.

        The format the wire ``metrics`` op ships and
        :func:`repro.obs.render.render_prometheus` consumes::

            {"counters":   [{"name", "labels", "value"}, ...],
             "gauges":     [{"name", "labels", "value"}, ...],
             "histograms": [{"name", "labels", "bounds", "counts",
                             "sum", "count"}, ...]}
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": [
                {"name": name, "labels": dict(labels),
                 "value": instrument.value}
                for (name, labels), instrument in counters
            ],
            "gauges": [
                {"name": name, "labels": dict(labels),
                 "value": instrument.value}
                for (name, labels), instrument in gauges
            ],
            "histograms": [
                {"name": name, "labels": dict(labels),
                 "bounds": list(instrument.bounds),
                 "counts": instrument.bucket_counts(),
                 "sum": instrument.sum, "count": instrument.count}
                for (name, labels), instrument in histograms
            ],
        }

    def reset(self) -> None:
        """Drop every series (tests start from a clean registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose instruments drop every record — "metrics off".

    Shared singleton instruments keep the disabled path allocation-free;
    the overhead benchmark uses this as its baseline, and callers can
    install it via :func:`repro.obs.set_registry` to switch
    instrumentation off process-wide.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram()

    def counter(self, name: str, **labels: object) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        return self._null_histogram
