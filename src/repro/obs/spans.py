"""Lightweight wall-clock spans over the metrics registry.

A span is a named timed section::

    with obs.span("serve.query", scenario="flooding"):
        with obs.span("serve.query.resolve"):
            ...
        with obs.span("serve.query.run"):
            ...

On exit every span records its duration into the registry histogram
``<name>.seconds`` (labels carried through), so nested spans give a
per-phase latency breakdown for free.  Nesting is tracked through a
:mod:`contextvars` variable, which makes the parent/child relationship
correct across threads *and* across ``await`` points without any
bookkeeping at the call sites.

Spans are **inert** by construction: they consume ``time.perf_counter``
and nothing else — no randomness, no numpy — so instrumenting a code
path cannot change a single indicator bit.

The slow-span log
-----------------
:func:`configure_slow_log` arms an optional structured log: when a
*root* span (one with no parent) finishes at or above the threshold,
one NDJSON line goes to the standard :mod:`logging` logger
``repro.obs.slow`` with the whole phase tree — the "where did this
slow query spend its time" record.  The log is off until configured
and never touches the hot path beyond one float comparison per root
span.
"""

from __future__ import annotations

import contextvars
import json
import logging
import time
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry

__all__ = [
    "Span",
    "span",
    "current_span",
    "configure_slow_log",
    "disable_slow_log",
    "slow_log_threshold",
    "NdjsonFormatter",
    "SLOW_LOG_NAME",
]

#: The stdlib logger slow root spans are written to.
SLOW_LOG_NAME = "repro.obs.slow"

_current: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)

#: ``None`` while the slow log is unconfigured, else the threshold in
#: seconds.  Module-level so the hot path pays one read + compare.
_slow_threshold: Optional[float] = None


class NdjsonFormatter(logging.Formatter):
    """Formats a record whose ``msg`` is a dict as one JSON line.

    A UTC ISO-8601 timestamp and the level are prepended; everything
    else comes from the payload dict, so the log is machine-parseable
    line by line (newline-delimited JSON).
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname.lower(),
        }
        if isinstance(record.msg, dict):
            payload.update(record.msg)
        else:
            payload["message"] = record.getMessage()
        return json.dumps(payload, separators=(",", ":"))


def configure_slow_log(threshold_seconds: float,
                       stream=None) -> logging.Logger:
    """Arm the slow-span log at ``threshold_seconds``.

    Root spans whose duration reaches the threshold emit one NDJSON
    line on the ``repro.obs.slow`` logger.  When ``stream`` is given, a
    :class:`logging.StreamHandler` with the NDJSON formatter is
    attached to it (replacing handlers from earlier calls); otherwise
    the logger keeps whatever handlers the application configured.
    """
    global _slow_threshold
    if threshold_seconds < 0:
        raise ValueError(
            f"threshold_seconds must be >= 0, got {threshold_seconds}"
        )
    _slow_threshold = float(threshold_seconds)
    logger = logging.getLogger(SLOW_LOG_NAME)
    logger.setLevel(logging.INFO)
    if stream is not None:
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        handler = logging.StreamHandler(stream)
        handler.setFormatter(NdjsonFormatter())
        logger.addHandler(handler)
        logger.propagate = False
    return logger


def disable_slow_log() -> None:
    """Disarm the slow-span log and detach its handlers."""
    global _slow_threshold
    _slow_threshold = None
    logger = logging.getLogger(SLOW_LOG_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.propagate = True


def slow_log_threshold() -> Optional[float]:
    """The armed threshold in seconds, or ``None`` when off."""
    return _slow_threshold


class Span:
    """One timed section; use via :func:`span` as a context manager."""

    __slots__ = ("name", "labels", "_registry", "parent", "children",
                 "_started", "seconds", "_token")

    def __init__(self, name: str, registry: MetricsRegistry,
                 labels: Dict[str, object]):
        self.name = name
        self.labels = labels
        self._registry = registry
        self.parent: Optional[Span] = None
        self.children: List[Span] = []
        self._started = 0.0
        #: Duration in seconds, populated on exit.
        self.seconds = 0.0
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "Span":
        self.parent = _current.get()
        if self.parent is not None:
            self.parent.children.append(self)
        self._token = _current.set(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._started
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        self._registry.histogram(
            f"{self.name}.seconds", **self.labels
        ).observe(self.seconds)
        if (self.parent is None and _slow_threshold is not None
                and self.seconds >= _slow_threshold):
            logging.getLogger(SLOW_LOG_NAME).info(self.tree())

    def tree(self) -> Dict[str, Any]:
        """The span's phase tree as a JSON-ready dict (slow-log payload)."""
        payload: Dict[str, Any] = {
            "span": self.name,
            "seconds": round(self.seconds, 6),
        }
        if self.labels:
            payload["labels"] = {
                str(k): str(v) for k, v in self.labels.items()
            }
        if self.children:
            payload["phases"] = [child.tree() for child in self.children]
        return payload


def span(name: str, registry: Optional[MetricsRegistry] = None,
         **labels: object) -> Span:
    """A context-managed span recording into ``<name>.seconds``.

    ``registry`` defaults to the process-wide one
    (:func:`repro.obs.get_registry`), resolved at *entry* so tests that
    swap the default registry see spans land in theirs.
    """
    if registry is None:
        from repro.obs import get_registry
        registry = get_registry()
    return Span(name, registry, dict(labels))


def current_span() -> Optional[Span]:
    """The innermost open span in this context, or ``None``."""
    return _current.get()
