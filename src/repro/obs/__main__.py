"""Command-line front end: ``python -m repro.obs``.

Subcommands::

    render   print a metrics snapshot as Prometheus exposition text.
             Three sources, checked in order:

             --host/--port   query a live simulation server's
                             ``metrics`` wire op over TCP
             FILE            read a saved snapshot (or a full wire
                             response) from a JSON file
             -               read the same from stdin

The output is the standard Prometheus text format, so it can be piped
to ``promtool check metrics``, scraped by a collector sidecar, or
grepped by CI (the ``serve-smoke`` job asserts the core series are
present and non-zero).
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Any, Dict, List, Optional

from repro.obs.render import render_prometheus


def _fetch_over_wire(host: str, port: int, timeout: float) -> Dict[str, Any]:
    """One ``{"op": "metrics"}`` round trip against a live server."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b'{"op":"metrics"}\n')
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    line = b"".join(chunks)
    if not line:
        raise ConnectionError("server closed without responding")
    response = json.loads(line)
    if not isinstance(response, dict) or not response.get("ok"):
        raise RuntimeError(f"metrics op failed: {response}")
    return response


def _coerce_snapshot(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Accept either a bare snapshot or a full wire ``metrics`` response."""
    if "metrics" in payload and isinstance(payload["metrics"], dict):
        payload = payload["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(payload.get(section, []), list):
            raise ValueError(
                f"snapshot section {section!r} is not a list"
            )
    if not any(section in payload
               for section in ("counters", "gauges", "histograms")):
        raise ValueError(
            "input is neither a registry snapshot nor a metrics response"
        )
    return payload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for the simulation stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    render = sub.add_parser(
        "render",
        help="print a metrics snapshot as Prometheus exposition text",
    )
    render.add_argument("source", nargs="?", default=None,
                        help="snapshot JSON file, or '-' for stdin")
    render.add_argument("--host", default=None,
                        help="query a live server's metrics op instead")
    render.add_argument("--port", type=int, default=7641)
    render.add_argument("--timeout", type=float, default=10.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.host is not None and args.source is not None:
        print("render: pass --host or a FILE, not both", file=sys.stderr)
        return 2
    try:
        if args.host is not None:
            payload = _fetch_over_wire(args.host, args.port, args.timeout)
        elif args.source in (None, "-"):
            payload = json.loads(sys.stdin.read())
        else:
            with open(args.source, "r", encoding="utf8") as handle:
                payload = json.load(handle)
        snapshot = _coerce_snapshot(payload)
    except (OSError, ValueError, RuntimeError) as error:
        print(f"render: {error}", file=sys.stderr)
        return 1
    sys.stdout.write(render_prometheus(snapshot))
    return 0


if __name__ == "__main__":
    sys.exit(main())
