"""Prometheus-style text exposition of a registry snapshot.

Dotted metric names become underscore-separated Prometheus names
(``serve.query.seconds`` → ``serve_query_seconds``), counters gain the
conventional ``_total`` suffix, and histograms expand into cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count`` — the format
every Prometheus scraper and ``promtool`` understands.  The renderer
works on the plain-dict snapshot (:meth:`MetricsRegistry.snapshot`),
so it can format a live registry, a wire ``metrics`` response, or a
snapshot saved to disk — ``python -m repro.obs render`` does all
three.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.obs.registry import MetricsRegistry

__all__ = ["render_prometheus", "render_registry", "prometheus_name"]


def prometheus_name(name: str) -> str:
    """Sanitise a dotted metric name into a Prometheus identifier."""
    sanitised = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if not sanitised or sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{prometheus_name(str(key))}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Mapping[str, List[Dict]]) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    Accepts the dict shape :meth:`MetricsRegistry.snapshot` produces
    (missing sections are treated as empty).  Series appear in
    snapshot order — already deterministic — with one ``# TYPE`` line
    per metric name.
    """
    lines: List[str] = []
    typed: set = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", []):
        name = prometheus_name(entry["name"]) + "_total"
        declare(name, "counter")
        lines.append(
            f"{name}{_format_labels(entry.get('labels', {}))} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("gauges", []):
        name = prometheus_name(entry["name"])
        declare(name, "gauge")
        lines.append(
            f"{name}{_format_labels(entry.get('labels', {}))} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("histograms", []):
        name = prometheus_name(entry["name"])
        declare(name, "histogram")
        labels = entry.get("labels", {})
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            le = 'le="%s"' % _format_value(float(bound))
            lines.append(
                f"{name}_bucket{_format_labels(labels, le)} {cumulative}"
            )
        cumulative += entry["counts"][len(entry["bounds"])]
        inf = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_format_labels(labels, inf)} {cumulative}"
        )
        lines.append(
            f"{name}_sum{_format_labels(labels)} "
            f"{_format_value(entry['sum'])}"
        )
        lines.append(
            f"{name}_count{_format_labels(labels)} {entry['count']}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def render_registry(registry: MetricsRegistry) -> str:
    """Convenience: snapshot ``registry`` and render it."""
    return render_prometheus(registry.snapshot())
