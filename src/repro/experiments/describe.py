"""Registry-driven experiment and dispatch-coverage documentation.

``python -m repro.experiments describe`` renders one row per
registered experiment — paper claim, topology, failure model, the
**dispatched backend** (read live off each experiment's
:class:`~repro.experiments.registry.ScenarioSpec` trial runners, so it
cannot drift from the dispatch logic), trial budgets and the CLI
invocation — plus the dispatch registry itself: every fastsim sampler
entry and every batchsim lift family.

``--markdown`` emits the committed ``EXPERIMENTS.md``;
``tests/test_docs_sync.py`` regenerates it and fails on any drift, so
adding a sampler, a lift or an experiment without regenerating the
docs breaks the build.
"""

from __future__ import annotations

from typing import Dict, List

from repro.batchsim.programs import registered_lifts
from repro.experiments.registry import all_experiments
from repro.montecarlo.dispatch import registered_samplers

__all__ = ["experiment_rows", "render_text", "render_markdown"]

_CLI_TEMPLATE = ("python -m repro.experiments run {id}"
                 " [--quick] [--seed N] [--workers N] [--trials-scale F]")


def experiment_rows() -> List[Dict[str, str]]:
    """One describe row per registered experiment.

    Backends come from ``TrialRunner.dispatch_backend()`` on the
    registered scenario specs — the same dispatch walk ``run()`` takes.
    """
    rows = []
    for experiment in all_experiments():
        scenarios = []
        backends = []
        topologies = []
        failures = []
        trials = []
        notes = []
        for spec in experiment.scenarios:
            scenarios.append(spec.label)
            topologies.append(spec.topology)
            trials.append(spec.trials)
            if spec.build is None:  # purely combinatorial scenario
                backends.append("—")
                failures.append("—")
            else:
                runner = spec.build()
                backends.append(runner.dispatch_backend())
                failures.append(runner.failure_model.describe())
            if spec.note:
                notes.append(spec.note)
        if not experiment.scenarios:
            scenarios, backends = ["—"], ["—"]
            topologies, failures, trials = ["—"], ["—"], ["—"]
        rows.append({
            "id": experiment.experiment_id,
            "title": experiment.title,
            "claim": experiment.paper_claim,
            "scenarios": "; ".join(scenarios),
            "topology": "; ".join(dict.fromkeys(topologies)),
            "failures": "; ".join(dict.fromkeys(failures)),
            "backends": "; ".join(dict.fromkeys(backends)),
            "trials": "; ".join(dict.fromkeys(trials)),
            "cli": _CLI_TEMPLATE.format(id=experiment.experiment_id),
            "notes": " ".join(notes),
        })
    return rows


def render_text() -> str:
    """Terminal-friendly describe output (same facts as the markdown)."""
    lines = []
    for row in experiment_rows():
        lines.append(f"{row['id']}  {row['title']}")
        lines.append(f"    claim    : {row['claim']}")
        lines.append(f"    scenarios: {row['scenarios']}")
        lines.append(f"    topology : {row['topology']}")
        lines.append(f"    failures : {row['failures']}")
        lines.append(f"    backend  : {row['backends']}")
        lines.append(f"    trials   : {row['trials']} (quick / full)")
        lines.append(f"    cli      : {row['cli']}")
        if row["notes"]:
            lines.append(f"    note     : {row['notes']}")
        lines.append("")
    lines.append("fastsim samplers (dispatch tier 1, lookup order):")
    for entry in registered_samplers():
        lines.append(f"    {entry.name}")
    lines.append("")
    lines.append("batchsim lifts (dispatch tier 2):")
    for lift in registered_lifts():
        lines.append(f"    {lift.name}: {lift.description}")
    return "\n".join(lines)


def render_markdown() -> str:
    """The full, committed ``EXPERIMENTS.md`` content."""
    lines = [
        "# Experiments",
        "",
        "<!-- GENERATED FILE - do not edit by hand.",
        "     Regenerate with:",
        "       PYTHONPATH=src python -m repro.experiments describe"
        " --markdown > EXPERIMENTS.md",
        "     tests/test_docs_sync.py regenerates this file from the"
        " registry and",
        "     fails when the committed copy drifts. -->",
        "",
        "One row per registered experiment.  The **backend** column is"
        " computed by",
        "the live dispatch logic (`TrialRunner.dispatch_backend()`) on"
        " each",
        "experiment's registered scenario, so this table always reflects"
        " what",
        "actually runs — see [ARCHITECTURE.md](ARCHITECTURE.md) for the"
        " tier design.",
        "",
        "Every experiment accepts the same CLI shape:",
        "",
        "```",
        "PYTHONPATH=src python -m repro.experiments run <ID> [--quick]"
        " [--seed N] \\",
        "    [--workers N] [--trials-scale F]",
        "```",
        "",
        "`--workers N` shards scalar-engine batches over N processes"
        " (bit-identical",
        "results for any N); `--trials-scale F` multiplies every trial"
        " budget by F.",
        "`run-all` runs the whole suite with the same flags.",
        "",
        "| ID | Paper claim | Scenario(s) | Topology | Failure model |"
        " Backend | Trials (quick / full) |",
        "|----|-------------|-------------|----------|---------------|"
        "---------|-----------------------|",
    ]
    notes = []
    for row in experiment_rows():
        lines.append(
            f"| {row['id']} | {row['claim']} | {row['scenarios']} | "
            f"{row['topology']} | {row['failures']} | {row['backends']} | "
            f"{row['trials']} |"
        )
        if row["notes"]:
            notes.append(f"- **{row['id']}** — {row['notes']}")
    if notes:
        lines.append("")
        lines.append("Notes:")
        lines.append("")
        lines.extend(notes)
    lines.extend([
        "",
        "## Dispatch registry",
        "",
        "### fastsim samplers (tier 1, lookup order)",
        "",
        "Closed-form vectorised success laws; the scenario shape each"
        " entry",
        "matches is documented in the tier table of",
        "`src/repro/montecarlo/dispatch.py`.",
        "",
    ])
    for entry in registered_samplers():
        lines.append(f"- `{entry.name}`")
    lines.extend([
        "",
        "### batchsim lifts (tier 2)",
        "",
        "Vectorised multi-trial programs, bit-identical to the scalar"
        " engine",
        "(property-pinned in `tests/test_batchsim.py`):",
        "",
    ])
    for lift in registered_lifts():
        lines.append(f"- `{lift.name}` — {lift.description}")
    lines.extend([
        "",
        "The scalar engine (tier 3) is auto-dispatched only for"
        " history-dependent",
        "failure models — the adaptive equalizing adversaries (E04) —"
        " and for",
        "custom success predicates; every other Monte-Carlo scenario"
        " runs on a",
        "vectorised tier.  Runners may still *pin* the engine"
        " deliberately",
        "(`use_fastsim=False, use_batchsim=False`) for"
        " closed-form-vs-engine",
        "validation columns (E01-E03).",
        "",
    ])
    return "\n".join(lines)
