"""E04 — Theorem 2.3: the equalizing adversary at p >= 1/2.

Claim: for ``p >= 1/2`` no algorithm (even randomized) broadcasts
almost-safely in the message-passing model.  The proof's adversary is
constructive: whenever the source's transmitter fails, deliver what the
source *would have sent had the message been flipped* (realised here by
a counterfactual twin), slowing the failure rate down to exactly 1/2
first.  The receiver's posterior then never moves off 1/2, so over a
uniform source bit any decision rule errs half the time.

The experiment runs Simple-Malicious on the 2-node graph under this
adversary — one :class:`~repro.montecarlo.TrialRunner` engine batch per
source bit (the adversary rebuilds its twin per execution, so a single
instance serves the whole batch) — and checks the success rate is
statistically indistinguishable from 1/2 — catastrophically below the
``1 - 1/n`` bar — for ``p ∈ {0.5, 0.6, 0.75}``.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.estimation import clopper_pearson
from repro.core.simple_malicious import SimpleMalicious
from repro.engine.protocol import MESSAGE_PASSING
from repro.failures.adversaries import SlowingAdversary
from repro.montecarlo import TrialRunner
from repro.failures.equalizing import EqualizingMpAdversary
from repro.failures.malicious import MaliciousFailures
from repro.graphs.builders import two_node
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


def _describe_runner() -> TrialRunner:
    return TrialRunner(
        partial(SimpleMalicious, two_node(), 0, 1, MESSAGE_PASSING, 15),
        MaliciousFailures(0.5, EqualizingMpAdversary(source=0)),
    )


@register(
    "E04",
    "Equalizing adversary pins error at 1/2 (message passing)",
    "Theorem 2.3 — not feasible for p >= 1/2 (message passing)",
    scenarios=[ScenarioSpec(
        label="equalizing mp adversary",
        build=_describe_runner,
        topology="2-node graph",
        trials="200 / 800",
        note="adaptive (history-dependent) adversary — the scalar "
             "engine tier is the only exact backend",
    )],
)
def run_e04(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E04")
    trials = config.scaled_trials(200 if config.quick else 800)
    phase_length = 15
    topology = two_node()
    probabilities = [0.5, 0.6] if config.quick else [0.5, 0.6, 0.75]
    table = Table([
        "p", "effective_rate", "trials", "success_rate", "ci_low", "ci_high",
        "pinned_at_half",
    ])
    passed = True
    for p in probabilities:
        successes = 0
        # Uniform source bit, as in the proof: half the budget per bit.
        for message in (0, 1):
            adversary = EqualizingMpAdversary(source=0)
            if p > 0.5:
                adversary = SlowingAdversary(adversary, p, 0.5)
            runner = TrialRunner(
                partial(SimpleMalicious, topology, 0, message,
                        MESSAGE_PASSING, phase_length),
                MaliciousFailures(p, adversary),
                workers=config.workers,
                executor=config.executor,
            )
            outcome = runner.run(
                trials // 2, stream.child("mc", p, message)
            )
            successes += outcome.successes
        rate = successes / trials
        low, high = clopper_pearson(successes, trials, confidence=0.999)
        pinned = low <= 0.5 <= high
        passed = passed and pinned
        table.add_row(
            p=p, effective_rate=0.5, trials=trials, success_rate=rate,
            ci_low=low, ci_high=high, pinned_at_half=pinned,
        )
    notes = [
        "adversary: counterfactual twin of the source initialised with the "
        "flipped bit; faulty rounds deliver the twin's transmission",
        "p > 1/2 rows use the proof's slowing reduction (stay-malicious "
        "probability (1/2)/p, effective rate exactly 1/2)",
        "pinned_at_half: the 99.9% Clopper-Pearson interval contains 1/2 — "
        "error probability ~1/2 >> 1/n, so no almost-safe algorithm exists",
    ]
    return ExperimentReport(
        experiment_id="E04",
        title="Equalizing adversary pins error at 1/2 (message passing)",
        paper_claim="Theorem 2.3: broadcasting is not almost-safe for "
                    "p >= 1/2, even randomized",
        table=table,
        notes=notes,
        passed=passed,
    )
