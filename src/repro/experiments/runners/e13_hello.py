"""E13 — Section 2.2.2 remark: the hello protocol beats 1/2 when links
cannot speak out of turn.

Claim: in the *limited* malicious model (no out-of-turn transmissions),
the 2-node timing-channel protocol broadcasts a bit almost-safely for
every ``p < 1`` — message 1 is never misdecoded, message 0 fails only
when no two consecutive rounds survive, with probability
``e^{-Θ(m)}``.

The experiment compares the exact recurrence value with Monte-Carlo
runs batched through the :class:`~repro.montecarlo.TrialRunner` (the
broadcast-success event *is* the decode event: the sender always
outputs its own bit, so the runs dispatch to the batchsim tier's
:class:`~repro.batchsim.programs.HelloProgram` — bit-identical to the
scalar engine trials the goldens were captured on) under a
payload-corrupting limited-malicious adversary (content is irrelevant —
only timing matters), and exhibits the exponential decay in ``m``.
"""

from __future__ import annotations

from functools import partial

from repro.core.hello import HelloProtocolAlgorithm, hello_success_probability
from repro.failures.adversaries import GarbageAdversary, SilentAdversary
from repro.failures.malicious import MaliciousFailures, Restriction
from repro.graphs.builders import two_node
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


def _describe_runner() -> TrialRunner:
    return TrialRunner(
        partial(HelloProtocolAlgorithm, two_node(), 0, 8),
        MaliciousFailures(0.2, SilentAdversary(), Restriction.LIMITED),
    )


@register(
    "E13",
    "Hello protocol (limited malicious, any p < 1)",
    "Section 2.2.2 — without out-of-turn failures, a bit crosses one link "
    "almost-safely for every p < 1",
    scenarios=[ScenarioSpec(
        label="hello timing channel (drop/corrupt)",
        build=_describe_runner,
        topology="2-node graph",
        trials="150 / 600",
    )],
)
def run_e13(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E13")
    topology = two_node()
    trials = config.scaled_trials(150 if config.quick else 600)
    probabilities = [0.2, 0.6] if config.quick else [0.2, 0.5, 0.8]
    ms = [8, 32] if config.quick else [8, 16, 32, 64]
    table = Table([
        "p", "m", "message", "adversary", "exact_success", "engine_mc",
        "agrees",
    ])
    passed = True
    # The worst limited-malicious behaviour against a timing channel is
    # *dropping* (the exact recurrence's model); content corruption is
    # harmless and is shown in separate rows as a sanity contrast.
    adversaries = [
        ("drop", SilentAdversary()),
        ("corrupt", GarbageAdversary()),
    ]
    for p in probabilities:
        for m in ms:
            for message in (0, 1):
                for adversary_name, adversary in adversaries:
                    if adversary_name == "corrupt" and m != ms[0]:
                        continue  # one contrast row per (p, message)
                    exact = (
                        hello_success_probability(p, m, message)
                        if adversary_name == "drop" else 1.0
                    )
                    runner = TrialRunner(
                        partial(HelloProtocolAlgorithm, topology, message, m),
                        MaliciousFailures(p, adversary, Restriction.LIMITED),
                        workers=config.workers,
                        executor=config.executor,
                    )
                    outcome = runner.run(
                        trials,
                        stream.child("mc", p, m, message, adversary_name),
                    ).stats()
                    agrees = (
                        outcome.lower - 0.02 <= exact <= outcome.upper + 0.02
                    )
                    passed = passed and agrees
                    table.add_row(
                        p=p, m=m, message=message, adversary=adversary_name,
                        exact_success=exact, engine_mc=outcome.estimate,
                        agrees=agrees,
                    )
    # Exponential decay and the >1/2 beat: even p = 0.8 succeeds w.h.p.
    decay_ok = (
        hello_success_probability(0.8, 64, 0)
        > hello_success_probability(0.8, 8, 0)
        and hello_success_probability(0.8, 256, 0) > 0.99
    )
    passed = passed and decay_ok
    notes = [
        "drop rows: the silent adversary (worst limited-malicious attack "
        "on a timing channel) — matches the exact recurrence; corrupt rows: "
        "content corruption never hurts, success is identically 1",
        "message 1 is never misdecoded (failures only remove audible "
        "rounds); message 0 fails iff no two consecutive rounds survive",
        f"p=0.8 success rises from "
        f"{hello_success_probability(0.8, 8, 0):.3f} (m=8) to "
        f"{hello_success_probability(0.8, 256, 0):.6f} (m=256) — beating "
        f"the p >= 1/2 impossibility of the full malicious model",
    ]
    return ExperimentReport(
        experiment_id="E13",
        title="Hello protocol (limited malicious, any p < 1)",
        paper_claim="Section 2.2.2: without out-of-turn transmissions the "
                    "sender beats the 1/2 threshold for every p < 1",
        table=table,
        notes=notes,
        passed=passed,
    )
