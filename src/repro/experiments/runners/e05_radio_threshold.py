"""E05 — Theorem 2.4 (feasibility side): the radio threshold p < (1-p)^{Δ+1}.

Claim: with malicious transmission failures in the radio model,
almost-safe broadcasting is feasible iff ``p < (1-p)^{Δ+1}``.

The binding node is the star root of a leaf-sourced star: it listens to
the source's phase with ``Δ - 1`` other (potentially jamming) leaf
neighbours.  For each ``Δ`` the experiment computes the exact threshold
``p*(Δ)`` (root of ``p = (1-p)^{Δ+1}``), then evaluates the exact
per-node signed-majority chain success of Simple-Malicious just below
(``0.75·p*``) and just above (``1.25·p*``) the threshold, cross-checked
by the vectorised radio sampler.
"""

from __future__ import annotations

from repro.analysis.thresholds import radio_malicious_threshold
from repro.core.parameters import (
    radio_malicious_phase_length,
    signed_majority_error,
)
from repro.fastsim.tree_chain import sample_simple_malicious_radio
from repro.graphs.bfs import bfs_tree
from repro.graphs.builders import star
from repro.experiments.registry import ExperimentConfig, ExperimentReport, register
from repro.experiments.tables import Table
from repro.rng import RngStream


def _exact_chain_success(tree, m: int, p: float) -> float:
    """Exact success of the radio voting chain (worst-case adversary)."""
    success = 1.0
    for node in tree.topology.nodes:
        if node == tree.root:
            continue
        degree = tree.topology.degree(node)
        good = (1.0 - p) ** (degree + 1)
        if good <= p:
            # Infeasible at this node: the error tends to 1 with m; the
            # signed-majority DP still evaluates it exactly.
            pass
        success *= 1.0 - signed_majority_error(m, good, p)
    return success


@register(
    "E05",
    "Radio malicious threshold p*(delta)",
    "Theorem 2.4 — feasible iff p < (1-p)^(delta+1) (radio)",
)
def run_e05(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E05")
    degrees = [2, 4] if config.quick else [2, 4, 8, 16]
    trials = 2000 if config.quick else 5000
    table = Table([
        "delta", "n", "p_star", "side", "p", "m", "exact_success",
        "fastsim_mc", "target", "almost_safe",
    ])
    passed = True
    for delta in degrees:
        topology = star(delta, source_is_center=False)
        tree = bfs_tree(topology, 0)
        n = topology.order
        target = 1.0 - 1.0 / n
        p_star = radio_malicious_threshold(delta)
        # Feasible side.
        p_low = 0.75 * p_star
        m_low = radio_malicious_phase_length(n, p_low, delta)
        exact_low = _exact_chain_success(tree, m_low, p_low)
        mc_low = float(
            sample_simple_malicious_radio(
                tree, m_low, p_low, trials, stream.child("low", delta)
            ).mean()
        )
        feasible_ok = exact_low >= target
        table.add_row(
            delta=delta, n=n, p_star=p_star, side="below", p=p_low, m=m_low,
            exact_success=exact_low, fastsim_mc=mc_low, target=target,
            almost_safe=feasible_ok,
        )
        # Infeasible side: same repetition budget, p beyond the threshold.
        p_high = min(0.99, 1.25 * p_star)
        exact_high = _exact_chain_success(tree, m_low, p_high)
        mc_high = float(
            sample_simple_malicious_radio(
                tree, m_low, p_high, trials, stream.child("high", delta)
            ).mean()
        )
        collapse_ok = exact_high < 0.5
        table.add_row(
            delta=delta, n=n, p_star=p_star, side="above", p=p_high, m=m_low,
            exact_success=exact_high, fastsim_mc=mc_high, target=target,
            almost_safe=exact_high >= target,
        )
        passed = passed and feasible_ok and collapse_ok and mc_low >= target - 0.05
    notes = [
        "topology: star with the source at a leaf — the star root (degree "
        "delta) is the binding receiver of the threshold condition",
        "adversary model: faulty parent flips its bit (others silent), any "
        "other faulty closed-neighbourhood member destroys the reception — "
        "good = (1-p)^(delta+1), bad = p per step",
        "p*(delta) solved by Brent root finding on p - (1-p)^(delta+1)",
    ]
    return ExperimentReport(
        experiment_id="E05",
        title="Radio malicious threshold p*(delta)",
        paper_claim="Theorem 2.4: feasible iff p < (1-p)^(delta+1) in the "
                    "radio model",
        table=table,
        notes=notes,
        passed=passed,
    )
