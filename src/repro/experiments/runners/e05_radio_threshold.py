"""E05 — Theorem 2.4 (feasibility side): the radio threshold p < (1-p)^{Δ+1}.

Claim: with malicious transmission failures in the radio model,
almost-safe broadcasting is feasible iff ``p < (1-p)^{Δ+1}``.

The binding node is the star root of a leaf-sourced star: it listens to
the source's phase with ``Δ - 1`` other (potentially jamming) leaf
neighbours.  For each ``Δ`` the experiment computes the exact threshold
``p*(Δ)`` (root of ``p = (1-p)^{Δ+1}``), then evaluates the exact
per-node signed-majority success product of Simple-Malicious just below
(``0.75·p*``) and just above (``1.25·p*``) the threshold, cross-checked
by Monte-Carlo through the :class:`~repro.montecarlo.TrialRunner` —
which dispatches to the engine-exact ``simple-malicious-radio`` tree
sampler (the per-node product ignores the sibling correlation induced
by the shared source phase, so the two columns agree closely but not
exactly; both sit on the same side of the threshold).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.thresholds import radio_malicious_threshold
from repro.core.parameters import (
    radio_malicious_phase_length,
    signed_majority_error,
)
from repro.core.simple_malicious import SimpleMalicious
from repro.engine.protocol import RADIO
from repro.failures.adversaries import RadioWorstCaseAdversary
from repro.failures.malicious import MaliciousFailures
from repro.graphs.builders import star
from repro.graphs.bfs import bfs_tree
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


#: Default sequential stopping widths (quick / full).  Matched to the
#: historical fixed budgets' Hoeffding widths at 99% confidence so the
#: pass criteria keep their slack, while the empirical-Bernstein bound
#: lets near-decisive cells (success rate near 0 or 1 — most of this
#: sweep) stop several doublings earlier.
MC_WIDTH_QUICK = 0.06
MC_WIDTH_FULL = 0.025


def _exact_chain_success(tree, m: int, p: float) -> float:
    """Exact per-node success product (worst-case adversary marginals)."""
    success = 1.0
    for node in tree.topology.nodes:
        if node == tree.root:
            continue
        degree = tree.topology.degree(node)
        good = (1.0 - p) ** (degree + 1)
        if good <= p:
            # Infeasible at this node: the error tends to 1 with m; the
            # signed-majority DP still evaluates it exactly.
            pass
        success *= 1.0 - signed_majority_error(m, good, p)
    return success


def _runner(topology, m: int, p: float, workers: int,
            executor=None) -> TrialRunner:
    """Monte-Carlo runner; dispatches to the radio tree sampler."""
    return TrialRunner(
        partial(SimpleMalicious, topology, 0, 1, RADIO, m),
        MaliciousFailures(p, RadioWorstCaseAdversary()),
        workers=workers,
        executor=executor,
    )


def _describe_runner() -> TrialRunner:
    delta = 2
    topology = star(delta, source_is_center=False)
    p = 0.75 * radio_malicious_threshold(delta)
    m = radio_malicious_phase_length(topology.order, p, delta)
    return _runner(topology, m, p, workers=1)


@register(
    "E05",
    "Radio malicious threshold p*(delta)",
    "Theorem 2.4 — feasible iff p < (1-p)^(delta+1) (radio)",
    scenarios=[ScenarioSpec(
        label="simple-malicious radio worst case",
        build=_describe_runner,
        topology="leaf-sourced stars, delta=2..16",
        trials="≤ 4000 / 20000",
        sequential="width ≤ 0.06 / 0.025 (bernstein)",
    )],
)
def run_e05(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E05")
    degrees = [2, 4] if config.quick else [2, 4, 8, 16]
    width = config.adaptive_width(
        MC_WIDTH_QUICK if config.quick else MC_WIDTH_FULL
    )
    cap = config.adaptive_cap(4000 if config.quick else 20000)
    table = Table([
        "delta", "n", "p_star", "side", "p", "m", "exact_success",
        "fastsim_mc", "mc_trials", "target", "almost_safe",
    ])
    passed = True
    backends = set()
    for delta in degrees:
        topology = star(delta, source_is_center=False)
        tree = bfs_tree(topology, 0)
        n = topology.order
        target = 1.0 - 1.0 / n
        p_star = radio_malicious_threshold(delta)
        # Feasible side.
        p_low = 0.75 * p_star
        m_low = radio_malicious_phase_length(n, p_low, delta)
        exact_low = _exact_chain_success(tree, m_low, p_low)
        low = _runner(topology, m_low, p_low, config.workers,
                      executor=config.executor).run_until(
            width, cap, stream.child("low", delta), bound="bernstein"
        )
        backends.add(low.backend)
        feasible_ok = exact_low >= target
        table.add_row(
            delta=delta, n=n, p_star=p_star, side="below", p=p_low, m=m_low,
            exact_success=exact_low, fastsim_mc=low.estimate,
            mc_trials=low.trials, target=target,
            almost_safe=feasible_ok,
        )
        # Infeasible side: same repetition budget, p beyond the threshold.
        p_high = min(0.99, 1.25 * p_star)
        exact_high = _exact_chain_success(tree, m_low, p_high)
        high = _runner(topology, m_low, p_high, config.workers,
                       executor=config.executor).run_until(
            width, cap, stream.child("high", delta), bound="bernstein"
        )
        backends.add(high.backend)
        collapse_ok = exact_high < 0.5
        table.add_row(
            delta=delta, n=n, p_star=p_star, side="above", p=p_high, m=m_low,
            exact_success=exact_high, fastsim_mc=high.estimate,
            mc_trials=high.trials, target=target,
            almost_safe=exact_high >= target,
        )
        passed = passed and feasible_ok and collapse_ok
        passed = passed and low.estimate >= target - 0.05
        passed = passed and high.estimate < 0.6
    notes = [
        "topology: star with the source at a leaf — the star root (degree "
        "delta) is the binding receiver of the threshold condition",
        "adversary model: faulty parent flips its bit (others silent), any "
        "other faulty closed-neighbourhood member destroys the reception — "
        "good = (1-p)^(delta+1), bad = p per step",
        "p*(delta) solved by Brent root finding on p - (1-p)^(delta+1)",
        f"trials allocated sequentially: each cell's budget doubles until "
        f"its empirical-Bernstein width reaches {width:g} (cap {cap}); "
        f"mc_trials is the spend — decisive cells far from the threshold "
        f"stop early",
        f"fastsim_mc backends: {', '.join(sorted(backends))} — the engine-"
        f"exact tree sampler (shared source-phase faults correlate the "
        f"leaves), vs the independent per-node product in exact_success",
    ]
    return ExperimentReport(
        experiment_id="E05",
        title="Radio malicious threshold p*(delta)",
        paper_claim="Theorem 2.4: feasible iff p < (1-p)^(delta+1) in the "
                    "radio model",
        table=table,
        notes=notes,
        passed=passed,
    )
