"""E08 — Lemma 3.1 (Diks & Pelc [13]): line flooding in O(L) rounds.

Claim: on a line of length ``L`` with omission failures, simultaneous
flooding for ``O(L)`` rounds succeeds with probability at least
``1 - e^{-cL}`` for any constant ``c`` (a larger round constant buys a
larger ``c``).

The informed front is exactly a ``Bin(R, 1-p)`` walk, so the failure
probability is an exact binomial tail.  The experiment runs the budget
``R = K·L`` for two round constants, verifies ``-ln(failure)`` grows
linearly in ``L`` (the exponential tail) and that the per-``L`` slope
increases with ``K``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fastsim.closed_forms import line_flooding_success_probability
from repro.experiments.registry import ExperimentConfig, ExperimentReport, register
from repro.experiments.tables import Table


@register(
    "E08",
    "Line flooding exponential tail (Lemma 3.1)",
    "Lemma 3.1 — broadcast on a length-L line in O(L) rounds with "
    "probability 1 - e^{-cL}",
)
def run_e08(config: ExperimentConfig) -> ExperimentReport:
    p = 0.3
    lengths = [8, 16, 32, 64] if config.quick else [8, 16, 32, 64, 128, 256, 512]
    constants = [1.8, 2.5]
    table = Table([
        "L", "round_constant", "rounds", "failure", "log_failure_per_L",
    ])
    slopes = {}
    for constant in constants:
        log_failures = []
        for length in lengths:
            rounds = math.ceil(constant * length)
            success = line_flooding_success_probability(length, rounds, p)
            failure = max(1.0 - success, 1e-300)
            table.add_row(
                L=length, round_constant=constant, rounds=rounds,
                failure=failure,
                log_failure_per_L=-math.log(failure) / length,
            )
            log_failures.append(-math.log(failure))
        slope, _ = np.polyfit(lengths, log_failures, 1)
        slopes[constant] = float(slope)
    # Exponential tail: -ln(failure) grows linearly (positive slope),
    # and a larger round constant buys a strictly larger rate c.
    linear_ok = all(slope > 0 for slope in slopes.values())
    ordering_ok = slopes[constants[1]] > slopes[constants[0]]
    passed = linear_ok and ordering_ok
    notes = [
        f"p = {p}; failure computed exactly as P[Bin(R, 1-p) < L]",
        "fitted failure rates c (per unit L): "
        + ", ".join(f"K={k}: c={v:.4f}" for k, v in slopes.items()),
        "larger round constants yield larger exponential rates — 'with "
        "probability 1 - e^{-cL} for any constant c'",
    ]
    return ExperimentReport(
        experiment_id="E08",
        title="Line flooding exponential tail (Lemma 3.1)",
        paper_claim="Lemma 3.1: O(L) rounds suffice on a length-L line with "
                    "probability 1 - e^{-cL}, any constant c",
        table=table,
        notes=notes,
        passed=passed,
    )
