"""E08 — Lemma 3.1 (Diks & Pelc [13]): line flooding in O(L) rounds.

Claim: on a line of length ``L`` with omission failures, simultaneous
flooding for ``O(L)`` rounds succeeds with probability at least
``1 - e^{-cL}`` for any constant ``c`` (a larger round constant buys a
larger ``c``).

The informed front is exactly a ``Bin(R, 1-p)`` walk, so the failure
probability is an exact binomial tail.  The experiment runs the budget
``R = K·L`` for two round constants, verifies ``-ln(failure)`` grows
linearly in ``L`` (the exponential tail) and that the per-``L`` slope
increases with ``K``.  On the short lines the closed form is
additionally cross-checked by Monte-Carlo through the
:class:`~repro.montecarlo.TrialRunner`, which dispatches flooding +
omission to the vectorised ``flooding`` fastsim sampler.
"""

from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro.analysis.estimation import hoeffding_margin
from repro.core.flooding import FastFlooding
from repro.failures.base import OmissionFailures
from repro.fastsim.closed_forms import line_flooding_success_probability
from repro.graphs.builders import line
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream

#: Lines short enough (and failure masses large enough) for a
#: Monte-Carlo cross-check of the closed form to be informative.
_MC_LENGTHS = (8, 16, 32)


def _describe_runner() -> TrialRunner:
    return TrialRunner(
        partial(FastFlooding, line(8), 0, 1, None, 15),
        OmissionFailures(0.3),
    )


@register(
    "E08",
    "Line flooding exponential tail (Lemma 3.1)",
    "Lemma 3.1 — broadcast on a length-L line in O(L) rounds with "
    "probability 1 - e^{-cL}",
    scenarios=[ScenarioSpec(
        label="line flooding + omission",
        build=_describe_runner,
        topology="lines L=8..512",
        trials="4000 / 20000 on the MC cross-check lengths",
    )],
)
def run_e08(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E08")
    p = 0.3
    lengths = [8, 16, 32, 64] if config.quick else [8, 16, 32, 64, 128, 256, 512]
    constants = [1.8, 2.5]
    trials = config.scaled_trials(4000 if config.quick else 20000)
    # Two-sided 99.9% Chernoff-Hoeffding margin for the MC cross-check.
    mc_margin = hoeffding_margin(trials, confidence=0.999)
    table = Table([
        "L", "round_constant", "rounds", "failure", "log_failure_per_L",
        "mc_success", "mc_agrees",
    ])
    slopes = {}
    passed = True
    for constant in constants:
        log_failures = []
        for length in lengths:
            rounds = math.ceil(constant * length)
            success = line_flooding_success_probability(length, rounds, p)
            failure = max(1.0 - success, 1e-300)
            mc_success = ""
            mc_agrees = ""
            if length in _MC_LENGTHS:
                runner = TrialRunner(
                    partial(FastFlooding, line(length), 0, 1, None, rounds),
                    OmissionFailures(p),
                    workers=config.workers,
                    executor=config.executor,
                )
                outcome = runner.run(
                    trials, stream.child("mc", constant, length)
                )
                mc_success = outcome.estimate
                mc_agrees = abs(outcome.estimate - success) <= mc_margin
                passed = passed and mc_agrees
            table.add_row(
                L=length, round_constant=constant, rounds=rounds,
                failure=failure,
                log_failure_per_L=-math.log(failure) / length,
                mc_success=mc_success, mc_agrees=mc_agrees,
            )
            log_failures.append(-math.log(failure))
        slope, _ = np.polyfit(lengths, log_failures, 1)
        slopes[constant] = float(slope)
    # Exponential tail: -ln(failure) grows linearly (positive slope),
    # and a larger round constant buys a strictly larger rate c.
    linear_ok = all(slope > 0 for slope in slopes.values())
    ordering_ok = slopes[constants[1]] > slopes[constants[0]]
    passed = passed and linear_ok and ordering_ok
    notes = [
        f"p = {p}; failure computed exactly as P[Bin(R, 1-p) < L]",
        "fitted failure rates c (per unit L): "
        + ", ".join(f"K={k}: c={v:.4f}" for k, v in slopes.items()),
        "larger round constants yield larger exponential rates — 'with "
        "probability 1 - e^{-cL} for any constant c'",
        f"mc_success: dispatched TrialRunner estimate over {trials} trials "
        f"on the short lines; agrees within the 99.9% Hoeffding margin "
        f"{mc_margin:.4f}",
    ]
    return ExperimentReport(
        experiment_id="E08",
        title="Line flooding exponential tail (Lemma 3.1)",
        paper_claim="Lemma 3.1: O(L) rounds suffice on a length-L line with "
                    "probability 1 - e^{-cL}, any constant c",
        table=table,
        notes=notes,
        passed=passed,
    )
