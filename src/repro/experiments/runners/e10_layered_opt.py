"""E10 — Lemma 3.3: fault-free optimum on the layered graph is m + 1.

Claim: in the radio network ``G(m)`` every fault-free broadcast needs
at least ``m + 1`` steps, and ``m + 1`` are achievable.

The constructive half is the explicit schedule (source, then each bit
node alone).  The lower bound is verified *exhaustively*: coverage of
layer 3 by layer-2 transmitter sets is order-independent, so searching
multisets of subsets settles the minimum for ``m <= 5``; the generic
state-space search cross-checks the full optimum for small ``m``.  The
greedy heuristic is reported as the upper bound used by larger
experiments.
"""

from __future__ import annotations

from repro.graphs.layered import layered_graph
from repro.radio.closed_form import layered_schedule
from repro.radio.exact import layered_min_layer2_steps, optimal_broadcast_time
from repro.radio.greedy import greedy_schedule
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table


@register(
    "E10",
    "Layered graph fault-free optimum (Lemma 3.3)",
    "Lemma 3.3 — opt(G(m)) = m + 1 in the radio model",
    scenarios=[ScenarioSpec(
        label="exhaustive schedule search (no Monte-Carlo)",
        build=None,
        topology="layered graphs G(m), m=2..5",
        trials="—",
    )],
)
def run_e10(config: ExperimentConfig) -> ExperimentReport:
    ms = [2, 3] if config.quick else [2, 3, 4, 5]
    table = Table([
        "m", "n", "constructive_len", "exhaustive_layer2_min", "exact_opt",
        "greedy_len", "matches_m_plus_1",
    ])
    passed = True
    for m in ms:
        graph = layered_graph(m)
        n = graph.topology.order
        constructive = layered_schedule(graph).length
        exhaustive = layered_min_layer2_steps(graph)
        exact = ""
        if n <= 12:  # generic state-space search feasible
            exact = optimal_broadcast_time(graph.topology, graph.source)
        greedy_len = greedy_schedule(graph.topology, graph.source).length
        matches = constructive == m + 1 and exhaustive == m
        if exact != "":
            matches = matches and exact == m + 1
        passed = passed and matches and greedy_len >= m + 1
        table.add_row(
            m=m, n=n, constructive_len=constructive,
            exhaustive_layer2_min=exhaustive, exact_opt=exact,
            greedy_len=greedy_len, matches_m_plus_1=matches,
        )
    notes = [
        "constructive_len: the Lemma 3.3 schedule (source step, then b_i "
        "alone at step i)",
        "exhaustive_layer2_min: smallest number of layer-2 steps covering "
        "all of layer 3, by exhaustive multiset search — always m",
        "exact_opt: generic informed-set BFS (small m only); greedy_len "
        "upper-bounds opt and may exceed it",
    ]
    return ExperimentReport(
        experiment_id="E10",
        title="Layered graph fault-free optimum (Lemma 3.3)",
        paper_claim="Lemma 3.3: fault-free radio broadcast on G(m) takes "
                    "exactly m + 1 steps",
        table=table,
        notes=notes,
        passed=passed,
    )
