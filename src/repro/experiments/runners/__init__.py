"""Experiment runners — importing this package registers all of them."""

from repro.experiments.runners import (  # noqa: F401  (import for effect)
    e01_omission,
    e03_malicious_mp,
    e04_equalizing_mp,
    e05_radio_threshold,
    e06_equalizing_star,
    e07_flooding_time,
    e08_line_flooding,
    e09_kucera,
    e10_layered_opt,
    e11_layered_lb,
    e12_radio_repeat,
    e13_hello,
    e14_variants,
    e15_ablations,
)
