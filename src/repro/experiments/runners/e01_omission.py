"""E01/E02 — Theorem 2.1: omission feasibility in both models.

Claim: with node-omission transmission failures, Algorithm
Simple-Omission is almost-safe for *every* ``p < 1`` in both the
message-passing and the radio model.

The success probability has an exact closed form — one independent
``1 - p^m`` event per internal tree node — swept over ``n`` and ``p``;
the reference engine validates the closed form on sampled cells in
both models (the schedule activates one transmitter per step, so the
two models execute identically).
"""

from __future__ import annotations

from functools import partial

from repro.core.parameters import omission_phase_length
from repro.core.simple_omission import SimpleOmission
from repro.engine.protocol import MESSAGE_PASSING, RADIO
from repro.failures.base import OmissionFailures
from repro.fastsim.closed_forms import simple_omission_success_probability
from repro.graphs.bfs import bfs_tree
from repro.graphs.builders import binary_tree
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


#: Default sequential stopping width of the engine-validation cells: an
#: empirical-Bernstein interval this narrow pins the engine estimate to
#: the closed form well inside the almost-safe margin, and on the
#: near-decisive cells the variance term vanishes, so most cells stop
#: at the first extension instead of spending the full cap.
ENGINE_CELL_WIDTH = 0.25


def _engine_success_rate(topology, source, p, m, model, config, stream):
    """Adaptive Monte-Carlo success rate of the reference engine.

    ``use_fastsim=False`` / ``use_batchsim=False``: this column exists
    to validate the closed form against the *scalar engine*, so
    dispatching to either vectorised tier would defeat its purpose.
    The factory is a picklable partial so the batch can shard across
    processes.  Returns ``(estimate, trials actually run)`` — the cell
    runs sequentially (``run_until``) against
    :data:`ENGINE_CELL_WIDTH`, with the historical fixed budget as the
    ``max_trials`` cap.
    """
    runner = TrialRunner(
        partial(SimpleOmission, topology, source, 1, model, m),
        OmissionFailures(p),
        use_fastsim=False,
        use_batchsim=False,
        workers=config.workers,
        executor=config.executor,
    )
    outcome = runner.run_until(
        config.adaptive_width(ENGINE_CELL_WIDTH),
        config.adaptive_cap(60 if config.quick else 200),
        stream, bound="bernstein", initial_trials=64,
    )
    return outcome.estimate, outcome.trials


def _run(config: ExperimentConfig, model: str, experiment_id: str) -> ExperimentReport:
    stream = RngStream(config.seed).child(experiment_id)
    depths = [3, 5] if config.quick else [3, 5, 7]
    probabilities = [0.1, 0.5, 0.9] if config.quick else [0.1, 0.3, 0.5, 0.7, 0.9, 0.95]
    table = Table([
        "n", "p", "m", "rounds", "exact_success", "target", "almost_safe",
        "engine_mc", "engine_trials",
    ])
    passed = True
    for depth in depths:
        topology = binary_tree(depth)
        tree = bfs_tree(topology, 0)
        n = topology.order
        target = 1.0 - 1.0 / n
        for p in probabilities:
            m = omission_phase_length(n, p)
            exact = simple_omission_success_probability(tree, m, p)
            almost_safe = exact >= target
            passed = passed and almost_safe
            # Engine validation on the smallest grid cell per depth.
            engine_mc = ""
            engine_trials = ""
            if p == probabilities[0]:
                engine_mc, engine_trials = _engine_success_rate(
                    topology, 0, p, m, model, config,
                    stream.child("engine", depth, p),
                )
            table.add_row(
                n=n, p=p, m=m, rounds=n * m, exact_success=exact,
                target=target, almost_safe=almost_safe, engine_mc=engine_mc,
                engine_trials=engine_trials,
            )
    notes = [
        "exact_success = (1 - p^m)^#internal — one independent event per "
        "internal tree node",
        f"m chosen as the smallest with p^m <= 1/n^2 (union-bound budget); "
        f"model = {model}",
        f"engine cells allocate trials sequentially: budget doubles until "
        f"the empirical-Bernstein width reaches "
        f"{config.adaptive_width(ENGINE_CELL_WIDTH):g} (cap "
        f"{config.adaptive_cap(60 if config.quick else 200)}); "
        f"engine_trials is the spend",
    ]
    return ExperimentReport(
        experiment_id=experiment_id,
        title=f"Simple-Omission feasibility ({model})",
        paper_claim="Theorem 2.1: almost-safe broadcasting is feasible for "
                    "any p < 1 under node-omission failures",
        table=table,
        notes=notes,
        passed=passed,
    )


def _describe_runner(model: str) -> TrialRunner:
    """The representative scenario of the smallest sweep cell."""
    topology = binary_tree(3)
    m = omission_phase_length(topology.order, 0.1)
    return TrialRunner(
        partial(SimpleOmission, topology, 0, 1, model, m),
        OmissionFailures(0.1),
    )


@register(
    "E01",
    "Simple-Omission feasibility (message passing)",
    "Theorem 2.1 — feasible for any p < 1 (message passing)",
    scenarios=[ScenarioSpec(
        label="simple-omission mp",
        build=lambda: _describe_runner(MESSAGE_PASSING),
        topology="binary trees d=3..7",
        trials="≤ 60 / 200 per engine cell",
        sequential="width ≤ 0.25 (bernstein)",
        note="closed form carries the sweep; one deliberately pinned "
             "scalar-engine validation column per depth",
    )],
)
def run_e01(config: ExperimentConfig) -> ExperimentReport:
    return _run(config, MESSAGE_PASSING, "E01")


@register(
    "E02",
    "Simple-Omission feasibility (radio)",
    "Theorem 2.1 — feasible for any p < 1 (radio)",
    scenarios=[ScenarioSpec(
        label="simple-omission radio",
        build=lambda: _describe_runner(RADIO),
        topology="binary trees d=3..7",
        trials="≤ 60 / 200 per engine cell",
        sequential="width ≤ 0.25 (bernstein)",
        note="closed form carries the sweep; one deliberately pinned "
             "scalar-engine validation column per depth",
    )],
)
def run_e02(config: ExperimentConfig) -> ExperimentReport:
    return _run(config, RADIO, "E02")
