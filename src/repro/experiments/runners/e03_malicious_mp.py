"""E03 — Theorem 2.2: the p < 1/2 threshold in message passing.

Claim: with malicious transmission failures, Simple-Malicious is
almost-safe in the message-passing model whenever ``p < 1/2``; at and
beyond 1/2 no algorithm is (E04 covers the matching impossibility).

Against the complement adversary (every faulty transmission flips the
bit — the worst history-oblivious attack on a voting relay), all
children of a node share their parent's phase faults and decide
identically, so the exact success probability is
``(1 - tail(m, p))^{#internal}``; the vectorised sampler and the
reference engine cross-check it.  The infeasible side is shown by
fixing the largest feasible ``m`` and pushing ``p`` past 1/2: success
collapses far below the almost-safe bar.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.chernoff import majority_error_probability
from repro.core.parameters import mp_malicious_phase_length
from repro.core.simple_malicious import SimpleMalicious
from repro.engine.protocol import MESSAGE_PASSING
from repro.failures.adversaries import ComplementAdversary
from repro.failures.malicious import MaliciousFailures
from repro.fastsim.closed_forms import internal_node_count
from repro.graphs.bfs import bfs_tree
from repro.graphs.builders import binary_tree
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


def _runner(topology, m: int, p: float, use_fastsim: bool = True,
            workers: int = 1, executor=None) -> TrialRunner:
    """Trial runner for Simple-Malicious + complement adversary (MP).

    With dispatch enabled this lands on the ``simple-malicious-mp``
    fastsim sampler; with it disabled it batches *scalar*
    reference-engine executions (the spot-check column, shardable
    across processes) — the batchsim tier is switched off alongside so
    the column keeps validating the engine itself.
    """
    return TrialRunner(
        partial(SimpleMalicious, topology, 0, 1, MESSAGE_PASSING, m),
        MaliciousFailures(p, ComplementAdversary()),
        use_fastsim=use_fastsim,
        use_batchsim=use_fastsim,
        workers=workers,
        executor=executor,
    )


@register(
    "E03",
    "Simple-Malicious threshold (message passing)",
    "Theorem 2.2 — almost-safe iff p < 1/2 (message passing)",
    scenarios=[ScenarioSpec(
        label="simple-malicious mp + complement",
        build=lambda: _runner(
            binary_tree(4), mp_malicious_phase_length(31, 0.3), 0.3
        ),
        topology="binary tree d=4/5",
        trials="2000 / 6000",
        note="plus a pinned scalar-engine spot-check column (40 / 120 "
             "trials)",
    )],
)
def run_e03(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E03")
    depth = 4 if config.quick else 5
    topology = binary_tree(depth)
    tree = bfs_tree(topology, 0)
    n = topology.order
    internals = internal_node_count(tree)
    target = 1.0 - 1.0 / n
    trials = config.scaled_trials(2000 if config.quick else 6000)
    feasible_ps = [0.1, 0.3, 0.45] if config.quick else [0.05, 0.1, 0.2, 0.3, 0.4, 0.45]
    table = Table([
        "p", "feasible", "m", "exact_success", "fastsim_mc", "target",
        "almost_safe",
    ])
    passed = True
    last_feasible_m = None
    for p in feasible_ps:
        m = mp_malicious_phase_length(n, p)
        last_feasible_m = m
        exact = (1.0 - majority_error_probability(m, p)) ** internals
        mc = _runner(topology, m, p).run(trials, stream.child("mc", p)).estimate
        almost_safe = exact >= target
        passed = passed and almost_safe and mc >= 1.0 - 2.5 / n
        table.add_row(
            p=p, feasible=True, m=m, exact_success=exact, fastsim_mc=mc,
            target=target, almost_safe=almost_safe,
        )
    for p in ([0.55] if config.quick else [0.5, 0.55, 0.65]):
        m = last_feasible_m
        exact = (1.0 - majority_error_probability(m, p)) ** internals
        mc = _runner(topology, m, p).run(
            trials, stream.child("mc-bad", p)
        ).estimate
        collapses = exact < 0.5 and mc < 0.5
        passed = passed and collapses
        table.add_row(
            p=p, feasible=False, m=m, exact_success=exact, fastsim_mc=mc,
            target=target, almost_safe=exact >= target,
        )
    # Reference-engine spot check against the exact chain value
    # (dispatch disabled so the engine itself is exercised).
    engine_p = feasible_ps[1]
    engine_m = mp_malicious_phase_length(n, engine_p)
    engine_trials = config.scaled_trials(40 if config.quick else 120)
    engine_rate = _runner(topology, engine_m, engine_p, use_fastsim=False,
                          workers=config.workers,
                          executor=config.executor).run(
        engine_trials, stream.child("engine")
    ).estimate
    notes = [
        f"n = {n} (complete binary tree of depth {depth}); adversary = "
        f"complement (flip every faulty transmission)",
        f"engine spot check at p={engine_p}: success {engine_rate:.3f} "
        f"(exact {(1.0 - majority_error_probability(engine_m, engine_p)) ** internals:.3f})",
        "infeasible rows reuse the largest feasible m: no repetition count "
        "helps once p >= 1/2 (majority tail tends to 1/2 from above)",
    ]
    return ExperimentReport(
        experiment_id="E03",
        title="Simple-Malicious threshold (message passing)",
        paper_claim="Theorem 2.2: almost-safe iff p < 1/2 in message passing",
        table=table,
        notes=notes,
        passed=passed,
    )
