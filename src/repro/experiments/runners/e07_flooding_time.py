"""E07 — Theorem 3.1: flooding time Θ(D + log n), message passing.

Claims: (a) fast flooding completes almost-safely within
``O(D + log n)`` rounds; (b) no algorithm beats ``Ω(D + log n)`` —
``D`` is needed even fault-free, and a source transmitting fewer than
``log n / log(1/p)`` times fails with probability above ``1/n``.

The experiment sweeps lines, grids and binary trees, reports the exact
safe round count, the simulated completion-time quantile, and fits the
``a·D + b·log n + c`` shape across the sweep.  The lower-bound rows
evaluate the closed form ``p^R`` for a sub-logarithmic budget ``R``.
"""

from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro.analysis.fitting import fit_d_plus_log_n
from repro.core.flooding import FastFlooding, flooding_rounds
from repro.failures.base import OmissionFailures
from repro.fastsim.tree_chain import sample_flooding_times
from repro.graphs.bfs import bfs_tree
from repro.graphs.builders import binary_tree, grid, line
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


def _describe_runner() -> TrialRunner:
    topology = line(8)
    rounds = flooding_rounds(topology.order, 7, 0.3)
    return TrialRunner(
        partial(FastFlooding, topology, 0, 1, None, rounds),
        OmissionFailures(0.3),
    )


@register(
    "E07",
    "Flooding time Theta(D + log n)",
    "Theorem 3.1 — optimal almost-safe time Theta(D + log n) for omission "
    "failures (message passing)",
    scenarios=[ScenarioSpec(
        label="fast flooding + omission",
        build=_describe_runner,
        topology="lines, grids, binary trees (n up to 128)",
        trials="1500 / 4000",
    )],
)
def run_e07(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E07")
    p = 0.3
    trials = config.scaled_trials(1500 if config.quick else 4000)
    graphs = [line(8), line(32), grid(4, 8), binary_tree(5)]
    if not config.quick:
        graphs += [line(128), grid(8, 16), binary_tree(8), grid(3, 40)]
    table = Table([
        "graph", "n", "D", "safe_rounds", "completion_q", "success_at_safe",
        "almost_safe",
    ])
    radii, orders, safe_round_values = [], [], []
    passed = True
    for topology in graphs:
        tree = bfs_tree(topology, 0)
        n = topology.order
        radius = tree.height
        safe_rounds = flooding_rounds(n, radius, p)
        # Success at the safe budget via the dispatched TrialRunner
        # (lands on the `flooding` fastsim sampler); the completion
        # quantile needs the raw times, drawn from a fresh stream with
        # the same derivation so both statistics describe the identical
        # sampled executions.
        runner = TrialRunner(
            partial(FastFlooding, topology, 0, 1, None, safe_rounds),
            OmissionFailures(p),
            workers=config.workers,
            executor=config.executor,
        )
        success = runner.run(
            trials, stream.child("times", topology.name)
        ).estimate
        times = sample_flooding_times(
            tree, p, trials, stream.child("times", topology.name)
        )
        quantile = float(np.quantile(times, 1.0 - 1.0 / n))
        almost_safe = success >= 1.0 - 2.5 / n
        passed = passed and almost_safe and quantile <= safe_rounds
        table.add_row(
            graph=topology.name, n=n, D=radius, safe_rounds=safe_rounds,
            completion_q=quantile, success_at_safe=success,
            almost_safe=almost_safe,
        )
        radii.append(radius)
        orders.append(n)
        safe_round_values.append(safe_rounds)
    fit = fit_d_plus_log_n(radii, orders, safe_round_values)
    shape_ok = fit.score >= 0.97
    passed = passed and shape_ok
    # Lower bound: a source transmitting fewer than log n / log(1/p)
    # times leaves its neighbour uninformed with probability > 1/n.
    lb_notes = []
    for n in (64, 4096):
        needed = math.log(n) / math.log(1.0 / p)
        budget = max(1, math.floor(needed) - 1)
        failure = p ** budget
        lb_notes.append(
            f"n={n}: {budget} source transmissions (< {needed:.1f}) fail "
            f"with prob {failure:.4f} > 1/n = {1.0 / n:.4f}"
        )
        passed = passed and failure > 1.0 / n
    notes = [
        f"fit of safe_rounds: {fit.describe()} (shape_ok={shape_ok})",
        "completion_q: simulated (1 - 1/n)-quantile of the flooding "
        "completion time — always within the exact safe round budget",
    ] + lb_notes
    return ExperimentReport(
        experiment_id="E07",
        title="Flooding time Theta(D + log n)",
        paper_claim="Theorem 3.1: almost-safe broadcast in O(D + log n), "
                    "and this is optimal",
        table=table,
        notes=notes,
        passed=passed,
    )
