"""E09 — Theorem 3.2 / Lemma 3.2: the Kučera composition algorithm.

Claims: the [CO1]/[CO2] composition calculus yields a line algorithm of
time ``O(L)`` and failure ``e^{-Ω(L^c)}``; lifted to a BFS tree it
broadcasts almost-safely in ``O(D + log^α n)`` against limited-
malicious (here: flip) failures whenever ``p < 1/2``.

The experiment (a) verifies the planner's exact guarantees scale
linearly in the line length with super-polynomially shrinking failure,
and (b) runs the compiled algorithm end to end under the flip
adversary on lines and trees, batched through the
:class:`~repro.montecarlo.TrialRunner` — which dispatches to the
batchsim tier's :class:`~repro.batchsim.programs.PlanLift` (the flip
adversary certifies the FLIP restriction on bit alphabets).  Per-trial
streams match the historical scalar-engine ``estimate_success`` loop
bit for bit, so the pre-migration goldens still pin the results.
"""

from __future__ import annotations

from functools import partial

from repro.core.kucera import (
    KuceraBroadcast,
    build_plan,
    compile_plan,
    describe_plan,
    guarantee,
)
from repro.failures.adversaries import RandomFlipAdversary
from repro.failures.malicious import MaliciousFailures, Restriction
from repro.montecarlo import TrialRunner
from repro.graphs.builders import binary_tree, line
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


def _describe_runner() -> TrialRunner:
    return TrialRunner(
        partial(KuceraBroadcast, line(6), 0, 1, p=0.25),
        MaliciousFailures(0.25, RandomFlipAdversary(), Restriction.FLIP),
    )


@register(
    "E09",
    "Kucera composition algorithm (Theorem 3.2)",
    "Theorem 3.2 — almost-safe in O(D + log^alpha n) for limited-malicious "
    "failures, p < 1/2",
    scenarios=[ScenarioSpec(
        label="kucera plan + flip adversary",
        build=_describe_runner,
        topology="lines L=6/12, binary trees d=3/4",
        trials="12 / 40",
    )],
)
def run_e09(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E09")
    p = 0.25
    # (a) plan-guarantee scaling: exact algebra only, no simulation.
    plan_lengths = [4, 16, 64] if config.quick else [4, 16, 64, 256, 1024]
    scaling = Table(["L", "plan", "time", "time_per_L", "delay", "failure_bound"])
    per_length_costs = []
    for length in plan_lengths:
        plan = build_plan(length, p, failure_target=1e-6)
        g = guarantee(plan, p)
        scaling.add_row(
            L=length, plan=describe_plan(plan), time=g.time,
            time_per_L=g.time / g.length, delay=g.delay,
            failure_bound=g.failure,
        )
        per_length_costs.append(g.time / g.length)
    # O(L) time: the per-unit cost must stay bounded as L grows 256x.
    linear_time_ok = max(per_length_costs) <= 3.0 * per_length_costs[0]
    # (b) end-to-end engine runs under the flip adversary.
    graphs = [line(6), binary_tree(3)] if config.quick else [
        line(6), line(12), binary_tree(3), binary_tree(4),
    ]
    trials = config.scaled_trials(12 if config.quick else 40)
    runs = Table(["graph", "n", "D", "plan", "rounds", "q_bound", "mc_success"])
    passed = linear_time_ok
    for topology in graphs:
        algorithm = KuceraBroadcast(topology, 0, 1, p=p)
        g = guarantee(algorithm.plan, p)
        runner = TrialRunner(
            partial(KuceraBroadcast, topology, 0, 1, p=p,
                    plan=algorithm.plan),
            MaliciousFailures(p, RandomFlipAdversary(), Restriction.FLIP),
            workers=config.workers,
            executor=config.executor,
        )
        outcome = runner.run(trials, stream.child("mc", topology.name))
        runs.add_row(
            graph=topology.name, n=topology.order,
            D=max(algorithm.tree.height, 1),
            plan=describe_plan(algorithm.plan), rounds=algorithm.rounds,
            q_bound=g.failure, mc_success=outcome.estimate,
        )
        passed = passed and outcome.estimate == 1.0
    # Merge both tables for the report (scaling rows then run rows).
    combined = Table([
        "section", "graph", "n", "D", "L", "plan", "time", "time_per_L",
        "delay", "failure_bound", "rounds", "mc_success",
    ])
    for row in scaling.rows:
        combined.add_row(section="plan-scaling", **row)
    for row in runs.rows:
        combined.add_row(
            section="engine-run", graph=row["graph"], n=row["n"], D=row["D"],
            plan=row["plan"], rounds=row["rounds"],
            failure_bound=row["q_bound"], mc_success=row["mc_success"],
        )
    notes = [
        f"p = {p}; planner constants rho=4, kappa=3 "
        f"(alpha = log(rho)/log(kappa/2) ≈ 3.42; larger kappa pushes alpha "
        f"toward 1)",
        f"plan time per unit length stays bounded "
        f"({per_length_costs[0]:.1f} -> {per_length_costs[-1]:.1f}) while "
        f"the failure bound keeps shrinking — the O(L), e^(-L^c) tradeoff "
        f"of Lemma 3.2",
        "engine runs face the flip adversary under the FLIP restriction "
        "(Kucera's model); every run must deliver the bit to all nodes",
    ]
    return ExperimentReport(
        experiment_id="E09",
        title="Kucera composition algorithm (Theorem 3.2)",
        paper_claim="Theorem 3.2: almost-safe broadcast in O(D + log^alpha n) "
                    "time for limited-malicious failures with p < 1/2",
        table=combined,
        notes=notes,
        passed=passed,
    )
