"""E15 — ablations of the reproduction's design choices (DESIGN.md §6).

Not a paper theorem: these rows quantify the choices the implementation
makes where the paper only says "for a suitable constant".

* **Repetition constant** — the exact smallest phase length ``m`` vs
  the Chernoff-asymptotic prescription ``c·ln n`` for Simple-Omission
  and Simple-Malicious: how much the exact binomial calculators save.
* **Adoption rule** — Omission-Radio's any-payload rule vs
  Malicious-Radio's majority rule under *omission* failures: majority
  costs extra rounds for no benefit when receipts are trustworthy.
* **Kučera plan shape** — the [CO1]/[CO2] planner vs the naive
  "repeat every edge ⌈c log n⌉ times" schedule: the composition
  calculus turns Θ(L·log n) time into O(L) at equal failure budgets.

The exact-constant rows are additionally validated end to end: a
dispatched :class:`~repro.montecarlo.TrialRunner` batch runs
Simple-Omission at the exact phase length on a concrete tree and the
Monte-Carlo estimate must match the closed form the calculators are
trusted to hit.
"""

from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro.analysis.chernoff import (
    majority_error_probability,
    repetitions_for_all_silent,
    repetitions_for_majority,
)
from repro.analysis.estimation import hoeffding_margin
from repro.core.kucera import Edge, Repeat, Serial, build_plan, guarantee
from repro.core.parameters import (
    omission_phase_length,
    theoretical_omission_constant,
)
from repro.core.simple_omission import SimpleOmission
from repro.engine.protocol import MESSAGE_PASSING
from repro.failures.base import OmissionFailures
from repro.fastsim.closed_forms import simple_omission_success_probability
from repro.graphs.bfs import bfs_tree
from repro.graphs.builders import binary_tree
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


#: Default sequential stopping widths (quick / full) of the three
#: Monte-Carlo validation legs.  The omission-mc check sits near
#: certainty, so the empirical-Bernstein bound stops it an order of
#: magnitude under its cap; the heterogeneous legs sit mid-interval
#: and spend most of theirs.
MC_WIDTH_QUICK = 0.05
MC_WIDTH_FULL = 0.025


def _describe_exact_m() -> TrialRunner:
    topology = binary_tree(5)
    m = omission_phase_length(topology.order, 0.5)
    return TrialRunner(
        partial(SimpleOmission, topology, 0, 1, MESSAGE_PASSING, m),
        OmissionFailures(0.5),
    )


def _describe_hetero() -> TrialRunner:
    topology = binary_tree(5)
    rates = np.round(np.linspace(0.15, 0.75, topology.order), 4)
    return TrialRunner(
        partial(SimpleOmission, topology, 0, 1, MESSAGE_PASSING, 4),
        OmissionFailures(p_v=rates),
        use_fastsim=False,
    )


@register(
    "E15",
    "Design-choice ablations",
    "DESIGN.md §6 — exact constants vs asymptotic prescriptions, adoption "
    "rules, plan shapes",
    scenarios=[
        ScenarioSpec(
            label="exact-m omission check",
            build=_describe_exact_m,
            topology="binary tree d=5",
            trials="≤ 20000 / 80000",
            sequential="width ≤ 0.05 / 0.025 (bernstein)",
        ),
        ScenarioSpec(
            label="heterogeneous p_v ramp (batchsim leg)",
            build=_describe_hetero,
            topology="binary tree d=5",
            trials="≤ 10000 / 40000",
            sequential="width ≤ 0.05 / 0.025 (bernstein)",
            note="run twice: the p_v fastsim sampler and, with fastsim "
                 "off, the batchsim tier — both vs ∏(1-p_v^m)",
        ),
    ],
)
def run_e15(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E15")
    width = config.adaptive_width(
        MC_WIDTH_QUICK if config.quick else MC_WIDTH_FULL
    )
    table = Table([
        "ablation", "setting", "n_or_L", "p", "exact", "naive",
        "saving",
    ])
    passed = True
    # 1. Repetition constants: exact binomial vs asymptotic c*ln(n).
    for n in ([64, 1024] if config.quick else [64, 1024, 65536]):
        p = 0.5
        exact_m = omission_phase_length(n, p)
        asymptotic_m = math.ceil(theoretical_omission_constant(p) * math.log(n))
        table.add_row(
            ablation="omission m", setting="exact vs c*ln n", n_or_L=n, p=p,
            exact=exact_m, naive=asymptotic_m,
            saving=f"{asymptotic_m - exact_m} steps/phase",
        )
        passed = passed and exact_m <= asymptotic_m + 1
    # 1b. End-to-end check of the exact calculator: Monte-Carlo success
    # at the exact m on a concrete tree matches the closed form (the
    # TrialRunner dispatches to the vectorised omission sampler).
    mc_topology = binary_tree(5)
    mc_p = 0.5
    mc_m = omission_phase_length(mc_topology.order, mc_p)
    mc_cap = config.adaptive_cap(20000 if config.quick else 80000)
    runner = TrialRunner(
        partial(SimpleOmission, mc_topology, 0, 1, MESSAGE_PASSING, mc_m),
        OmissionFailures(mc_p),
        workers=config.workers,
        executor=config.executor,
    )
    outcome = runner.run_until(
        width, mc_cap, stream.child("omission-mc"), bound="bernstein"
    )
    mc_margin = hoeffding_margin(outcome.trials, confidence=0.999)
    closed_form = simple_omission_success_probability(
        bfs_tree(mc_topology, 0), mc_m, mc_p
    )
    mc_ok = (
        abs(outcome.estimate - closed_form) <= mc_margin
        and outcome.backend == "fastsim:simple-omission"
    )
    passed = passed and mc_ok
    table.add_row(
        ablation="omission m (mc)", setting=f"TrialRunner [{outcome.backend}]",
        n_or_L=mc_topology.order, p=mc_p, exact=closed_form,
        naive=outcome.estimate,
        saving=f"|diff| {abs(outcome.estimate - closed_form):.4f} "
               f"<= {mc_margin:.4f}",
    )
    # 1c. Heterogeneous per-node rates (PAPERS.md: Censor-Hillel et
    # al.'s noisy-broadcast direction): a deterministic ramp of
    # per-node omission rates on the same tree, exercised end to end
    # through *both* vectorised tiers — the p_v-threaded fastsim
    # sampler and the batchsim engine — against the per-node closed
    # form ∏(1 - p_v^m).
    hetero_rates = np.round(
        np.linspace(0.15, 0.75, mc_topology.order), 4
    )
    # Deliberately short phases so the success probability sits well
    # inside (0, 1) and the agreement check has teeth.
    hetero_m = 4
    hetero_factory = partial(
        SimpleOmission, mc_topology, 0, 1, MESSAGE_PASSING, hetero_m
    )
    hetero_closed = simple_omission_success_probability(
        bfs_tree(mc_topology, 0), hetero_m, hetero_rates
    )
    hetero_cap = config.adaptive_cap(10000 if config.quick else 40000)
    for label, use_fastsim in (("fastsim", True), ("batchsim", False)):
        hetero_runner = TrialRunner(
            hetero_factory, OmissionFailures(p_v=hetero_rates),
            use_fastsim=use_fastsim, workers=config.workers,
            executor=config.executor,
        )
        hetero_outcome = hetero_runner.run_until(
            width, hetero_cap, stream.child("hetero-mc", label),
            bound="bernstein",
        )
        hetero_margin = hoeffding_margin(hetero_outcome.trials,
                                         confidence=0.999)
        hetero_ok = (
            abs(hetero_outcome.estimate - hetero_closed) <= hetero_margin
            and hetero_outcome.backend == (
                "fastsim:simple-omission" if use_fastsim else "batchsim"
            )
        )
        passed = passed and hetero_ok
        table.add_row(
            ablation="omission p_v (mc)",
            setting=f"TrialRunner [{hetero_outcome.backend}]",
            n_or_L=mc_topology.order,
            p=f"{hetero_rates.min():g}..{hetero_rates.max():g}",
            exact=hetero_closed, naive=hetero_outcome.estimate,
            saving=f"|diff| {abs(hetero_outcome.estimate - hetero_closed):.4f} "
                   f"<= {hetero_margin:.4f}",
        )
    for n in ([64] if config.quick else [64, 4096]):
        p = 0.4
        exact_m = repetitions_for_majority(p, 1.0 / n ** 2)
        # the standard Chernoff prescription: m >= 2 ln(n^2) / (1-2p)^2
        chernoff_m = math.ceil(2 * math.log(n ** 2) / (1 - 2 * p) ** 2)
        table.add_row(
            ablation="majority m", setting="exact vs Chernoff", n_or_L=n, p=p,
            exact=exact_m, naive=chernoff_m,
            saving=f"{(1 - exact_m / chernoff_m) * 100:.0f}% fewer steps",
        )
        passed = passed and exact_m <= chernoff_m
        passed = passed and majority_error_probability(exact_m, p) <= 1 / n ** 2
    # 2. Adoption rule under omission failures: any vs majority.
    for n, p in [(64, 0.4)]:
        any_m = repetitions_for_all_silent(p, 1.0 / n ** 2)
        majority_m = repetitions_for_majority(p, 1.0 / n ** 2)
        table.add_row(
            ablation="radio rule", setting="any vs majority (omission)",
            n_or_L=n, p=p, exact=any_m, naive=majority_m,
            saving=f"{majority_m / any_m:.1f}x fewer rounds",
        )
        passed = passed and any_m < majority_m
    # 3. Kucera plan shape: composed plan vs naive per-edge repetition.
    p = 0.25
    for length in ([16, 64] if config.quick else [16, 64, 256]):
        target = 1e-6
        composed = guarantee(build_plan(length, p, target), p)
        # naive: repeat each edge kappa times so the per-edge majority
        # clears target / length (union over edges), serially.
        kappa = repetitions_for_majority(p, target / length)
        if kappa % 2 == 0:
            kappa += 1
        naive = guarantee(Serial(Repeat(Edge(), kappa), length), p)
        table.add_row(
            ablation="plan shape", setting="[CO1]/[CO2] vs per-edge repeat",
            n_or_L=length, p=p, exact=composed.time, naive=naive.time,
            saving=f"{naive.time / composed.time:.2f}x time",
        )
        passed = passed and naive.failure <= target
        # the composed plan must asymptotically win (it does by L=64)
        if length >= 64:
            passed = passed and composed.time < naive.time
    notes = [
        "omission m: the exact calculator matches the asymptotic constant "
        "c = 2/ln(1/p) to within a step",
        "omission m (mc): dispatched TrialRunner estimate at the exact m "
        "vs the closed form, 99.9% Hoeffding margin over the trials spent",
        f"all three mc legs allocate trials sequentially: budget doubles "
        f"until the empirical-Bernstein width reaches {width:g} (caps = "
        f"historical fixed budgets)",
        "omission p_v (mc): heterogeneous per-node rates (linear ramp) "
        "through the fastsim sampler and the batchsim engine tier, both "
        "vs the per-node closed form",
        "majority m: exact binomial tails vs the 2ln(n^2)/(1-2p)^2 "
        "Chernoff bound — the classical bound over-provisions heavily",
        "plan shape: naive per-edge repetition costs Θ(L log L) and its "
        "per-unit time grows with L; the composed plan's stays flat",
    ]
    return ExperimentReport(
        experiment_id="E15",
        title="Design-choice ablations",
        paper_claim="DESIGN.md §6: quantify the constants and structures "
                    "the paper leaves to 'a suitable choice'",
        table=table,
        notes=notes,
        passed=passed,
    )
