"""E12 — Theorem 3.4: Omission-Radio and Malicious-Radio, O(opt · log n).

Claim: repeating every step of a fault-free schedule ``⌈c log n⌉``
times — receivers adopting any heard payload (omission) or the
majority (malicious) — is almost-safe on any graph in time
``O(opt · log n)``.

The experiment runs both rules over a zoo of graphs (line, spider,
star, layered, random tree) with schedules from the closed forms or the
greedy scheduler, under omission failures at ``p = 0.4`` and the
complement adversary at a ``p`` safely below each graph's radio
threshold.  Both scenarios dispatch to the Theorem 3.4 fastsim samplers
(``radio-repeat-omission`` / ``radio-repeat-malicious``; engine
agreement pinned in ``tests/test_fastsim_agreement.py``), so the trial
budget is three orders of magnitude larger than the per-trial engine
loop the runner started from.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.estimation import hoeffding_margin
from repro.analysis.thresholds import radio_malicious_threshold
from repro.core.radio_repeat import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.failures.adversaries import ComplementAdversary
from repro.failures.base import OmissionFailures
from repro.failures.malicious import MaliciousFailures
from repro.graphs.builders import line, random_tree, spider, star
from repro.graphs.layered import layered_graph
from repro.radio.closed_form import (
    layered_schedule,
    line_schedule,
    spider_schedule,
    star_schedule,
)
from repro.radio.greedy import greedy_schedule
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


#: Default sequential stopping widths (quick / full).  Matched to the
#: historical fixed budgets' Hoeffding widths so the per-row Hoeffding
#: slack in the pass criterion stays in its historical range, while
#: near-certain rows (the common case — every row is >= target by
#: construction) stop doublings early under the Bernstein bound.
MC_WIDTH_QUICK = 0.05
MC_WIDTH_FULL = 0.02


def _schedules(config: ExperimentConfig, stream: RngStream):
    """The benchmark zoo: (name, schedule) pairs."""
    zoo = [
        ("line-8", line_schedule(line(8))),
        ("spider-3x3", spider_schedule(spider(3, 3), 3, 3)),
        ("star-6", star_schedule(star(6), 0, 0)),
        ("layered-3", layered_schedule(layered_graph(3))),
    ]
    if not config.quick:
        rt = random_tree(18, stream.child("rt"), max_degree=4)
        zoo += [
            ("line-16", line_schedule(line(16))),
            ("rtree-18", greedy_schedule(rt, 0)),
        ]
    return zoo


def _describe_runner(rule, p, failure_model) -> TrialRunner:
    schedule = line_schedule(line(8))
    algorithm = RadioRepeat(schedule, 1, rule=rule, p=p)
    return TrialRunner(
        partial(RadioRepeat, schedule, 1, rule, algorithm.phase_length),
        failure_model,
    )


@register(
    "E12",
    "Schedule repetition: Omission-/Malicious-Radio (Theorem 3.4)",
    "Theorem 3.4 — almost-safe radio broadcast in O(opt * log n) on any "
    "graph",
    scenarios=[
        ScenarioSpec(
            label="radio-repeat any + omission",
            build=lambda: _describe_runner(ADOPT_ANY, 0.4,
                                           OmissionFailures(0.4)),
            topology="line/spider/star/layered/random tree",
            trials="≤ 2000 / 20000",
            sequential="width ≤ 0.05 / 0.02 (bernstein)",
        ),
        ScenarioSpec(
            label="radio-repeat majority + complement",
            build=lambda: _describe_runner(
                ADOPT_MAJORITY, 0.1,
                MaliciousFailures(0.1, ComplementAdversary()),
            ),
            topology="line/spider/star/layered/random tree",
            trials="≤ 2000 / 20000",
            sequential="width ≤ 0.05 / 0.02 (bernstein)",
        ),
    ],
)
def run_e12(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E12")
    width = config.adaptive_width(
        MC_WIDTH_QUICK if config.quick else MC_WIDTH_FULL
    )
    cap = config.adaptive_cap(2000 if config.quick else 20000)
    table = Table([
        "graph", "n", "opt", "rule", "failures", "p", "m", "rounds",
        "mc_success", "mc_trials", "target", "almost_safe", "backend",
    ])
    passed = True
    for name, schedule in _schedules(config, stream):
        topology = schedule.topology
        n = topology.order
        target = 1.0 - 1.0 / n
        delta = topology.max_degree()
        p_malicious = round(0.5 * radio_malicious_threshold(delta), 3)
        cases = [
            (ADOPT_ANY, "omission", 0.4,
             OmissionFailures(0.4)),
            (ADOPT_MAJORITY, "malicious", p_malicious,
             MaliciousFailures(p_malicious, ComplementAdversary())),
        ]
        for rule, failure_name, p, failure_model in cases:
            algorithm = RadioRepeat(schedule, 1, rule=rule, p=p)
            runner = TrialRunner(
                partial(RadioRepeat, schedule, 1, rule,
                        algorithm.phase_length),
                failure_model,
                workers=config.workers,
                executor=config.executor,
            )
            outcome = runner.run_until(
                width, cap, stream.child("mc", name, rule), bound="bernstein"
            )
            # 99.9% Hoeffding slack over the trials this row actually
            # spent: the per-run success is >= target by construction,
            # so falling further than the sampling margin below it
            # means the claim broke.
            slack = hoeffding_margin(outcome.trials, confidence=0.999)
            ok = outcome.estimate >= target - slack
            passed = passed and ok
            table.add_row(
                graph=name, n=n, opt=schedule.length, rule=rule,
                failures=failure_name, p=p, m=algorithm.phase_length,
                rounds=algorithm.rounds, mc_success=outcome.estimate,
                mc_trials=outcome.trials,
                target=target, almost_safe=ok, backend=outcome.backend,
            )
    notes = [
        "schedules: closed-form optima for line/spider/star/layered, "
        "greedy for the random tree",
        "malicious rows use p = p*(max degree)/2 with the complement "
        "adversary; omission rows use p = 0.4 with the any-payload rule",
        "rounds = opt * m — the Theorem 3.4 time bill",
        f"trials allocated sequentially: each row's budget doubles until "
        f"its empirical-Bernstein width reaches {width:g} (cap {cap}); "
        f"mc_trials is the spend",
        "almost_safe: mc_success >= target - the 99.9% Hoeffding margin "
        "over that row's mc_trials",
    ]
    return ExperimentReport(
        experiment_id="E12",
        title="Schedule repetition: Omission-/Malicious-Radio (Theorem 3.4)",
        paper_claim="Theorem 3.4: almost-safe in O(opt * log n) for any "
                    "graph, omission (p < 1) and malicious "
                    "(p < (1-p)^(delta+1)) failures",
        table=table,
        notes=notes,
        passed=passed,
    )
