"""E12 — Theorem 3.4: Omission-Radio and Malicious-Radio, O(opt · log n).

Claim: repeating every step of a fault-free schedule ``⌈c log n⌉``
times — receivers adopting any heard payload (omission) or the
majority (malicious) — is almost-safe on any graph in time
``O(opt · log n)``.

The experiment runs both rules end to end in the reference engine over
a zoo of graphs (line, spider, star, layered, random tree) with
schedules from the closed forms or the greedy scheduler, under omission
failures at ``p = 0.4`` and the complement adversary at a ``p`` safely
below each graph's radio threshold.
"""

from __future__ import annotations

from repro.analysis.thresholds import radio_malicious_threshold
from repro.core.radio_repeat import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.failures.adversaries import ComplementAdversary
from repro.failures.base import OmissionFailures
from repro.failures.malicious import MaliciousFailures
from repro.graphs.builders import line, random_tree, spider, star
from repro.graphs.layered import layered_graph
from repro.radio.closed_form import (
    layered_schedule,
    line_schedule,
    spider_schedule,
    star_schedule,
)
from repro.radio.greedy import greedy_schedule
from repro.montecarlo import TrialRunner
from repro.experiments.registry import ExperimentConfig, ExperimentReport, register
from repro.experiments.tables import Table
from repro.rng import RngStream


def _schedules(config: ExperimentConfig, stream: RngStream):
    """The benchmark zoo: (name, schedule) pairs."""
    zoo = [
        ("line-8", line_schedule(line(8))),
        ("spider-3x3", spider_schedule(spider(3, 3), 3, 3)),
        ("star-6", star_schedule(star(6), 0, 0)),
        ("layered-3", layered_schedule(layered_graph(3))),
    ]
    if not config.quick:
        rt = random_tree(18, stream.child("rt"), max_degree=4)
        zoo += [
            ("line-16", line_schedule(line(16))),
            ("rtree-18", greedy_schedule(rt, 0)),
        ]
    return zoo


@register(
    "E12",
    "Schedule repetition: Omission-/Malicious-Radio (Theorem 3.4)",
    "Theorem 3.4 — almost-safe radio broadcast in O(opt * log n) on any "
    "graph",
)
def run_e12(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E12")
    trials = 20 if config.quick else 60
    table = Table([
        "graph", "n", "opt", "rule", "failures", "p", "m", "rounds",
        "mc_success", "target", "almost_safe",
    ])
    passed = True
    for name, schedule in _schedules(config, stream):
        topology = schedule.topology
        n = topology.order
        target = 1.0 - 1.0 / n
        delta = topology.max_degree()
        p_malicious = round(0.5 * radio_malicious_threshold(delta), 3)
        cases = [
            (ADOPT_ANY, "omission", 0.4,
             OmissionFailures(0.4)),
            (ADOPT_MAJORITY, "malicious", p_malicious,
             MaliciousFailures(p_malicious, ComplementAdversary())),
        ]
        for rule, failure_name, p, failure_model in cases:
            algorithm = RadioRepeat(schedule, 1, rule=rule, p=p)
            # No fastsim sampler covers schedule repetition: TrialRunner
            # falls back to the batched trace-free engine.
            runner = TrialRunner(
                lambda s=schedule, r=rule, m=algorithm.phase_length:
                    RadioRepeat(s, 1, rule=r, phase_length=m),
                failure_model,
            )
            outcome = runner.run(trials, stream.child("mc", name, rule))
            # With per-run failure <= 1/n, seeing more than a couple of
            # failures in `trials` runs would be wildly unlikely.
            ok = outcome.estimate >= target - 2.0 * (1.0 / trials)
            passed = passed and ok
            table.add_row(
                graph=name, n=n, opt=schedule.length, rule=rule,
                failures=failure_name, p=p, m=algorithm.phase_length,
                rounds=algorithm.rounds, mc_success=outcome.estimate,
                target=target, almost_safe=ok,
            )
    notes = [
        "schedules: closed-form optima for line/spider/star/layered, "
        "greedy for the random tree",
        "malicious rows use p = p*(max degree)/2 with the complement "
        "adversary; omission rows use p = 0.4 with the any-payload rule",
        "rounds = opt * m — the Theorem 3.4 time bill",
    ]
    return ExperimentReport(
        experiment_id="E12",
        title="Schedule repetition: Omission-/Malicious-Radio (Theorem 3.4)",
        paper_claim="Theorem 3.4: almost-safe in O(opt * log n) for any "
                    "graph, omission (p < 1) and malicious "
                    "(p < (1-p)^(delta+1)) failures",
        table=table,
        notes=notes,
        passed=passed,
    )
