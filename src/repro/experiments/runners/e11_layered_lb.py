"""E11 — Lemma 3.4 / Theorem 3.3: O(opt + log n) is impossible on G(m).

Claims: on the layered graph, any almost-safe radio broadcast needs
``Ω(log n · log log n / log log log n)`` steps even under omission
failures, while ``opt = m + 1 = O(log n)`` — so time ``O(opt + log n)``
is unachievable in general (Theorem 3.3), unlike in message passing.

Reproduced two ways:

* **analytically** — the hit-count machinery: every layer-3 node needs
  ``log n / log(1/p)`` hits; the weight cascade ``j_i`` has disjoint
  useful set-size ranges (Claim 3.7 — max per-step cascade contribution
  below 2, checked on concrete schedules), giving ``τ > c·K·log n/8``;
* **empirically** — a budget of ``opt + ⌈log n⌉`` steps, spent in the
  best uniform way (each bit node repeated equally), still fails far
  more often than ``1/n``, while the Theorem 3.4 budget
  ``opt·⌈c log n⌉`` succeeds almost-safely.
"""

from __future__ import annotations

import math
from functools import partial

from repro.analysis.hitcount import (
    analyze_layer2_schedule,
    lemma34_lower_bound,
    min_hits_required,
)
from repro.core.parameters import omission_phase_length
from repro.failures.base import OmissionFailures
from repro.graphs.layered import layered_graph
from repro.montecarlo import TrialRunner
from repro.radio.layered_broadcast import LayeredScheduleBroadcast
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


def _schedule_success(graph, steps, source_steps, p, trials, stream,
                      workers, executor=None) -> float:
    """Monte-Carlo success of an explicit layered schedule.

    Runs through the :class:`TrialRunner`, which dispatches to the
    ``layered-omission`` fastsim sampler — same stream, same draws,
    same estimate as calling the sampler directly.
    """
    runner = TrialRunner(
        partial(LayeredScheduleBroadcast, graph, steps, source_steps),
        OmissionFailures(p),
        workers=workers,
        executor=executor,
    )
    return runner.run(trials, stream).estimate


def _uniform_schedule(m: int, budget: int):
    """Spread a layer-2 step budget as evenly as possible over singletons."""
    steps = []
    for index in range(budget):
        steps.append({(index % m) + 1})
    return steps


def _describe_runner() -> TrialRunner:
    graph = layered_graph(5)
    steps = _uniform_schedule(5, 8)
    return TrialRunner(
        partial(LayeredScheduleBroadcast, graph, steps, 1),
        OmissionFailures(0.5),
    )


@register(
    "E11",
    "Layered-graph lower bound (Lemma 3.4 / Theorem 3.3)",
    "Theorem 3.3 — almost-safe radio broadcast on G(m) cannot run in "
    "O(opt + log n)",
    scenarios=[ScenarioSpec(
        label="layered schedule + omission",
        build=_describe_runner,
        topology="layered graphs G(m), m=5..8",
        trials="2500 / 8000",
    )],
)
def run_e11(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E11")
    p = 0.5
    trials = config.scaled_trials(2500 if config.quick else 8000)
    ms = [5, 6] if config.quick else [5, 6, 8]
    table = Table([
        "m", "n", "opt", "budget", "budget_kind", "min_hits", "need_hits",
        "success", "target", "almost_safe",
    ])
    passed = True
    analytic_notes = []
    for m in ms:
        graph = layered_graph(m)
        n = graph.topology.order
        target = 1.0 - 1.0 / n
        opt = m + 1
        need = min_hits_required(n, p)
        bound = lemma34_lower_bound(m, p)
        analytic_notes.append(
            f"m={m}: every node needs >= {need:.1f} hits; Lemma 3.4 bound "
            f"tau > {bound:.1f} layer-2 steps (vs opt + log n = "
            f"{opt + math.ceil(math.log2(n))})"
        )
        # Short budget: opt + ceil(log2 n) total steps, one for the source.
        short_budget = opt + math.ceil(math.log2(n)) - 1
        short_steps = _uniform_schedule(m, short_budget)
        short_analysis = analyze_layer2_schedule(graph, short_steps)
        short_success = _schedule_success(
            graph, short_steps, max(1, short_budget // m), p, trials,
            stream.child("short", m), config.workers,
            executor=config.executor,
        )
        short_fails = short_success < target
        table.add_row(
            m=m, n=n, opt=opt, budget=short_budget, budget_kind="opt+log n",
            min_hits=short_analysis.min_hits, need_hits=round(need, 1),
            success=short_success, target=target,
            almost_safe=short_success >= target,
        )
        # Long budget: the Theorem 3.4 answer, opt * ceil(c log n).
        repeat = omission_phase_length(n, p)
        long_steps = []
        for position in range(1, m + 1):
            long_steps.extend([{position}] * repeat)
        long_analysis = analyze_layer2_schedule(graph, long_steps)
        long_success = _schedule_success(
            graph, long_steps, repeat, p, trials,
            stream.child("long", m), config.workers,
            executor=config.executor,
        )
        long_ok = long_success >= target - 2.0 / math.sqrt(trials)
        table.add_row(
            m=m, n=n, opt=opt, budget=len(long_steps), budget_kind="opt*log n",
            min_hits=long_analysis.min_hits, need_hits=round(need, 1),
            success=long_success, target=target,
            almost_safe=long_success >= target,
        )
        # Claim 3.7 sanity on the concrete short schedule.
        claim37_ok = short_analysis.max_step_cascade_contribution < 2.0
        passed = passed and short_fails and long_ok and claim37_ok
    notes = analytic_notes + [
        f"p = {p}; schedules spend layer-2 budgets uniformly over singleton "
        f"transmitter sets (the hit-maximising shape for uniform coverage)",
        "Claim 3.7 verified on each short schedule: no single step "
        "contributes 2 or more to the cascade sum F",
        "the radio model thus separates from message passing, where "
        "Theorem 3.1 achieves O(D + log n)",
    ]
    return ExperimentReport(
        experiment_id="E11",
        title="Layered-graph lower bound (Lemma 3.4 / Theorem 3.3)",
        paper_claim="Theorem 3.3: some graphs admit no almost-safe radio "
                    "broadcast in O(opt + log n), even with omission failures",
        table=table,
        notes=notes,
        passed=passed,
    )
