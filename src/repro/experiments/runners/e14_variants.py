"""E14 — the discussion-section variants (Sections 2.1 / 2.2.2).

Three remarks made executable:

* **windowed Simple-Malicious** — no index knowledge, no simultaneous
  wake-up: sliding-window acceptance (``m/2`` identical copies within
  ``m`` rounds) still yields almost-safe message-passing broadcast;
* **labelled round robin** — radio without global schedule indices:
  label ``i`` transmits at rounds ``ℓK + i``; collision-free and
  almost-safe under omission failures;
* **prime-power schedule** — unknown label range ``K``: label ``i``
  transmits at rounds ``p_i^k``; collision-free by unique
  factorisation, demonstrated on a small line.

All three run through the :class:`~repro.montecarlo.TrialRunner` and
dispatch to the batchsim tier (no fastsim sampler covers these
variants, but the windowed program and the slot-schedule lift do —
see :mod:`repro.batchsim.programs`); the per-trial streams match the
historical scalar-engine ``estimate_success`` loop bit for bit, so the
pre-migration goldens still pin the results.
"""

from __future__ import annotations

from functools import partial

from repro.core.flooding import flooding_rounds
from repro.core.labels import PrimeScheduleBroadcast, RoundRobinBroadcast
from repro.core.windowed import WindowedMalicious
from repro.failures.adversaries import ComplementAdversary
from repro.failures.base import OmissionFailures
from repro.failures.malicious import MaliciousFailures
from repro.graphs.builders import binary_tree, grid, line
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


def _describe_windowed() -> TrialRunner:
    return TrialRunner(
        partial(WindowedMalicious, grid(3, 4), 0, 1, p=0.25),
        MaliciousFailures(0.25, ComplementAdversary()),
    )


def _describe_round_robin() -> TrialRunner:
    topology = binary_tree(3)
    cycles = flooding_rounds(topology.order, 3, 0.5)
    return TrialRunner(
        partial(RoundRobinBroadcast, topology, 0, 1, cycles=cycles),
        OmissionFailures(0.5),
    )


def _describe_prime() -> TrialRunner:
    return TrialRunner(
        partial(PrimeScheduleBroadcast, line(3), 0, 1, rounds=2500),
        OmissionFailures(0.3),
    )


@register(
    "E14",
    "Discussion variants: windowed, round robin, prime schedules",
    "Sections 2.1/2.2.2 — index knowledge and global clocks can be "
    "discarded",
    scenarios=[
        ScenarioSpec(
            label="windowed malicious",
            build=_describe_windowed,
            topology="grid 3x4 / 4x5",
            trials="25 / 80",
        ),
        ScenarioSpec(
            label="labelled round robin",
            build=_describe_round_robin,
            topology="binary tree d=3",
            trials="25 / 80",
        ),
        ScenarioSpec(
            label="prime-power schedule",
            build=_describe_prime,
            topology="line n=3, 2500-round horizon",
            trials="25 / 80",
        ),
    ],
)
def run_e14(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E14")
    trials = config.scaled_trials(25 if config.quick else 80)
    table = Table([
        "variant", "graph", "n", "p", "rounds", "mc_success", "target",
        "almost_safe",
    ])
    passed = True

    # 1. Windowed malicious on a grid.
    topology = grid(3, 4) if config.quick else grid(4, 5)
    p = 0.25
    runner = TrialRunner(
        partial(WindowedMalicious, topology, 0, 1, p=p),
        MaliciousFailures(p, ComplementAdversary()),
        workers=config.workers,
        executor=config.executor,
    )
    outcome = runner.run(trials, stream.child("win"))
    reference = WindowedMalicious(topology, 0, 1, p=p)
    target = 1.0 - 1.0 / topology.order
    ok = outcome.estimate >= target - 2.0 / trials
    passed = passed and ok
    table.add_row(
        variant="windowed", graph=topology.name, n=topology.order, p=p,
        rounds=reference.rounds, mc_success=outcome.estimate, target=target,
        almost_safe=ok,
    )

    # 2. Labelled round robin on a binary tree (radio, omission).
    tree_topology = binary_tree(3)
    p = 0.5
    cycles = flooding_rounds(tree_topology.order, 3, p)
    runner = TrialRunner(
        partial(RoundRobinBroadcast, tree_topology, 0, 1, cycles=cycles),
        OmissionFailures(p),
        workers=config.workers,
        executor=config.executor,
    )
    outcome = runner.run(trials, stream.child("robin"))
    reference = RoundRobinBroadcast(tree_topology, 0, 1, cycles=cycles)
    target = 1.0 - 1.0 / tree_topology.order
    ok = outcome.estimate >= target - 2.0 / trials
    passed = passed and ok
    table.add_row(
        variant="round-robin", graph=tree_topology.name,
        n=tree_topology.order, p=p, rounds=reference.rounds,
        mc_success=outcome.estimate, target=target, almost_safe=ok,
    )

    # 3. Prime-power schedule on a short line (feasibility, tiny n).
    line_topology = line(3)
    p = 0.3
    horizon = 2500
    runner = TrialRunner(
        partial(PrimeScheduleBroadcast, line_topology, 0, 1, rounds=horizon),
        OmissionFailures(p),
        workers=config.workers,
        executor=config.executor,
    )
    outcome = runner.run(trials, stream.child("prime"))
    target = 1.0 - 1.0 / line_topology.order
    ok = outcome.estimate >= target - 2.0 / trials
    passed = passed and ok
    table.add_row(
        variant="prime-powers", graph=line_topology.name,
        n=line_topology.order, p=p, rounds=horizon,
        mc_success=outcome.estimate, target=target, almost_safe=ok,
    )
    notes = [
        "windowed: acceptance = ceil(m/2) identical copies from the parent "
        "within the last m rounds; no indices, no global clock",
        "round robin: label i owns rounds lK + i — at most one transmitter "
        "per round, so the omission analysis carries over",
        "prime powers: label i owns rounds p_i^k; exponentially sparse but "
        "collision-free without knowing the label range K",
    ]
    return ExperimentReport(
        experiment_id="E14",
        title="Discussion variants: windowed, round robin, prime schedules",
        paper_claim="Sections 2.1/2.2.2: the index-knowledge and wake-up "
                    "assumptions can be discarded",
        table=table,
        notes=notes,
        passed=passed,
    )
