"""E06 — Theorem 2.4 (impossibility side): the star equalizing adversary.

Claim: for ``p >= (1-p)^{Δ+1}`` no algorithm broadcasts almost-safely in
the radio model.  The proof's adversary on the leaf-sourced star:
during the critical steps (source scheduled alone), a faulty source
plays its counterfactual twin while other faulty nodes stay silent; a
fault-free source gets jammed by every faulty neighbour.  With the
failure rate slowed to exactly ``q = (1-p)^{Δ+1}``, the star root hears
the flipped message exactly as often as the true one and silence with
message-independent probability, so its posterior is pinned at 1/2.

The experiment runs the adversary at ``p = p*(Δ)`` (where ``p = q``
natively) and at ``p > p*`` (with the slowing reduction), alternating
the source bit across the trial budget, and checks overall broadcast
success collapses to roughly 1/2 or below.  Trials go through the
:class:`~repro.montecarlo.TrialRunner`, which dispatches to the
``equalizing-star`` fastsim sampler (agreement with the reference
engine is pinned in ``tests/test_fastsim_agreement.py``), so the trial
budget is orders of magnitude larger than a per-trial engine loop
could afford.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.estimation import clopper_pearson
from repro.analysis.thresholds import radio_malicious_threshold
from repro.core.simple_malicious import SimpleMalicious
from repro.engine.protocol import RADIO
from repro.failures.adversaries import SlowingAdversary
from repro.failures.equalizing import EqualizingStarAdversary
from repro.failures.malicious import MaliciousFailures
from repro.graphs.builders import star
from repro.montecarlo import TrialRunner
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    register,
)
from repro.experiments.tables import Table
from repro.rng import RngStream


def _describe_runner() -> TrialRunner:
    delta = 2
    return TrialRunner(
        partial(SimpleMalicious, star(delta, source_is_center=False), 0, 1,
                RADIO, 15),
        MaliciousFailures(
            radio_malicious_threshold(delta),
            EqualizingStarAdversary(source=0, center=1),
        ),
    )


@register(
    "E06",
    "Star equalizing adversary (radio impossibility)",
    "Theorem 2.4 — not feasible for p >= (1-p)^(delta+1) (radio)",
    scenarios=[ScenarioSpec(
        label="equalizing star attack",
        build=_describe_runner,
        topology="leaf-sourced stars, delta=2/4",
        trials="4000 / 20000",
        note="the adaptive attack has an exact fastsim law "
             "(equalizing-star), incl. the slowed p > p* rows",
    )],
)
def run_e06(config: ExperimentConfig) -> ExperimentReport:
    stream = RngStream(config.seed).child("E06")
    trials = config.scaled_trials(4000 if config.quick else 20000)
    phase_length = 15
    cases = [(2, 0.0), (4, 0.0)] if config.quick else [(2, 0.0), (4, 0.0), (2, 0.15), (4, 0.1)]
    table = Table([
        "delta", "n", "p", "effective_q", "trials", "success_rate",
        "ci_high", "far_below_target", "target",
    ])
    passed = True
    backends = set()
    for delta, extra in cases:
        topology = star(delta, source_is_center=False)
        n = topology.order
        source, center = 0, 1
        q = radio_malicious_threshold(delta)
        p = min(0.99, q + extra)
        successes = 0
        # Both source bits face the attack: the tie-breaking default 0
        # favours message 0, so only the average is pinned near 1/2.
        for message in (0, 1):
            adversary = EqualizingStarAdversary(source=source, center=center)
            if p > q:
                adversary = SlowingAdversary(adversary, p, q)
            runner = TrialRunner(
                partial(SimpleMalicious, topology, source, message, RADIO,
                        phase_length),
                MaliciousFailures(p, adversary),
                workers=config.workers,
                executor=config.executor,
            )
            outcome = runner.run(
                trials // 2, stream.child("mc", delta, p, message)
            )
            backends.add(outcome.backend)
            successes += outcome.successes
        rate = successes / trials
        _, high = clopper_pearson(successes, trials, confidence=0.999)
        target = 1.0 - 1.0 / n
        far_below = high < 0.75  # ~1/2 expected; target is 1 - 1/n >= 0.75
        passed = passed and far_below
        table.add_row(
            delta=delta, n=n, p=p, effective_q=q, trials=trials,
            success_rate=rate, ci_high=high, far_below_target=far_below,
            target=target,
        )
    notes = [
        "the star root's posterior is pinned at 1/2 during the source's "
        "phase; downstream leaves inherit whatever it decides",
        "rows with p > p*(delta) compose the proof's slowing reduction with "
        "the equalizing policy (effective malicious rate q = (1-p*)^(delta+1))",
        "far_below_target: the 99.9% upper confidence bound stays below "
        "0.75, versus the almost-safe bar of 1 - 1/n",
        f"backends: {', '.join(sorted(backends))}",
    ]
    return ExperimentReport(
        experiment_id="E06",
        title="Star equalizing adversary (radio impossibility)",
        paper_claim="Theorem 2.4: broadcasting is not almost-safe for "
                    "p >= (1-p)^(delta+1) in the radio model",
        table=table,
        notes=notes,
        passed=passed,
    )
