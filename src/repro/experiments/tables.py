"""Plain-text result tables for the experiment harness.

The paper has no numeric tables (its evaluation is its theorems), so
the reproduction's "tables" are per-theorem grids of measured
quantities with almost-safe verdicts.  This module renders them as
aligned monospace text for the benches, EXPERIMENTS.md and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["Table"]


def _format_cell(value: Any) -> str:
    """Render one cell: floats get 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A column-ordered grid of experiment rows.

    Rows are dicts keyed by column name; missing cells render empty.
    """

    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        """Append a row; unknown column names are rejected early."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ValueError(
                f"row has cells {sorted(unknown)} outside columns {list(self.columns)}"
            )
        self.rows.append(cells)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ValueError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Aligned monospace rendering with a header rule."""
        headers = list(self.columns)
        grid = [
            [_format_cell(row.get(column, "")) for column in headers]
            for row in self.rows
        ]
        widths = [
            max(len(header), *(len(line[i]) for line in grid)) if grid else len(header)
            for i, header in enumerate(headers)
        ]
        lines = [
            "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
            "  ".join("-" * width for width in widths),
        ]
        for line in grid:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
