"""Experiment harness: per-theorem reproductions with tables and verdicts."""

from repro.experiments.registry import (
    Experiment,
    ExperimentConfig,
    ExperimentReport,
    all_experiments,
    get_experiment,
    run_all,
    run_experiment,
)
from repro.experiments.tables import Table

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentReport",
    "Table",
    "all_experiments",
    "get_experiment",
    "run_experiment",
    "run_all",
]
