"""Experiment registry: one entry per theorem/lemma being reproduced.

Each experiment is a callable taking an :class:`ExperimentConfig` and
returning an :class:`ExperimentReport` containing a result table, notes
and a boolean ``passed`` verdict — "did the paper's qualitative claim
hold in this run".  Runner modules register themselves at import time
via :func:`register`; :func:`run_experiment` / :func:`run_all` drive
them (used by the CLI, the benchmarks and EXPERIMENTS.md).

Each registration also carries the experiment's representative
Monte-Carlo :class:`ScenarioSpec` list.  A spec builds the *actual*
:class:`~repro.montecarlo.TrialRunner` the runner uses, so the
``python -m repro.experiments describe`` table (and the committed
``EXPERIMENTS.md`` it generates) reads the dispatched backend straight
from the live dispatch logic — the documentation cannot drift from the
registry (pinned by ``tests/test_docs_sync.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.tables import Table

__all__ = [
    "ExperimentConfig",
    "ExperimentReport",
    "Experiment",
    "ScenarioSpec",
    "ScenarioFamily",
    "register",
    "register_family",
    "get_family",
    "all_families",
    "families_for_experiment",
    "resolve_scenario",
    "FAMILY_MONTECARLO",
    "FAMILY_EXACT",
    "get_experiment",
    "all_experiments",
    "run_experiment",
    "run_all",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for every experiment run.

    Attributes
    ----------
    seed:
        Root seed; every experiment derives all randomness from it.
    quick:
        Smaller sizes / fewer trials (used by the benchmark harness).
    workers:
        Process count handed to the Monte-Carlo
        :class:`~repro.montecarlo.TrialRunner` batches.  Reports are
        bit-identical for any worker count (per-trial streams are
        derived by trial index), so this is purely a wall-clock knob
        for the sharded tiers — engine-fallback sweeps shard their
        trial loops, batchsim sweeps shard their vectorised trial
        chunks once the budget clears the per-chunk floor;
        fastsim-dispatched batches ignore it.
    trials_scale:
        Multiplier applied by every runner to its Monte-Carlo trial
        budgets (via :meth:`scaled_trials`), so full-size sweeps
        stretch with the hardware — ``--trials-scale 10`` with
        ``--workers N`` buys 10x tighter intervals at roughly 10/N the
        single-process wall-clock.  Per-trial streams depend only on
        the trial index, so scaling *extends* the indicator vector of
        a smaller run instead of reshuffling it, and workers-invariance
        is unaffected.
    target_width:
        Optional override of the adaptive runners' stopping width.
        Threshold-curve sweeps (E01, E05, E12, E15) allocate trials
        sequentially — ``TrialRunner.run_until`` doubles each cell's
        budget until its interval width reaches the target — so
        decisive cells stop early and the budget concentrates on the
        steep part of the curve.  ``None`` keeps each runner's default
        width (chosen to match its historical fixed budget); the
        stopping point is deterministic per seed either way.
    max_trials_scale:
        Multiplier on the adaptive runners' ``max_trials`` caps (which
        default to the historical fixed budgets, after
        ``trials_scale``).  Raising it lets a tighter ``target_width``
        actually be reached; the cap guarantees termination.
    executor:
        Optional shard-substrate spec handed to every runner's
        :class:`~repro.montecarlo.TrialRunner` (``"in-process"``,
        ``"local-process[:N]"``, ``"remote:host:port,..."`` — the
        ``--executor`` CLI flag).  ``None`` keeps the historical
        resolution from ``workers``.  Reports are bit-identical for
        any substrate, exactly as they are for any worker count.
    """

    seed: int = 2007  # the journal year, for flavour
    quick: bool = False
    workers: int = 1
    trials_scale: float = 1.0
    target_width: Optional[float] = None
    max_trials_scale: float = 1.0
    executor: Optional[str] = None

    def __post_init__(self):
        if not (self.trials_scale > 0):
            raise ValueError(
                f"trials_scale must be positive, got {self.trials_scale}"
            )
        if self.executor is not None and not isinstance(self.executor, str):
            raise TypeError(
                f"executor must be a spec string or None, got "
                f"{type(self.executor).__name__}"
            )
        if not (self.max_trials_scale > 0):
            raise ValueError(
                f"max_trials_scale must be positive, got {self.max_trials_scale}"
            )
        if self.target_width is not None and not (0.0 < self.target_width <= 1.0):
            raise ValueError(
                f"target_width must lie in (0, 1], got {self.target_width}"
            )

    def scaled_trials(self, base: int) -> int:
        """``base`` trials scaled by :attr:`trials_scale` (at least 1)."""
        return max(1, round(base * self.trials_scale))

    def adaptive_width(self, default: float) -> float:
        """The sequential stopping width: the override or the default."""
        return default if self.target_width is None else self.target_width

    def adaptive_cap(self, base: int) -> int:
        """Sequential ``max_trials``: the scaled fixed budget times
        :attr:`max_trials_scale` (at least 1)."""
        return max(1, round(self.scaled_trials(base) * self.max_trials_scale))


@dataclass
class ExperimentReport:
    """What an experiment hands back.

    Attributes
    ----------
    experiment_id, title, paper_claim:
        Identification and the claim under test.
    table:
        The regenerated result grid.
    notes:
        Free-form commentary lines (fits, constants, caveats).
    passed:
        Whether the paper's qualitative claim held.
    """

    experiment_id: str
    title: str
    paper_claim: str
    table: Table
    notes: List[str] = field(default_factory=list)
    passed: bool = True

    def render(self) -> str:
        """Full plain-text report."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            "",
            self.table.render(),
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        lines.append("")
        lines.append(f"verdict: {'REPRODUCED' if self.passed else 'NOT REPRODUCED'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ScenarioSpec:
    """One representative Monte-Carlo scenario of an experiment.

    Attributes
    ----------
    label:
        Short scenario name shown in the describe table (e.g.
        ``"windowed malicious"``).
    build:
        Zero-argument callable returning the experiment's
        :class:`~repro.montecarlo.TrialRunner` for this scenario (with
        quick-mode parameters).  The describe machinery reads
        ``dispatch_backend()`` and ``failure_model.describe()`` off it,
        so the documented backend is always the dispatched one.
        ``None`` marks a non-Monte-Carlo (purely combinatorial)
        scenario: the topology/trials strings are still rendered, the
        backend and failure columns show ``—``.
    topology:
        Human-readable topology summary (e.g. ``"binary tree d=4"``).
    trials:
        Trial-budget summary, quick vs full (e.g. ``"2000 / 6000"``).
    sequential:
        Adaptive-allocation summary for scenarios that run
        ``TrialRunner.run_until`` (e.g. ``"width ≤ 0.05 (bernstein)"``);
        empty for fixed-budget scenarios, rendered as ``—``.
    note:
        Optional caveat (e.g. a deliberately pinned engine
        cross-check column that bypasses dispatch).
    """

    label: str
    build: Optional[Callable[[], object]]
    topology: str
    trials: str
    sequential: str = ""
    note: str = ""


@dataclass(frozen=True)
class ScenarioFamily:
    """A parameterised scenario the serving layer can build on demand.

    Where a :class:`ScenarioSpec` pins one representative scenario for
    the describe table, a family is the *wire-format* entry point: a
    client of :mod:`repro.serve` names a family and supplies ``(p, n)``
    (plus optional family-specific ``params``), and :attr:`build`
    returns the ``(algorithm_factory, failure_model)`` pair the service
    turns into a :class:`~repro.montecarlo.TrialRunner`.  The factory
    must be **picklable** (a module-level callable or
    :func:`functools.partial` over one) — that is what makes it
    process-shardable *and* fingerprintable
    (:func:`repro.montecarlo.scenario_fingerprint`), so results are
    exactly memoisable.

    Attributes
    ----------
    name:
        Wire name clients use (kebab-case, e.g. ``"simple-omission"``).
    build:
        ``build(p, n, **params) -> (factory, failure_model)``.  It must
        validate its inputs and raise ``ValueError`` on out-of-range
        parameters — the service maps that to a client error instead of
        a crash.
    description:
        One-line summary for catalogs and docs.
    size_meaning:
        What the wire parameter ``n`` selects (e.g. ``"line length"``,
        ``"grid side"``) — rendered in the catalog so clients know what
        they are scaling.
    experiments:
        The experiment ids this family makes servable over the wire
        (e.g. ``("E05",)``).  The describe table renders these as the
        **Servable as** column, and the catalog-completeness test pins
        that every registered experiment is covered by at least one
        family.
    kind:
        ``FAMILY_MONTECARLO`` (the default) for families whose build
        returns ``(algorithm_factory, failure_model)`` and run through
        :class:`~repro.montecarlo.TrialRunner`; ``FAMILY_EXACT`` for
        purely combinatorial families (E10) whose build returns
        ``(compute, None)`` with ``compute`` a picklable zero-argument
        callable returning a bool — the service runs it once and serves
        the verdict memo-only.
    """

    name: str
    build: Callable[..., Tuple[Callable[[], object], object]]
    description: str
    size_meaning: str = "number of nodes"
    experiments: Tuple[str, ...] = ()
    kind: str = "montecarlo"


#: :attr:`ScenarioFamily.kind` values.
FAMILY_MONTECARLO = "montecarlo"
FAMILY_EXACT = "exact"

_FAMILY_KINDS = (FAMILY_MONTECARLO, FAMILY_EXACT)

_FAMILIES: Dict[str, ScenarioFamily] = {}


def register_family(name: str, description: str,
                    size_meaning: str = "number of nodes",
                    experiments: Tuple[str, ...] = (),
                    kind: str = FAMILY_MONTECARLO):
    """Decorator registering a scenario-family builder under ``name``."""
    if kind not in _FAMILY_KINDS:
        raise ValueError(
            f"family kind must be one of {_FAMILY_KINDS}, got {kind!r}"
        )

    def decorate(build: Callable[..., Tuple[Callable[[], object], object]]):
        if name in _FAMILIES:
            raise ValueError(f"duplicate scenario family {name!r}")
        _FAMILIES[name] = ScenarioFamily(
            name=name, build=build, description=description,
            size_meaning=size_meaning, experiments=tuple(experiments),
            kind=kind,
        )
        return build

    return decorate


def _ensure_families_loaded() -> None:
    """Import the builtin catalog (registration is an import side effect)."""
    from repro.serve import catalog  # noqa: F401  (import for effect)


def get_family(name: str) -> ScenarioFamily:
    """Look up one scenario family by wire name."""
    _ensure_families_loaded()
    if name not in _FAMILIES:
        known = ", ".join(sorted(_FAMILIES))
        raise KeyError(f"unknown scenario family {name!r}; known: {known}")
    return _FAMILIES[name]


def all_families() -> List[ScenarioFamily]:
    """All registered scenario families, sorted by name."""
    _ensure_families_loaded()
    return [_FAMILIES[key] for key in sorted(_FAMILIES)]


def families_for_experiment(experiment_id: str) -> List[ScenarioFamily]:
    """The families serving ``experiment_id`` over the wire (may be [])."""
    return [family for family in all_families()
            if experiment_id in family.experiments]


def resolve_scenario(name: str, p: float, n: int,
                     params: Optional[Dict[str, object]] = None
                     ) -> Tuple[Callable[[], object], object]:
    """Resolve a wire scenario spec to ``(factory, failure_model)``.

    The single entry point the service and its wire protocol use:
    ``KeyError`` for an unknown family, ``ValueError``/``TypeError``
    from the family's own validation for bad parameters.
    """
    family = get_family(name)
    return family.build(p, n, **dict(params or {}))


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    runner: Callable[[ExperimentConfig], ExperimentReport]
    scenarios: Tuple[ScenarioSpec, ...] = ()


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_claim: str,
             scenarios: Optional[List[ScenarioSpec]] = None):
    """Decorator registering a runner under ``experiment_id``.

    ``scenarios`` lists the experiment's representative Monte-Carlo
    scenarios for the ``describe`` table; purely combinatorial
    experiments (E10) register none.
    """

    def decorate(runner: Callable[[ExperimentConfig], ExperimentReport]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_claim=paper_claim,
            runner=runner,
            scenarios=tuple(scenarios or ()),
        )
        return runner

    return decorate


def _ensure_runners_loaded() -> None:
    """Import every runner module (registration is an import side effect)."""
    from repro.experiments import runners  # noqa: F401  (import for effect)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by id (e.g. ``"E05"``)."""
    _ensure_runners_loaded()
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id]


def all_experiments() -> List[Experiment]:
    """All registered experiments, sorted by id."""
    _ensure_runners_loaded()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def run_experiment(experiment_id: str,
                   config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Run one experiment."""
    experiment = get_experiment(experiment_id)
    return experiment.runner(config or ExperimentConfig())


def run_all(config: Optional[ExperimentConfig] = None) -> List[ExperimentReport]:
    """Run every registered experiment in id order."""
    config = config or ExperimentConfig()
    return [experiment.runner(config) for experiment in all_experiments()]
