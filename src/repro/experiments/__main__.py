"""CLI for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments describe [--markdown]
    python -m repro.experiments run E05 [--quick] [--seed N] [--workers N]
        [--trials-scale F] [--target-width W] [--max-trials-scale F]
        [--executor SPEC] [--executor-workers HOST:PORT,...]
    python -m repro.experiments run-all [...same flags...]

``describe`` renders the registry-driven experiment table — paper
claims, topologies, failure models, the *dispatched* backend per
scenario, trial budgets and CLI invocations; ``--markdown`` emits the
committed ``EXPERIMENTS.md`` (``--describe`` is accepted as an alias
for the subcommand).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import (
    ExperimentConfig,
    all_experiments,
    run_all,
    run_experiment,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's theorems, one experiment each.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")
    describe = sub.add_parser(
        "describe",
        help="render the registry-driven experiment/backend table",
    )
    describe.add_argument("--markdown", action="store_true",
                          help="emit the committed EXPERIMENTS.md content")
    run_one = sub.add_parser("run", help="run one experiment")
    run_one.add_argument("experiment_id", help="e.g. E05")
    run_everything = sub.add_parser("run-all", help="run every experiment")
    for command in (run_one, run_everything):
        command.add_argument("--quick", action="store_true",
                             help="smaller sizes / fewer trials")
        command.add_argument("--seed", type=int, default=2007,
                             help="root seed (default 2007)")
        command.add_argument("--workers", type=int, default=1,
                             help="process count for the sharded Monte-"
                                  "Carlo tiers (scalar-engine shards and "
                                  "batchsim trial chunks); results are "
                                  "bit-identical for any value (default 1)")
        command.add_argument("--trials-scale", type=float, default=1.0,
                             dest="trials_scale", metavar="FACTOR",
                             help="multiply every runner's Monte-Carlo "
                                  "trial budget by FACTOR so sweeps "
                                  "stretch with the hardware (default 1.0)")
        command.add_argument("--target-width", type=float, default=None,
                             dest="target_width", metavar="W",
                             help="override the adaptive runners' "
                                  "sequential stopping width: threshold "
                                  "sweeps double each cell's budget until "
                                  "its interval width reaches W (default: "
                                  "each runner's own width)")
        command.add_argument("--max-trials-scale", type=float, default=1.0,
                             dest="max_trials_scale", metavar="FACTOR",
                             help="multiply the adaptive runners' "
                                  "sequential max-trials caps by FACTOR "
                                  "(default 1.0); raise it so a tighter "
                                  "--target-width can actually be reached")
        command.add_argument("--executor", default=None, metavar="SPEC",
                             help="shard substrate for the sharded Monte-"
                                  "Carlo tiers: 'in-process', "
                                  "'local-process[:N]' or "
                                  "'remote:host:port,...' (default: "
                                  "resolved from --workers); reports are "
                                  "bit-identical for any substrate")
        command.add_argument("--executor-workers", default=None,
                             dest="executor_workers",
                             metavar="HOST:PORT,...",
                             help="shorthand for --executor remote:...: "
                                  "shard onto these repro.distrib workers")
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # `--describe` flag spelling maps onto the subcommand.
    argv = ["describe" if arg == "--describe" else arg for arg in argv]
    args = _build_parser().parse_args(argv)
    if args.command == "describe":
        from repro.experiments.describe import render_markdown, render_text

        print(render_markdown() if args.markdown else render_text())
        return 0
    if args.command == "list":
        for experiment in all_experiments():
            print(f"{experiment.experiment_id}  {experiment.title}")
            print(f"      {experiment.paper_claim}")
        return 0
    if args.executor is not None and args.executor_workers is not None:
        print("--executor and --executor-workers are mutually exclusive")
        return 2
    executor = args.executor
    if args.executor_workers is not None:
        executor = f"remote:{args.executor_workers}"
    config = ExperimentConfig(seed=args.seed, quick=args.quick,
                              workers=args.workers,
                              trials_scale=args.trials_scale,
                              target_width=args.target_width,
                              max_trials_scale=args.max_trials_scale,
                              executor=executor)
    if args.command == "run":
        report = run_experiment(args.experiment_id.upper(), config)
        print(report.render())
        return 0 if report.passed else 1
    reports = run_all(config)
    for report in reports:
        print(report.render())
        print()
    failed = [r.experiment_id for r in reports if not r.passed]
    print(f"{len(reports) - len(failed)}/{len(reports)} experiments reproduced")
    if failed:
        print(f"not reproduced: {', '.join(failed)}")
    return 0 if not failed else 1


if __name__ == "__main__":
    sys.exit(main())
