"""Vectorised omission Monte-Carlo on the layered graph ``G(m)``.

The Lemma 3.4 / Theorem 3.3 experiments ask: given a radio schedule on
``G(m)`` whose layer-2 steps are repeated under omission failures, how
often does every layer-3 node get informed?  The success event
factorises per step and per node into bitmask arithmetic:

* a layer-3 value ``v`` (bitmask of its one positions) hears step ``t``
  iff exactly one member of ``A_t ∩ P_v`` *actually transmits* — where
  omission faults remove transmitters, so a collision-doomed step can
  even be rescued by a failure (the exact semantics, slightly stronger
  than the hits-only accounting of the lemma's lower bound);
* layer-2 node ``b_i`` is informed iff the source phase contains a
  non-faulty source step.

The sampler runs thousands of schedule executions as numpy popcounts.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.graphs.layered import LayeredGraph
from repro.rng import as_stream

__all__ = ["sample_layered_omission", "layered_success_estimate"]


def _positions_mask(positions: Set[int]) -> int:
    """1-based bit positions -> integer bitmask."""
    mask = 0
    for position in positions:
        mask |= 1 << (position - 1)
    return mask


def sample_layered_omission(graph: LayeredGraph, steps: Sequence[Set[int]],
                            p: float, trials: int, seed_or_stream=0,
                            source_steps: int = 1) -> np.ndarray:
    """Success indicators for an explicit layer-2 schedule on ``G(m)``.

    Parameters
    ----------
    graph:
        The layered graph.
    steps:
        Layer-2 transmitter sets (1-based bit positions) — e.g. the
        Lemma 3.3 schedule's layer-2 part repeated ``m`` times each.
    p:
        Omission failure probability per transmitter per step.
    source_steps:
        How many dedicated steps the source gets to inform layer 2
        (the run fails if all of them are faulty).

    Success = every layer-2 node informed (source phase delivered; bit
    nodes all hear the lone source transmitter) and every layer-3 value
    hears at least one step with exactly one surviving transmitter
    among its neighbours.

    The source-phase and layer-2 fault draws each own a named child
    stream with the trial count as the leading axis, so the indicators
    are prefix-stable in ``trials`` (the sequential-extension contract
    of :class:`repro.montecarlo.dispatch.SamplerEntry`).
    """
    p = check_probability(p, "p", allow_zero=True)
    trials = check_positive_int(trials, "trials")
    check_positive_int(source_steps, "source_steps")
    stream = as_stream(seed_or_stream)
    m = graph.m
    step_masks = np.array(
        [_positions_mask(set(step)) for step in steps], dtype=np.int64
    )
    if np.any(step_masks >= (1 << m)) or len(steps) == 0:
        if len(steps) == 0:
            raise ValueError("schedule must contain at least one layer-2 step")
        raise ValueError("layer-2 steps contain positions beyond m")
    # Source phase: fails only if all source transmissions are faulty.
    source_ok = (
        stream.child("source").generator.random((trials, source_steps)) >= p
    ).any(axis=1)
    # Layer-2 faults: (trials, steps, m) bits -> per-step surviving masks.
    faults = stream.child("layer2").generator.random((trials, len(steps), m)) < p
    weights = (1 << np.arange(m, dtype=np.int64))
    fault_masks = (faults * weights).sum(axis=2)
    alive = step_masks[None, :] & ~fault_masks
    # Popcount of alive & P_v per value, per trial, per step.
    success = source_ok.copy()
    values = np.arange(1, graph.n_values, dtype=np.int64)
    for value in values:
        mask = int(value)  # P_v as a bitmask *is* the value itself
        overlap = alive & mask
        # vectorised popcount via the unsigned byte view
        counts = np.zeros(overlap.shape, dtype=np.int64)
        work = overlap.copy()
        while np.any(work):
            counts += work & 1
            work >>= 1
        heard = (counts == 1).any(axis=1)
        success &= heard
    return success


def layered_success_estimate(graph: LayeredGraph, steps: Sequence[Set[int]],
                             p: float, trials: int, seed_or_stream=0,
                             source_steps: int = 1) -> float:
    """Convenience: the mean of :func:`sample_layered_omission`."""
    outcomes = sample_layered_omission(
        graph, steps, p, trials, seed_or_stream, source_steps
    )
    return float(outcomes.mean())
