"""Vectorised Monte-Carlo samplers (validated against the engine)."""

from repro.fastsim.closed_forms import (
    flooding_success_lower_bound,
    internal_node_count,
    line_flooding_success_probability,
    simple_omission_success_probability,
)
from repro.fastsim.equalizing import sample_equalizing_star
from repro.fastsim.layered import layered_success_estimate, sample_layered_omission
from repro.fastsim.schedule_repeat import (
    informing_groups,
    sample_radio_repeat_malicious,
    sample_radio_repeat_omission,
)
from repro.fastsim.tree_chain import (
    sample_flooding_success,
    sample_flooding_times,
    sample_simple_malicious_mp,
    sample_simple_malicious_radio,
    sample_simple_malicious_radio_tree,
    sample_simple_omission,
)

__all__ = [
    "simple_omission_success_probability",
    "sample_simple_omission",
    "internal_node_count",
    "line_flooding_success_probability",
    "flooding_success_lower_bound",
    "sample_simple_malicious_mp",
    "sample_simple_malicious_radio",
    "sample_simple_malicious_radio_tree",
    "sample_flooding_times",
    "sample_flooding_success",
    "sample_layered_omission",
    "layered_success_estimate",
    "informing_groups",
    "sample_radio_repeat_omission",
    "sample_radio_repeat_malicious",
    "sample_equalizing_star",
]
