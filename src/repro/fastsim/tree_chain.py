"""Vectorised Monte-Carlo samplers for the tree algorithms.

The reference engine simulates every round of every node — perfect for
correctness, far too slow for 10⁴-trial sweeps over dozens of
parameter points.  These samplers exploit the algorithms' structure to
sample the *success event* directly:

* **Simple-Omission** (either model) — success factorises into one
  independent event per internal node: its ``m``-step phase delivers
  unless all ``m`` transmissions fail, so per (trial, internal node)
  one Bernoulli(``1 - p^m``) draw suffices.
* **Simple-Malicious** (either model) — correctness propagates down
  the tree as a Markov chain: conditioned on the parent's decided
  value, a node's vote outcome depends only on its own phase's fault
  pattern.  Per (trial, node) one trinomial draw suffices.
* **Flooding** (Theorem 3.1) — per-round faults are i.i.d., so the
  delay from a node's informing to its successful relay is geometric,
  shared by all of its children (they listen to the same transmitter);
  a node's informed time is the sum of geometric delays along its
  ancestor path.

Every sampler is cross-validated against the reference engine in
``tests/test_fastsim_agreement.py``, which pins the exact scenario
shapes the :mod:`repro.montecarlo` dispatch registry may hand to each
sampler.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.graphs.bfs import SpanningTree
from repro.rng import as_stream

__all__ = [
    "node_rates",
    "sample_simple_omission",
    "sample_simple_malicious_mp",
    "sample_simple_malicious_radio",
    "sample_simple_malicious_radio_tree",
    "sample_flooding_times",
    "sample_flooding_success",
]


def _nodes_in_topdown_order(tree: SpanningTree):
    """Non-root nodes ordered so parents precede children."""
    return [node for node in tree.order if node != tree.root]


def node_rates(p, order: int) -> np.ndarray:
    """Validate scalar or per-node omission rates as an ``(order,)`` array.

    The heterogeneous workload (``OmissionFailures(p_v=...)``) hands
    the factorising samplers one Bernoulli rate per transmitter; a
    scalar ``p`` broadcasts to every node.  Every rate must lie in
    ``[0, 1)``.
    """
    rates = np.asarray(p, dtype=float)
    if rates.ndim == 0:
        check_probability(float(rates), "p", allow_zero=True, allow_one=False)
        return np.full(order, float(rates))
    if rates.shape != (order,):
        raise ValueError(
            f"per-node rates must have shape ({order},), got {rates.shape}"
        )
    if not ((rates >= 0.0) & (rates < 1.0)).all():
        raise ValueError("every per-node rate must lie in [0, 1)")
    return rates


def sample_simple_omission(tree: SpanningTree, phase_length: int, p,
                           trials: int, seed_or_stream=0) -> np.ndarray:
    """Success indicators for Simple-Omission (either model).

    The schedule activates one transmitter per step, so the radio and
    message-passing executions coincide.  A node is informed with the
    true message iff every ancestor's phase delivered; the broadcast
    therefore succeeds iff *every internal node's* phase contains at
    least one non-faulty step — independent events of probability
    ``1 - p^m``, matching the exact closed form
    :func:`repro.fastsim.closed_forms.simple_omission_success_probability`.

    ``p`` may be a scalar or an ``(n,)`` per-node rate vector (the
    heterogeneous workload): the success law factorises per internal
    node, so node ``v``'s event simply uses its own ``p_v[v]^m``.  The
    draw pattern is rate-independent, keeping the scalar case
    bit-compatible.
    """
    phase_length = check_positive_int(phase_length, "phase_length")
    trials = check_positive_int(trials, "trials")
    rates = node_rates(p, tree.topology.order)
    stream = as_stream(seed_or_stream)
    generator = stream.generator
    internal_nodes = [node for node in tree.order if not tree.is_leaf(node)]
    if not internal_nodes:
        return np.ones(trials, dtype=bool)
    all_faulty = rates[internal_nodes] ** phase_length
    draws = generator.random((trials, len(internal_nodes)))
    return (draws >= all_faulty).all(axis=1)


def sample_simple_malicious_mp(tree: SpanningTree, phase_length: int, p: float,
                               trials: int, seed_or_stream=0) -> np.ndarray:
    """Success indicators for Simple-Malicious + complement adversary (MP).

    Message convention: ``Ms = 1``, default ``0``.  The fault pattern of
    a node's phase is shared by *all* of its children (they listen to
    the same ``m`` rounds, and the complement adversary flips the whole
    per-round transmission), so siblings decide identically: the
    success event factorises into one Bernoulli event per **internal**
    node, exactly as in the reference engine.  Conditioned on the
    parent being correct, the children err when flipped receptions
    reach half of the window; conditioned on it being wrong, only
    ``> m/2`` flips rescue them (a tie falls to the default 0 = the
    wrong value for ``Ms = 1``).

    Each internal node draws its flip counts from its own named child
    stream with the trial count as the only axis, so the indicators
    are prefix-stable in ``trials`` (the sequential-extension contract
    of :class:`repro.montecarlo.dispatch.SamplerEntry`).
    """
    phase_length = check_positive_int(phase_length, "phase_length")
    p = check_probability(p, "p", allow_zero=True)
    trials = check_positive_int(trials, "trials")
    stream = as_stream(seed_or_stream)
    m = phase_length
    half = m / 2.0
    correct = {tree.root: np.ones(trials, dtype=bool)}
    result = np.ones(trials, dtype=bool)
    for node in tree.order:
        children = tree.children(node)
        if not children:
            continue
        parent_correct = correct[node]
        flips = stream.child("flips", node).generator.binomial(
            m, p, size=trials
        )
        children_correct = np.where(parent_correct, flips < half, flips > half)
        result &= children_correct
        for child in children:
            correct[child] = children_correct
    return result


def sample_simple_malicious_radio(tree: SpanningTree, phase_length: int,
                                  p: float, trials: int,
                                  seed_or_stream=0) -> np.ndarray:
    """Success indicators for Simple-Malicious in the radio model.

    This samples the *analysis model* of the Theorem 2.4 proof: per
    listening step a node independently hears the correct bit with
    probability ``good = (1-p)^{d+1}`` (its whole closed neighbourhood
    fault-free), the flipped bit with probability ``bad = p`` (the
    scheduled parent faulty, the adversary flipping while others stay
    silent), and silence otherwise; the vote errs when bad receptions
    tie or beat good ones (roles swap when the parent itself is wrong).
    Per-node trinomials are drawn independently — the proof's per-node
    bound — whereas a concrete engine adversary induces sibling
    correlations; both sides of the threshold are unaffected because
    the per-node marginals coincide.
    """
    phase_length = check_positive_int(phase_length, "phase_length")
    p = check_probability(p, "p", allow_zero=True)
    trials = check_positive_int(trials, "trials")
    stream = as_stream(seed_or_stream)
    generator = stream.generator
    m = phase_length
    topology = tree.topology
    correct = {tree.root: np.ones(trials, dtype=bool)}
    for node in _nodes_in_topdown_order(tree):
        degree = topology.degree(node)
        good = (1.0 - p) ** (degree + 1)
        bad = p
        if good + bad > 1.0:
            raise ValueError(
                f"inconsistent trinomial at node {node}: good {good} + bad {bad} > 1"
            )
        draws = generator.multinomial(m, [good, bad, 1.0 - good - bad],
                                      size=trials)
        good_count = draws[:, 0]
        bad_count = draws[:, 1]
        parent_correct = correct[tree.parent[node]]
        # Parent correct: good receptions carry Ms=1, vote right iff
        # good > bad (tie -> default 0 = wrong).  Parent wrong: swapped.
        correct[node] = np.where(
            parent_correct, good_count > bad_count, bad_count > good_count
        )
    result = np.ones(trials, dtype=bool)
    for node in topology.nodes:
        if node != tree.root:
            result &= correct[node]
    return result


def sample_simple_malicious_radio_tree(tree: SpanningTree, phase_length: int,
                                       p: float, trials: int,
                                       seed_or_stream=0) -> np.ndarray:
    """Engine-exact Simple-Malicious radio success on tree *topologies*.

    Requires the topology itself to be a tree (so the spanning tree is
    the whole graph).  Under the worst-case radio adversary a phase of
    internal node ``q`` behaves, per step:

    * ``q`` faulty (probability ``p``) — the flipped bit is delivered
      to *every* listening child at once (all other faulty nodes keep
      silent so the lie lands);
    * ``q`` non-faulty — each child ``ℓ`` independently hears the true
      bit iff the rest of its closed neighbourhood ``{ℓ} ∪ children(ℓ)``
      is fault-free (probability ``(1-p)^{deg(ℓ)}``; any faulty member
      jams, a faulty ``ℓ`` is itself transmitting noise), else silence.

    On a tree those closed-neighbourhood remainders are pairwise
    disjoint across siblings, so conditioned on ``q``'s shared flip
    count the children decide independently — exactly the engine's
    joint law, sibling correlations included (which the independent
    per-node trinomial of :func:`sample_simple_malicious_radio` ignores;
    on chains the two coincide).  Message convention: ``Ms = 1``,
    default ``0``.

    Each draw site — one per transmitter's shared flip count, one per
    listening child's vote count — owns a named child stream with the
    trial count as the leading axis, so the indicators are
    prefix-stable in ``trials`` (the sequential-extension contract of
    :class:`repro.montecarlo.dispatch.SamplerEntry`).
    """
    phase_length = check_positive_int(phase_length, "phase_length")
    p = check_probability(p, "p", allow_zero=True)
    trials = check_positive_int(trials, "trials")
    topology = tree.topology
    if topology.size != topology.order - 1:
        raise ValueError(
            f"{topology.name!r} is not a tree ({topology.size} edges on "
            f"{topology.order} nodes); sibling listeners would share "
            f"neighbours and the per-phase factorisation breaks"
        )
    stream = as_stream(seed_or_stream)
    m = phase_length
    correct = {tree.root: np.ones(trials, dtype=bool)}
    result = np.ones(trials, dtype=bool)
    for node in tree.order:
        children = tree.children(node)
        if not children:
            continue
        flips = stream.child("flips", node).generator.binomial(
            m, p, size=trials
        )
        clear = m - flips
        parent_correct = correct[node]
        for child in children:
            rest_fault_free = (1.0 - p) ** topology.degree(child)
            true_votes = stream.child("votes", child).generator.binomial(
                clear, rest_fault_free
            )
            child_correct = np.where(
                parent_correct, true_votes > flips, flips > true_votes
            )
            result &= child_correct
            correct[child] = child_correct
    return result


def sample_flooding_times(tree: SpanningTree, p, trials: int,
                          seed_or_stream=0) -> np.ndarray:
    """Broadcast completion times of flooding (rounds until all informed).

    ``result[k]`` is trial ``k``'s completion round: the maximum over
    nodes of the sum of geometric(1-p) relay delays along the node's
    ancestor path (one shared delay per internal node, drawn after that
    node becomes informed — valid by memorylessness of the i.i.d.
    per-round faults).

    ``p`` may be a scalar or an ``(n,)`` per-node rate vector: the
    relay delay of internal node ``v`` is then geometric with its own
    success rate ``1 - p_v[v]`` (its transmitter is the only one that
    matters for the front crossing ``v``).

    Each internal node draws its delays from its own named child
    stream with the trial count as the only axis, so the completion
    times are prefix-stable in ``trials`` (the sequential-extension
    contract of :class:`repro.montecarlo.dispatch.SamplerEntry`) and a
    constant per-node vector stays bit-identical to the scalar rate —
    the draw sites depend only on each node's own rate.
    """
    trials = check_positive_int(trials, "trials")
    rates = node_rates(p, tree.topology.order)
    stream = as_stream(seed_or_stream)
    informed_time = {tree.root: np.zeros(trials, dtype=np.int64)}
    completion = np.zeros(trials, dtype=np.int64)
    relay_delay = {}
    for node in tree.order:
        if tree.is_leaf(node):
            continue
        node_rate = float(rates[node])
        if node_rate == 0.0:
            relay_delay[node] = np.ones(trials, dtype=np.int64)
        else:
            relay_delay[node] = stream.child("delay", node).generator.geometric(
                1.0 - node_rate, size=trials
            )
    for node in _nodes_in_topdown_order(tree):
        parent = tree.parent[node]
        informed_time[node] = informed_time[parent] + relay_delay[parent]
        np.maximum(completion, informed_time[node], out=completion)
    return completion


def sample_flooding_success(tree: SpanningTree, rounds: int, p,
                            trials: int, seed_or_stream=0) -> np.ndarray:
    """Success indicators for flooding run for a fixed round budget."""
    rounds = check_positive_int(rounds, "rounds")
    times = sample_flooding_times(tree, p, trials, seed_or_stream)
    return times <= rounds
