"""Vectorised samplers for the Theorem 3.4 schedule-repetition algorithms.

:class:`~repro.core.radio_repeat.RadioRepeat` repeats every step ``i``
of a fault-free radio schedule in a series ``S_i`` of ``m`` consecutive
rounds.  A node ``v`` listens only during the series of the step at
which the fault-free simulation informs it, and the only neighbour of
``v`` scheduled in that step is ``p(v)`` (were there two, ``v`` would
have heard a collision and not been informed).  The success event
therefore factorises over *informing groups* — the distinct pairs
``(p(v), informed_step(v))``: every node of a group listens to the same
transmitter during the same ``m`` rounds, so the whole group shares one
fault pattern, and groups occupy disjoint (round, transmitter) pairs,
making them independent.

* **Omission-Radio** (``ADOPT_ANY`` + omission failures) — a group is
  served iff its transmitter is non-faulty in at least one of the ``m``
  rounds (probability ``1 - p^m``); the broadcast succeeds iff every
  group is served, because a served node adopts exactly its parent's
  settled value ``M_{p(v)}`` and correctness telescopes to ``Ms``.
* **Malicious-Radio** (``ADOPT_MAJORITY`` + the complement adversary) —
  every scheduled transmitter transmits in every round (faulty rounds
  flip the bit), so a group's ``m`` votes are its parent's value with
  ``Bin(m, p)`` of them flipped; conditioned on the parent being
  correct the group errs when flips reach half of the window (a tie
  falls to the default 0, wrong for ``Ms = 1``), and when the parent is
  wrong only ``> m/2`` flips rescue it — a Markov chain over the
  informing-group forest, exactly as in the engine.

Both samplers are pinned against the reference engine in
``tests/test_fastsim_agreement.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.radio.schedule import RadioSchedule
from repro.rng import as_stream

__all__ = [
    "informing_groups",
    "sample_radio_repeat_omission",
    "sample_radio_repeat_malicious",
]


def informing_groups(schedule: RadioSchedule
                     ) -> Dict[Tuple[int, int], List[int]]:
    """The distinct ``(p(v), informed_step(v))`` pairs of a schedule.

    Maps each pair to the (sorted) nodes it informs in the fault-free
    simulation.  Raises if the schedule does not inform every node —
    the repetition algorithms require a valid base schedule.
    """
    simulation = schedule.simulate()
    if not simulation.covers(schedule.topology):
        raise ValueError(
            f"schedule on {schedule.topology.name!r} does not inform every "
            f"node; the repetition samplers need a valid base schedule"
        )
    groups: Dict[Tuple[int, int], List[int]] = {}
    for node in sorted(simulation.informed_step):
        step = simulation.informed_step[node]
        if step < 0:  # the source starts informed
            continue
        groups.setdefault((simulation.parent[node], step), []).append(node)
    return groups


def sample_radio_repeat_omission(schedule: RadioSchedule, phase_length: int,
                                 p: float, trials: int,
                                 seed_or_stream=0) -> np.ndarray:
    """Success indicators for Omission-Radio (Theorem 3.4, any rule).

    One Bernoulli(``1 - p^m``) event per informing group: omission
    failures can only silence transmitters (never create collisions),
    so a listening node hears its schedule parent in every round the
    parent is non-faulty, and adopting *any* heard payload telescopes
    the parent's settled value down the schedule.
    """
    phase_length = check_positive_int(phase_length, "phase_length")
    p = check_probability(p, "p", allow_zero=True)
    trials = check_positive_int(trials, "trials")
    stream = as_stream(seed_or_stream)
    groups = informing_groups(schedule)
    if not groups:
        return np.ones(trials, dtype=bool)
    all_faulty = p ** phase_length
    draws = stream.generator.random((trials, len(groups)))
    return (draws >= all_faulty).all(axis=1)


def sample_radio_repeat_malicious(schedule: RadioSchedule, phase_length: int,
                                  p: float, trials: int,
                                  seed_or_stream=0) -> np.ndarray:
    """Success indicators for Malicious-Radio + complement adversary.

    Message convention: ``Ms = 1``, default ``0`` (a vote tie falls to
    the wrong value under a correct parent).  Per informing group one
    shared ``Bin(m, p)`` flip count decides all of its members at once;
    groups are processed in step order so the transmitter's own
    correctness is settled before its group votes.

    Each group draws its flip counts from its own named child stream
    with the trial count as the only axis, so the indicators are
    prefix-stable in ``trials`` (the sequential-extension contract of
    :class:`repro.montecarlo.dispatch.SamplerEntry`).
    """
    phase_length = check_positive_int(phase_length, "phase_length")
    p = check_probability(p, "p", allow_zero=True)
    trials = check_positive_int(trials, "trials")
    stream = as_stream(seed_or_stream)
    groups = informing_groups(schedule)
    m = phase_length
    half = m / 2.0
    correct = {schedule.source: np.ones(trials, dtype=bool)}
    result = np.ones(trials, dtype=bool)
    for transmitter, step in sorted(groups, key=lambda pair: (pair[1], pair[0])):
        flips = stream.child("flips", transmitter, step).generator.binomial(
            m, p, size=trials
        )
        parent_correct = correct[transmitter]
        group_correct = np.where(parent_correct, flips < half, flips > half)
        result &= group_correct
        for node in groups[(transmitter, step)]:
            correct[node] = group_correct
    return result
