"""Closed-form success probabilities for the simple algorithms.

For several of the paper's algorithms the success event factorises over
independent per-phase events, giving *exact* closed forms that the
experiment harness can sweep instantly and that the reference engine is
validated against in the test suite.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.analysis.chernoff import binomial_tail_le
from repro.core.flooding import flooding_line_length
from repro.graphs.bfs import SpanningTree

__all__ = [
    "simple_omission_success_probability",
    "internal_node_count",
    "line_flooding_success_probability",
    "flooding_success_lower_bound",
]


def internal_node_count(tree: SpanningTree) -> int:
    """Number of tree nodes with at least one child."""
    return sum(
        1 for node in tree.topology.nodes if not tree.is_leaf(node)
    )


def simple_omission_success_probability(tree: SpanningTree, phase_length: int,
                                        p) -> float:
    """Exact success probability of Simple-Omission on ``tree``.

    A child is informed iff its parent's phase contains at least one
    non-faulty step — one independent Bernoulli event *per internal
    node* (all children of a node share their parent's phase), each
    succeeding with probability ``1 - p^m``.  Success is the
    conjunction: ``(1 - p^m)^{#internal}``.

    ``p`` may also be an ``(n,)`` per-node rate vector (heterogeneous
    omission rates): the conjunction then runs over each internal
    node's own rate, ``∏ (1 - p_v[v]^m)``.
    """
    from repro.fastsim.tree_chain import node_rates

    phase_length = check_positive_int(phase_length, "phase_length")
    if np.ndim(p) == 0:
        # Scalar fast path, kept bit-exact with the historical formula
        # (a ** power and an equal-factor product can differ in ulps).
        p = check_probability(p, "p", allow_zero=True)
        internals = internal_node_count(tree)
        return (1.0 - p ** phase_length) ** internals
    rates = node_rates(p, tree.topology.order)
    product = 1.0
    for node in tree.topology.nodes:
        if not tree.is_leaf(node):
            product *= 1.0 - float(rates[node]) ** phase_length
    return product


def line_flooding_success_probability(length: int, rounds: int,
                                      p: float) -> float:
    """Exact success probability of flooding a line of ``length`` edges.

    The informed front advances by one per non-faulty round of the
    front node, so the front position after ``R`` rounds is
    ``Bin(R, 1-p)`` and success is ``P[Bin(R, 1-p) >= length]``
    (Lemma 3.1's event, computed exactly instead of bounded).
    """
    length = check_positive_int(length, "length")
    rounds = check_positive_int(rounds, "rounds")
    p = check_probability(p, "p", allow_zero=True)
    return 1.0 - binomial_tail_le(rounds, length - 1, 1.0 - p)


def flooding_success_lower_bound(tree: SpanningTree, rounds: int, p: float,
                                 padded_length: Optional[int] = None) -> float:
    """Theorem 3.1's union bound on flooding success over a tree.

    Every branch behaves like a line no longer than the padded length
    ``L = D + ⌈log n⌉``; a union bound over the leaves gives
    ``success >= 1 - #leaves · P[Bin(R, 1-p) < L]``.
    """
    if padded_length is None:
        padded_length = flooding_line_length(tree.topology.order, tree.height)
    leaf_count = len(tree.leaves())
    branch_failure = binomial_tail_le(rounds, padded_length - 1, 1.0 - p)
    return max(0.0, 1.0 - leaf_count * branch_failure)
