"""Vectorised sampler for the Theorem 2.4 star equalizing adversary.

The scenario of ``E06``: Simple-Malicious on a star whose source is a
leaf, attacked by :class:`~repro.failures.equalizing.EqualizingStarAdversary`
(optionally slowed to an effective malicious rate ``e``).  The engine
execution collapses to a single vote:

* during the source's phase the star root hears, per step and
  independently, the *flipped* message with probability ``e`` (source
  effectively faulty: it plays its counterfactual twin while all other
  faulty nodes keep silent), the *true* message with probability
  ``(1 - e)^n`` (nobody in the whole star effectively faulty: any
  faulty other node jams the reception, a faulty root is itself busy
  jamming), and silence otherwise;
* outside the critical steps every faulty node behaves exactly
  fault-free, so the root's decided value is relayed verbatim to every
  other leaf during the root's own phase.

The broadcast therefore succeeds iff the root's majority vote lands on
``Ms`` — with the tie (and the empty vote) falling to the default 0,
which is correct for ``Ms = 0`` and wrong for ``Ms = 1``.  At the
threshold rate ``e = (1 - e)^n`` both payloads are heard equally often
and the success probability is pinned near 1/2, the impossibility the
experiment demonstrates.  Agreement with the reference engine is pinned
in ``tests/test_fastsim_agreement.py``.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.rng import as_stream

__all__ = ["sample_equalizing_star"]


def sample_equalizing_star(order: int, phase_length: int, rate: float,
                           source_message: int, trials: int,
                           seed_or_stream=0) -> np.ndarray:
    """Success indicators for the star equalizing attack.

    Parameters
    ----------
    order:
        Number of star nodes ``n`` (the root has degree ``n - 1``).
    phase_length:
        Steps per phase ``m``.
    rate:
        Effective malicious rate ``e`` — the raw ``p`` when the
        adversary runs natively, the slowing target otherwise.
    source_message:
        The bit ``Ms`` (ties fall to 0, so the two messages differ).
    """
    order = check_positive_int(order, "order")
    phase_length = check_positive_int(phase_length, "phase_length")
    rate = check_probability(rate, "rate", allow_zero=True)
    trials = check_positive_int(trials, "trials")
    if source_message not in (0, 1):
        raise ValueError(
            f"source_message must be the bit 0 or 1, got {source_message!r}"
        )
    stream = as_stream(seed_or_stream)
    hear_true = (1.0 - rate) ** order
    hear_flip = rate
    draws = stream.generator.multinomial(
        phase_length, [hear_true, hear_flip, 1.0 - hear_true - hear_flip],
        size=trials,
    )
    true_votes = draws[:, 0]
    flip_votes = draws[:, 1]
    if source_message == 1:
        return true_votes > flip_votes
    return true_votes >= flip_votes
