"""Deterministic, hierarchical random-number streams.

Every stochastic component of the library (failure sampling, adversary
coin flips, workload generation, Monte-Carlo trials) draws from an
:class:`RngStream`.  Streams are created from integer seeds or derived
from a parent stream by *name*, so that an experiment seeded once is
fully reproducible regardless of the order in which sub-components
consume randomness.

The implementation wraps :class:`numpy.random.Generator` over PCG64.
Child streams are derived with ``SeedSequence.spawn``-style hashing of
the (parent entropy, child name) pair, which keeps unrelated streams
statistically independent.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["RngStream", "derive_seed", "as_stream"]


def derive_seed(seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from ``seed`` and a name path.

    The derivation is a SHA-256 hash of the decimal seed and the
    ``repr`` of each name component, so any hashable/representable
    labels (strings, ints, tuples) can be used.  The same inputs always
    produce the same child seed, on any platform.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode("utf8"))
    for name in names:
        h.update(b"/")
        h.update(repr(name).encode("utf8"))
    return int.from_bytes(h.digest()[:8], "big")


class RngStream:
    """A named, reproducible random stream.

    Parameters
    ----------
    seed:
        Non-negative integer seed.
    path:
        Optional name path used only for ``repr`` / debugging.
    """

    __slots__ = ("_seed", "_path", "_gen")

    def __init__(self, seed: int, path: Sequence[object] = ()):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._path = tuple(path)
        self._gen = np.random.Generator(np.random.PCG64(self._seed))

    # -- identity ------------------------------------------------------
    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    @property
    def path(self) -> tuple:
        """Name path from the root stream (for debugging)."""
        return self._path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = "/".join(str(part) for part in self._path) or "root"
        return f"RngStream({label}, seed={self._seed})"

    # -- derivation ----------------------------------------------------
    def child(self, *names: object) -> "RngStream":
        """Return an independent child stream identified by ``names``."""
        return RngStream(derive_seed(self._seed, *names), self._path + tuple(names))

    def children(self, count: int, prefix: object = "trial") -> Iterable["RngStream"]:
        """Yield ``count`` independent child streams ``(prefix, i)``."""
        for index in range(count):
            yield self.child(prefix, index)

    # -- sampling ------------------------------------------------------
    @property
    def generator(self) -> np.random.Generator:
        """The underlying :class:`numpy.random.Generator`."""
        return self._gen

    def bernoulli(self, prob: float, size: Optional[int] = None):
        """Sample Bernoulli(``prob``) as booleans (scalar or vector)."""
        if size is None:
            return bool(self._gen.random() < prob)
        return self._gen.random(size) < prob

    def random(self, size: Optional[int] = None):
        """Uniform floats in ``[0, 1)``."""
        return self._gen.random() if size is None else self._gen.random(size)

    def integers(self, low: int, high: int, size: Optional[int] = None):
        """Uniform integers in ``[low, high)``."""
        return self._gen.integers(low, high, size=size)

    def choice(self, options: Sequence, size: Optional[int] = None):
        """Uniform choice from a sequence."""
        index = self._gen.integers(0, len(options), size=size)
        if size is None:
            return options[int(index)]
        return [options[int(i)] for i in np.atleast_1d(index)]

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._gen.shuffle(items)

    def permutation(self, count: int) -> np.ndarray:
        """A random permutation of ``range(count)``."""
        return self._gen.permutation(count)

    def binomial(self, trials: int, prob: float, size: Optional[int] = None):
        """Binomial draws."""
        return self._gen.binomial(trials, prob, size=size)

    def geometric(self, prob: float, size: Optional[int] = None):
        """Geometric draws (number of trials until first success, >= 1)."""
        return self._gen.geometric(prob, size=size)


def as_stream(seed_or_stream) -> RngStream:
    """Coerce an int seed or an existing stream into an :class:`RngStream`."""
    if isinstance(seed_or_stream, RngStream):
        return seed_or_stream
    if isinstance(seed_or_stream, (int, np.integer)):
        return RngStream(int(seed_or_stream))
    raise TypeError(
        f"expected an int seed or RngStream, got {type(seed_or_stream).__name__}"
    )
