"""Concrete adversaries for malicious transmission failures.

These are the workhorse adversaries used by the feasibility and
complexity experiments:

* :class:`SilentAdversary` — faulty nodes stop (makes malicious
  failures degrade to omission; a useful baseline).
* :class:`ComplementAdversary` — every intended bit is flipped.  This
  is the worst case for majority-voting protocols and is legal in all
  three restriction levels when payloads are bits.
* :class:`RandomFlipAdversary` — Kučera's flip model: each faulty
  transmission's bit is flipped (the *fault* already happened with
  probability ``p``; the flip is the damage).
* :class:`GarbageAdversary` — replaces payloads with a fixed garbage
  value, never speaks out of turn (limited malicious).
* :class:`JammingAdversary` — radio-only: faulty nodes transmit noise
  out of turn, manufacturing collisions (full malicious).
* :class:`RadioWorstCaseAdversary` — the coordinated radio attack of
  the Theorem 2.4 analysis: when the scheduled transmitter is faulty
  its bit is flipped and all other faulty nodes stay silent so the lie
  is delivered; when it is fault-free every faulty node jams.
* :class:`SlowingAdversary` — the proofs' failure-rate *slowing*
  reduction: a wrapper that lets a faulty node behave fault-free with
  the right probability so the effective malicious rate drops from
  ``p`` to a chosen target.

All adversaries here decide from the current round's intents alone
(``requires_history`` is ``False``), so trace-free engine executions
can skip history bookkeeping; the adaptive equalizing adversaries live
in :mod:`repro.failures.equalizing` and keep the default ``True``.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional

import numpy as np

from repro._validation import check_probability
from repro.engine.protocol import MESSAGE_PASSING, RADIO
from repro.failures.malicious import Adversary, Restriction

__all__ = [
    "SilentAdversary",
    "ComplementAdversary",
    "RandomFlipAdversary",
    "GarbageAdversary",
    "JammingAdversary",
    "RadioWorstCaseAdversary",
    "SlowingAdversary",
    "flip_bit",
]


class _ObliviousAdversary(Adversary):
    """Base for adversaries that never consult the execution history.

    All of them are also randomness-free (only :class:`SlowingAdversary`
    tosses coins), so the batched rewrites below consume no streams and
    batched executions stay bit-identical to scalar ones.
    """

    consumes_adversary_stream = False

    @property
    def requires_history(self) -> bool:
        return False


def flip_bit(payload: Any) -> Any:
    """Flip a 0/1 bit; other payloads are returned unchanged.

    Non-bit payloads pass through so that bit-oriented adversaries can
    run against protocols that also exchange control messages.
    """
    if payload == 0:
        return 1
    if payload == 1:
        return 0
    return payload


class SilentAdversary(_ObliviousAdversary):
    """Faulty nodes transmit nothing — malicious degraded to omission."""

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        return {}

    def supports_batch(self, model: str) -> bool:
        return True

    def batch_restrictions(self, model: str) -> frozenset:
        # Stopping never speaks out of turn (LIMITED-legal) but always
        # drops, which the flip restriction forbids.
        return frozenset({Restriction.FULL, Restriction.LIMITED})

    def batch_rewrite(self, round_index: int, faulty: np.ndarray,
                      codes: np.ndarray, codec, model: str) -> np.ndarray:
        return np.full_like(codes, -1)


class ComplementAdversary(_ObliviousAdversary):
    """Flip every bit a faulty node intended to transmit.

    For majority-vote protocols this is the most detrimental
    history-oblivious behaviour: every faulty round contributes a wrong
    vote, so success degrades exactly along the binomial-majority curve
    that the Theorem 2.2 analysis bounds.
    """

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        replacements: Dict[int, Any] = {}
        for node in faulty:
            intent = intents.get(node)
            if intent is None:
                continue
            if view.model == MESSAGE_PASSING:
                replacements[node] = {
                    target: flip_bit(payload) for target, payload in intent.items()
                }
            else:
                replacements[node] = flip_bit(intent)
        return replacements

    def supports_batch(self, model: str) -> bool:
        return True

    def batch_restrictions(self, model: str) -> frozenset:
        # Flipping touches only intended transmissions (LIMITED-legal)
        # and preserves the target set exactly (FLIP-legal on bit
        # alphabets, which supports_batch_payloads separately enforces).
        return frozenset(
            {Restriction.FULL, Restriction.LIMITED, Restriction.FLIP}
        )

    def batch_rewrite(self, round_index: int, faulty: np.ndarray,
                      codes: np.ndarray, codec, model: str) -> np.ndarray:
        # Flip intended transmissions; silence stays silence (the flip
        # table maps -1 to -1), matching the scalar per-node loop.
        return codec.flip_codes(codes)


class RandomFlipAdversary(_ObliviousAdversary):
    """Kučera's flip model: a faulty transmission's bit is always flipped.

    Identical to :class:`ComplementAdversary` in action but kept as a
    separate named adversary because the flip *restriction* requires
    the target set to be preserved exactly (no dropping), which this
    class guarantees by construction.
    """

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        replacements: Dict[int, Any] = {}
        for node in faulty:
            intent = intents.get(node)
            if intent is None:
                continue
            if view.model == MESSAGE_PASSING:
                replacements[node] = {
                    target: flip_bit(payload) for target, payload in intent.items()
                }
            else:
                replacements[node] = flip_bit(intent)
        return replacements

    def supports_batch(self, model: str) -> bool:
        return True

    def batch_restrictions(self, model: str) -> frozenset:
        # Same action as the complement adversary — and the flip
        # restriction is this adversary's native habitat.
        return frozenset(
            {Restriction.FULL, Restriction.LIMITED, Restriction.FLIP}
        )

    def batch_rewrite(self, round_index: int, faulty: np.ndarray,
                      codes: np.ndarray, codec, model: str) -> np.ndarray:
        return codec.flip_codes(codes)


class GarbageAdversary(_ObliviousAdversary):
    """Replace every intended payload with a fixed garbage value.

    Never speaks out of turn, so it is legal under the *limited*
    malicious restriction.  Garbage is distinguishable from both source
    bits, so majority votes simply waste the faulty rounds.
    """

    def __init__(self, garbage: Any = "garbage"):
        if garbage is None:
            raise ValueError("garbage payload must not be None (None is silence)")
        self._garbage = garbage

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        replacements: Dict[int, Any] = {}
        for node in faulty:
            intent = intents.get(node)
            if intent is None:
                continue
            if view.model == MESSAGE_PASSING:
                replacements[node] = {target: self._garbage for target in intent}
            else:
                replacements[node] = self._garbage
        return replacements

    def supports_batch(self, model: str) -> bool:
        try:
            hash(self._garbage)
        except TypeError:
            return False
        return True

    def batch_restrictions(self, model: str) -> frozenset:
        if not self.supports_batch(model):
            return frozenset()
        # Corrupts only intended transmissions (LIMITED-legal by
        # construction); the garbage payload is not a bit, so the flip
        # restriction is out.
        return frozenset({Restriction.FULL, Restriction.LIMITED})

    def batch_rewrite(self, round_index: int, faulty: np.ndarray,
                      codes: np.ndarray, codec, model: str) -> np.ndarray:
        garbage = np.int64(codec.code_of(self._garbage))
        return np.where(codes == -1, np.int64(-1), garbage)

    def batch_payloads(self) -> tuple:
        return (self._garbage,)


class JammingAdversary(_ObliviousAdversary):
    """Radio: faulty nodes always transmit noise, manufacturing collisions.

    Speaking out of turn is the radio adversary's signature weapon (it
    is what makes the Theorem 2.4 threshold depend on the degree): a
    single faulty neighbour can destroy a reception by colliding with
    the legitimate transmitter.
    """

    def __init__(self, noise: Any = "JAM"):
        if noise is None:
            raise ValueError("noise payload must not be None (None is silence)")
        self._noise = noise

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        return {node: self._noise for node in faulty}

    def supports_batch(self, model: str) -> bool:
        if model != RADIO:  # out-of-turn noise is a radio-only weapon
            return False
        try:
            hash(self._noise)
        except TypeError:
            return False
        return True

    def batch_rewrite(self, round_index: int, faulty: np.ndarray,
                      codes: np.ndarray, codec, model: str) -> np.ndarray:
        return np.full_like(codes, codec.code_of(self._noise))

    def batch_payloads(self) -> tuple:
        return (self._noise,)


class RadioWorstCaseAdversary(_ObliviousAdversary):
    """The coordinated radio attack behind the Theorem 2.4 analysis.

    Against a single-transmitter schedule (the tree-phase algorithms)
    the most detrimental radio behaviour coordinates the faulty set:

    * scheduled transmitter faulty — its bit is flipped and every other
      faulty node stays *silent*, so the lie is actually delivered;
    * scheduled transmitter fault-free — every faulty node jams,
      destroying the reception of any listener adjacent to (or being)
      a faulty node.

    A listener of degree ``d`` then hears the correct bit per step with
    probability ``(1-p)^{d+1}`` (its whole closed neighbourhood
    fault-free) and the flipped bit with probability ``p`` — exactly
    the trinomial of the Theorem 2.4 proof that
    :func:`repro.fastsim.tree_chain.sample_simple_malicious_radio`
    samples.  When several nodes intend to transmit at once (not a
    tree-phase schedule) the attack degrades gracefully: intended
    transmissions of faulty nodes are flipped and faulty silent nodes
    jam.
    """

    def __init__(self, noise: Any = "JAM"):
        if noise is None:
            raise ValueError("noise payload must not be None (None is silence)")
        self._noise = noise

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        replacements: Dict[int, Any] = {}
        if len(intents) == 1:
            (transmitter, intent), = intents.items()
            if transmitter in faulty:
                # Deliver the flip: all other faulty nodes keep quiet.
                return {transmitter: flip_bit(intent)}
            return {node: self._noise for node in faulty}
        for node in faulty:
            intent = intents.get(node)
            replacements[node] = (
                self._noise if intent is None else flip_bit(intent)
            )
        return replacements

    def supports_batch(self, model: str) -> bool:
        if model != RADIO:
            return False
        try:
            hash(self._noise)
        except TypeError:
            return False
        return True

    def batch_rewrite(self, round_index: int, faulty: np.ndarray,
                      codes: np.ndarray, codec, model: str) -> np.ndarray:
        noise = np.int64(codec.code_of(self._noise))
        # General (multi-intent) attack: flip intended transmissions,
        # jam from intended silence.
        replacements = np.where(codes == -1, noise, codec.flip_codes(codes))
        transmitting = codes != -1
        single = transmitting.sum(axis=1) == 1
        if single.any():
            rows = np.nonzero(single)[0]
            speaker = np.argmax(transmitting[rows], axis=1)
            speaker_faulty = faulty[rows, speaker]
            # Scheduled transmitter faulty: its flip is delivered and
            # every other faulty node keeps quiet so the lie lands.
            lie_rows = rows[speaker_faulty]
            lie_speakers = speaker[speaker_faulty]
            flipped = replacements[lie_rows, lie_speakers]
            replacements[lie_rows, :] = -1
            replacements[lie_rows, lie_speakers] = flipped
            # Scheduled transmitter fault-free: every faulty node jams
            # (the composition keeps fault-free intents untouched).
            jam_rows = rows[~speaker_faulty]
            replacements[jam_rows, :] = noise
        return replacements

    def batch_payloads(self) -> tuple:
        return (self._noise,)


class SlowingAdversary(Adversary):
    """The proofs' slowing reduction, as an adversary combinator.

    With raw fault probability ``p`` and desired effective malicious
    rate ``target <= p``, each faulty node independently *stays
    malicious* with probability ``target / p`` and otherwise behaves
    exactly fault-free (its intent passes through).  The surviving
    faulty set is handed to the inner adversary.

    This realises the reductions in Theorems 2.3 and 2.4: e.g. for
    ``p > 1/2`` the adversary tosses a coin with heads probability
    ``(p - 1/2)/p`` and "delivers the correct message if heads turns
    up", which is precisely staying-malicious probability
    ``(1/2)/p = target/p``.
    """

    def __init__(self, inner: Adversary, p: float, target: float):
        self._p = check_probability(p, "p", allow_zero=False)
        self._target = check_probability(target, "target", allow_zero=True)
        if target > p:
            raise ValueError(
                f"cannot slow failures upwards: target {target} > p {p}"
            )
        self._inner = inner
        self._keep_probability = target / p

    @property
    def inner(self) -> Adversary:
        """The wrapped adversary that handles the surviving faulty set."""
        return self._inner

    @property
    def raw_rate(self) -> float:
        """The raw fault probability ``p`` the slowing was derived for."""
        return self._p

    @property
    def effective_rate(self) -> float:
        """The effective malicious failure probability after slowing."""
        return self._target

    @property
    def requires_history(self) -> bool:
        return self._inner.requires_history

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        stream = view.adversary_stream
        still_faulty = frozenset(
            node for node in sorted(faulty)
            if stream.bernoulli(self._keep_probability)
        )
        replacements: Dict[int, Any] = {}
        for node in faulty - still_faulty:
            intent = intents.get(node)
            if intent is not None:
                replacements[node] = intent
        if still_faulty:
            replacements.update(
                self._inner.rewrite(round_index, still_faulty, intents, view)
            )
        return replacements

    # -- batched execution ----------------------------------------------
    def supports_batch(self, model: str) -> bool:
        return bool(self.batch_restrictions(model))

    def batch_restrictions(self, model: str) -> frozenset:
        if self._inner.consumes_adversary_stream:
            # The replay below reproduces only this wrapper's coin
            # tosses; a randomised inner adversary (e.g. a nested
            # slowing reduction) would interleave its own draws on the
            # same stream, which the replay cannot reconstruct.
            return frozenset()
        # Releasing a node passes its intent through untouched — the
        # fault-free behaviour, legal under every restriction — so the
        # wrapper certifies exactly what the inner adversary certifies.
        return self._inner.batch_restrictions(model)

    def batch_payloads(self) -> tuple:
        return self._inner.batch_payloads()

    def thin_faulty_batch(self, trial_streams, masks):
        """Replay the per-trial slowing coins onto the faulty masks.

        The scalar :meth:`rewrite` draws one Bernoulli per faulty node
        — in round order, then ascending node order, and only in rounds
        with at least one faulty node — from the execution's
        ``child("adversary")`` stream; that is exactly one draw per set
        mask bit, in the row-major order of the ``(rounds, order)``
        mask.  Numpy generators fill vector draws sequentially, so one
        ``random(count)`` per trial replays those coins bit for bit,
        and the released nodes simply drop out of the faulty masks
        (their intents then pass through like any fault-free node's).
        """
        thinned = masks.copy()
        for index, stream in enumerate(trial_streams):
            flat = masks[index].reshape(-1)
            count = int(np.count_nonzero(flat))
            if count == 0:
                continue
            keep = (stream.child("adversary").generator.random(count)
                    < self._keep_probability)
            surviving = np.zeros(flat.shape, dtype=bool)
            surviving[np.nonzero(flat)[0]] = keep
            thinned[index] = surviving.reshape(masks[index].shape)
        return thinned

    def batch_rewrite(self, round_index: int, faulty: np.ndarray,
                      codes: np.ndarray, codec, model: str) -> np.ndarray:
        # thin_faulty_batch already released the lucky nodes from the
        # masks, so the surviving faulty set goes straight through.
        return self._inner.batch_rewrite(round_index, faulty, codes, codec,
                                         model)

    def describe(self) -> str:
        return (f"SlowingAdversary({self._inner.describe()}, "
                f"p={self._p:g} -> {self._target:g})")
