"""Failure-model interface and the fault-free / omission models.

The paper's fault scenario: *"In every step, the transmissions of each
node fail with constant probability 0 < p < 1.  Transmission failures
of different nodes are independent, and so are transmission failures of
the same node in different steps."*  Faults hit only the transmission
component; memory and control state are never touched, so a node that
is fault-free in a later step behaves normally again.

A :class:`FailureModel` does two things each round:

1. sample the set of faulty transmitters (i.i.d. Bernoulli(p)), and
2. transform the protocols' intents into the *actual* transmissions
   placed on the medium.

Node-omission semantics: a faulty node "does not send any messages
during that step" — its transmissions are dropped, everything received
can be trusted.  Because an omission-faulty transmitter is silent, it
does not occupy the radio medium, so the node can still *receive* in
that round; this matters only for schedules with simultaneous
transmitters (Theorem 3.4) and is the reading consistent with the
paper's analysis.

Heterogeneous rates
-------------------
Following the noisy-broadcast direction of Censor-Hillel et al.
(PAPERS.md), :class:`OmissionFailures` also accepts a per-node rate
vector ``p_v`` (one Bernoulli rate per transmitter).  Scalar ``p`` and
vector ``p_v`` draw through the same stream consumption pattern, so a
model built either way is bit-compatible with the engine's per-trial
streams.

Batched execution hooks
-----------------------
History-oblivious models additionally support the vectorised
:mod:`repro.batchsim` engine through three hooks:

* :meth:`FailureModel.supports_batch` — eligibility predicate;
* :meth:`FailureModel.sample_failures_batch` — stack the per-round
  faulty-transmitter masks of a whole trial batch, consuming each
  trial's ``child("faults")`` stream **exactly** like the scalar
  engine's round-by-round :meth:`sample_faulty` calls (this is what
  makes batched indicators bit-identical to scalar ones);
* :meth:`FailureModel.apply_batch` — the vectorised counterpart of
  :meth:`apply`, operating on ``(batch, n)`` payload-code arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, FrozenSet, Optional, Sequence

import numpy as np

from repro._validation import check_probability
from repro.rng import RngStream

__all__ = ["FailureModel", "FaultFree", "OmissionFailures"]


def _check_rate_vector(p_v) -> np.ndarray:
    """Validate a per-node rate vector: 1-D, every entry in [0, 1)."""
    rates = np.asarray(p_v, dtype=float)
    if rates.ndim != 1 or rates.size == 0:
        raise ValueError(
            f"p_v must be a non-empty 1-D rate vector, got shape {rates.shape}"
        )
    if not ((rates >= 0.0) & (rates < 1.0)).all():
        raise ValueError("every entry of p_v must lie in [0, 1)")
    rates = rates.copy()
    rates.setflags(write=False)
    return rates


class FailureModel(ABC):
    """Samples transmitter faults and applies their semantics.

    Parameters
    ----------
    p:
        Per-node per-round transmitter failure probability (uniform).
    p_v:
        Optional per-node rate vector replacing the uniform ``p``; its
        length must equal the topology order of the executions the
        model is used with.  Give exactly one of ``p`` / ``p_v``.
    """

    def __init__(self, p: Optional[float] = None,
                 p_v: Optional[Sequence[float]] = None):
        if (p is None) == (p_v is None):
            raise ValueError("give exactly one of p and p_v")
        if p_v is not None:
            self._p_v: Optional[np.ndarray] = _check_rate_vector(p_v)
            self._p = None
        else:
            self._p_v = None
            self._p = check_probability(p, "p", allow_zero=True,
                                        allow_one=False)

    @property
    def p(self) -> float:
        """The uniform per-round failure probability.

        Raises ``ValueError`` when the model was built with a per-node
        vector — callers that can handle heterogeneous rates must read
        :attr:`p_vector` first.
        """
        if self._p is None:
            raise ValueError(
                "failure model carries heterogeneous per-node rates; "
                "read p_vector instead of p"
            )
        return self._p

    @property
    def p_vector(self) -> Optional[np.ndarray]:
        """The per-node rate vector, or ``None`` for a uniform model."""
        return self._p_v

    def rates(self, order: int):
        """Per-round rates for a network of ``order`` nodes.

        Returns the scalar ``p`` for uniform models, or the validated
        ``(order,)`` vector for heterogeneous ones.
        """
        if self._p_v is None:
            return self._p
        if self._p_v.size != order:
            raise ValueError(
                f"p_v has {self._p_v.size} entries but the network has "
                f"{order} nodes"
            )
        return self._p_v

    @property
    def requires_history(self) -> bool:
        """Whether :meth:`apply` consults the execution trace.

        The engine builds its internal round-by-round trace only when
        the failure model (or its adversary) declares it needs history;
        history-oblivious models let trace-free executions skip that
        bookkeeping entirely.  The base class answers ``True`` — the
        safe default for arbitrary subclasses — and the built-in
        oblivious models override it.
        """
        return True

    def sample_faulty(self, stream: RngStream, order: int) -> FrozenSet[int]:
        """Sample the faulty-transmitter set for one round."""
        rates = self.rates(order)
        if self._p_v is None:
            if rates == 0.0:
                return frozenset()
            mask = stream.bernoulli(rates, size=order)
        else:
            # Same stream consumption as the scalar bernoulli draw —
            # one uniform per node — so uniform and per-node models
            # share the engine's bit-exact per-trial streams.
            mask = stream.random(order) < rates
        return frozenset(int(node) for node in mask.nonzero()[0])

    @abstractmethod
    def apply(self, round_index: int, faulty: FrozenSet[int],
              intents: Dict[int, Any], view) -> Dict[int, Any]:
        """Turn intents into actual transmissions.

        Parameters
        ----------
        round_index:
            Current 0-based round.
        faulty:
            Nodes whose transmitter failed this round.
        intents:
            ``node -> intent`` for nodes that intend to transmit
            (silent nodes are absent).  Message-passing intents are
            ``dict`` target→payload; radio intents are single payloads.
        view:
            The :class:`repro.engine.simulator.ExecutionView`, giving
            adaptive adversaries the topology, history and metadata.

        Returns
        -------
        ``node -> transmission`` for nodes that actually transmit.
        """

    # -- batched-execution hooks ----------------------------------------
    def supports_batch(self, model: str) -> bool:
        """Whether :mod:`repro.batchsim` can reproduce this model exactly.

        ``model`` is the communication model of the algorithm under
        test (some adversaries are expressible only in one medium).
        The conservative base answer is ``False``; the built-in
        oblivious models override it.
        """
        return False

    def sample_failures_batch(self, trial_streams: Sequence[RngStream],
                              rounds: int, order: int) -> np.ndarray:
        """Stacked faulty-transmitter masks for a batch of trials.

        Returns a ``(len(trial_streams), rounds, order)`` boolean array
        whose trial ``b`` slice consumes ``trial_streams[b]``'s
        ``child("faults")`` stream exactly as ``rounds`` consecutive
        :meth:`sample_faulty` calls would — numpy generators fill
        multi-round draws sequentially, so one ``(rounds, order)`` draw
        per trial reproduces the scalar engine's masks bit for bit.
        """
        batch = len(trial_streams)
        masks = np.zeros((batch, rounds, order), dtype=bool)
        rates = self.rates(order)
        if self._p_v is None and rates == 0.0:
            return masks
        for index, stream in enumerate(trial_streams):
            generator = stream.child("faults").generator
            masks[index] = generator.random((rounds, order)) < rates
        return masks

    def apply_batch(self, round_index: int, faulty: np.ndarray,
                    codes: np.ndarray, codec, model: str) -> np.ndarray:
        """Vectorised :meth:`apply` over ``(batch, n)`` payload codes.

        ``codes`` holds one payload code per (trial, node) with ``-1``
        for silence; the return value has the same shape and encoding.
        Only models answering ``True`` from :meth:`supports_batch` need
        to implement this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support batched execution"
        )

    def batch_payloads(self) -> tuple:
        """Extra payloads this model can inject into an execution.

        Fed into the batched scenario's payload codec; oblivious
        adversaries report their noise / garbage values here.
        """
        return ()

    def supports_batch_payloads(self, payloads) -> bool:
        """Whether batched execution stays exact on this payload alphabet.

        Called with the scenario codec's full (flip-closed) alphabet
        after :meth:`supports_batch` accepted the scenario shape.
        Restriction-enforcing models override this — e.g. the flip
        restriction requires an all-bit alphabet, since the scalar
        engine would reject any other payload mid-execution.
        """
        return True

    def describe(self) -> str:
        """One-line description for experiment tables."""
        if self._p_v is not None:
            return (f"{type(self).__name__}(p_v=[{self._p_v.min():g}"
                    f"..{self._p_v.max():g}], n={self._p_v.size})")
        return f"{type(self).__name__}(p={self._p:g})"


class FaultFree(FailureModel):
    """No failures at all (``p = 0``); intents pass through unchanged."""

    def __init__(self):
        super().__init__(0.0)

    @property
    def requires_history(self) -> bool:
        return False

    def supports_batch(self, model: str) -> bool:
        return True

    def apply(self, round_index: int, faulty: FrozenSet[int],
              intents: Dict[int, Any], view) -> Dict[int, Any]:
        return dict(intents)

    def apply_batch(self, round_index: int, faulty: np.ndarray,
                    codes: np.ndarray, codec, model: str) -> np.ndarray:
        return codes


class OmissionFailures(FailureModel):
    """Node-omission transmission failures (Section 2.1).

    A faulty node's entire round of transmissions is silently dropped.
    In the message-passing model this drops the messages to *all*
    neighbours at once, matching the paper's single per-node transmitter
    component.

    Pass ``p_v`` (an ``(n,)`` rate vector) instead of ``p`` for the
    heterogeneous per-node workload: node ``v``'s transmitter then
    fails each round with probability ``p_v[v]``.
    """

    def __init__(self, p: Optional[float] = None,
                 p_v: Optional[Sequence[float]] = None):
        super().__init__(p, p_v)

    @property
    def requires_history(self) -> bool:
        return False

    def supports_batch(self, model: str) -> bool:
        return True

    def apply(self, round_index: int, faulty: FrozenSet[int],
              intents: Dict[int, Any], view) -> Dict[int, Any]:
        return {
            node: intent for node, intent in intents.items() if node not in faulty
        }

    def apply_batch(self, round_index: int, faulty: np.ndarray,
                    codes: np.ndarray, codec, model: str) -> np.ndarray:
        return np.where(faulty, np.int64(-1), codes)
