"""Failure-model interface and the fault-free / omission models.

The paper's fault scenario: *"In every step, the transmissions of each
node fail with constant probability 0 < p < 1.  Transmission failures
of different nodes are independent, and so are transmission failures of
the same node in different steps."*  Faults hit only the transmission
component; memory and control state are never touched, so a node that
is fault-free in a later step behaves normally again.

A :class:`FailureModel` does two things each round:

1. sample the set of faulty transmitters (i.i.d. Bernoulli(p)), and
2. transform the protocols' intents into the *actual* transmissions
   placed on the medium.

Node-omission semantics: a faulty node "does not send any messages
during that step" — its transmissions are dropped, everything received
can be trusted.  Because an omission-faulty transmitter is silent, it
does not occupy the radio medium, so the node can still *receive* in
that round; this matters only for schedules with simultaneous
transmitters (Theorem 3.4) and is the reading consistent with the
paper's analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, FrozenSet

from repro._validation import check_probability
from repro.rng import RngStream

__all__ = ["FailureModel", "FaultFree", "OmissionFailures"]


class FailureModel(ABC):
    """Samples transmitter faults and applies their semantics.

    Parameters
    ----------
    p:
        Per-node per-round transmitter failure probability.
    """

    def __init__(self, p: float):
        self._p = check_probability(p, "p", allow_zero=True, allow_one=False)

    @property
    def p(self) -> float:
        """The per-round failure probability."""
        return self._p

    @property
    def requires_history(self) -> bool:
        """Whether :meth:`apply` consults the execution trace.

        The engine builds its internal round-by-round trace only when
        the failure model (or its adversary) declares it needs history;
        history-oblivious models let trace-free executions skip that
        bookkeeping entirely.  The base class answers ``True`` — the
        safe default for arbitrary subclasses — and the built-in
        oblivious models override it.
        """
        return True

    def sample_faulty(self, stream: RngStream, order: int) -> FrozenSet[int]:
        """Sample the faulty-transmitter set for one round."""
        if self._p == 0.0:
            return frozenset()
        mask = stream.bernoulli(self._p, size=order)
        return frozenset(int(node) for node in mask.nonzero()[0])

    @abstractmethod
    def apply(self, round_index: int, faulty: FrozenSet[int],
              intents: Dict[int, Any], view) -> Dict[int, Any]:
        """Turn intents into actual transmissions.

        Parameters
        ----------
        round_index:
            Current 0-based round.
        faulty:
            Nodes whose transmitter failed this round.
        intents:
            ``node -> intent`` for nodes that intend to transmit
            (silent nodes are absent).  Message-passing intents are
            ``dict`` target→payload; radio intents are single payloads.
        view:
            The :class:`repro.engine.simulator.ExecutionView`, giving
            adaptive adversaries the topology, history and metadata.

        Returns
        -------
        ``node -> transmission`` for nodes that actually transmit.
        """

    def describe(self) -> str:
        """One-line description for experiment tables."""
        return f"{type(self).__name__}(p={self._p:g})"


class FaultFree(FailureModel):
    """No failures at all (``p = 0``); intents pass through unchanged."""

    def __init__(self):
        super().__init__(0.0)

    @property
    def requires_history(self) -> bool:
        return False

    def apply(self, round_index: int, faulty: FrozenSet[int],
              intents: Dict[int, Any], view) -> Dict[int, Any]:
        return dict(intents)


class OmissionFailures(FailureModel):
    """Node-omission transmission failures (Section 2.1).

    A faulty node's entire round of transmissions is silently dropped.
    In the message-passing model this drops the messages to *all*
    neighbours at once, matching the paper's single per-node transmitter
    component.
    """

    @property
    def requires_history(self) -> bool:
        return False

    def apply(self, round_index: int, faulty: FrozenSet[int],
              intents: Dict[int, Any], view) -> Dict[int, Any]:
        return {
            node: intent for node, intent in intents.items() if node not in faulty
        }
