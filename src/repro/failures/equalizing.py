"""The impossibility-proof "equalizing" adversaries (Theorems 2.3, 2.4).

Both proofs run the same play: whenever the source's transmitter
fails, the adversary makes it behave *exactly as it would have behaved
had the source message been the opposite bit*.  When the failure rate
matches the success rate of legitimate receptions, the receiver's
posterior over the source message stays at 1/2 forever, so any
algorithm errs with probability 1/2.

To behave "as if the message were flipped", the adversary maintains a
*counterfactual twin* of the source protocol: an identical protocol
instance initialised with the flipped source message and fed the very
same deliveries the real source receives.  Because the paper's
algorithms are deterministic, the twin's intent in round ``t`` is
exactly ``A_{1-Ms}(σ)`` from the proofs.

Algorithms that want to face these adversaries implement
:class:`SourceTwinnable` so the adversary can construct the twin.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, Protocol as TypingProtocol

from repro._validation import check_probability
from repro.engine.protocol import MESSAGE_PASSING, RADIO, Protocol
from repro.failures.malicious import Adversary

__all__ = [
    "SourceTwinnable",
    "CounterfactualTwin",
    "EqualizingMpAdversary",
    "EqualizingStarAdversary",
]


class SourceTwinnable(TypingProtocol):
    """Algorithms able to spawn a counterfactual twin of their source.

    The twin must be a fresh protocol instance for the source node,
    identical in every respect except for carrying ``flipped_message``
    as the source message.
    """

    def counterfactual_source(self, flipped_message: Any) -> Protocol:
        """Build the source protocol with the flipped message."""
        ...  # pragma: no cover - typing protocol


class CounterfactualTwin:
    """Runs a twin source protocol one round behind the real execution.

    The twin is lazily caught up: before asking for its round-``t``
    intent, all deliveries the real source received in rounds
    ``< t`` (read from the trace) are replayed into it.
    """

    def __init__(self, twin: Protocol, source: int, model: str,
                 trace=None):
        self._twin = twin
        self._source = source
        self._model = model
        self._rounds_fed = 0
        #: The execution trace this twin replays (identity marks the
        #: execution the twin belongs to; see ``_ensure_twin``).
        self.trace = trace

    def intent(self, round_index: int, view) -> Any:
        """The twin's intent for ``round_index`` (``A_{1-Ms}(σ)``)."""
        self._catch_up(view)
        if self._rounds_fed != round_index:
            raise RuntimeError(
                f"counterfactual twin out of sync: fed {self._rounds_fed} "
                f"rounds, asked for round {round_index}"
            )
        return self._twin.intent(round_index)

    def _catch_up(self, view) -> None:
        """Replay completed-round deliveries into the twin."""
        trace = view.trace
        while self._rounds_fed < len(trace):
            record = trace[self._rounds_fed]
            if self._model == MESSAGE_PASSING:
                delivered = record.deliveries.get(self._source, {})
            else:
                delivered = record.deliveries.get(self._source)
            self._twin.deliver(record.round_index, delivered)
            self._rounds_fed += 1


class EqualizingMpAdversary(Adversary):
    """The Theorem 2.3 adversary for the two-node message-passing graph.

    Whenever the source is faulty, it transmits what the counterfactual
    twin (opposite source message) would transmit — including speaking
    out of turn when the twin speaks and the real source is silent, and
    staying silent when the twin is silent.  At ``p = 1/2`` this makes
    the delivered transcript distribution identical under both source
    messages, so the receiver errs with probability exactly 1/2.  For
    ``p > 1/2``, wrap in :class:`~repro.failures.adversaries.SlowingAdversary`
    with target ``1/2``.

    Non-source faulty nodes are made to behave fault-free (the proof
    assumes the reverse channel is fully reliable).
    """

    def __init__(self, source: int = 0):
        self._source = source
        self._twin: Optional[CounterfactualTwin] = None

    @property
    def source(self) -> int:
        """The twinned source node."""
        return self._source

    def _ensure_twin(self, view) -> CounterfactualTwin:
        self._twin = _fresh_twin_for(self._twin, self._source, view)
        return self._twin

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        replacements: Dict[int, Any] = {}
        for node in faulty:
            if node == self._source:
                twin_intent = self._ensure_twin(view).intent(round_index, view)
                if twin_intent is not None:
                    replacements[node] = twin_intent
            else:
                # Reverse channel stays effectively reliable.
                intent = intents.get(node)
                if intent is not None:
                    replacements[node] = intent
        return replacements


class EqualizingStarAdversary(Adversary):
    """The Theorem 2.4 adversary on the star (source = a leaf).

    Let ``S`` be the set of steps in which the algorithm instructs the
    source ``s`` to transmit while the star root ``v`` and all of its
    other neighbours keep silent.  The policy (proof of Claim 2.3),
    assuming the effective failure rate has been slowed to
    ``q = (1-p)^{Δ+1}``:

    * step outside ``S`` — every faulty node behaves as if fault-free;
    * step in ``S``, source faulty — all other faulty nodes keep
      silent and the source transmits the counterfactual twin's
      message (opposite source message);
    * step in ``S``, source fault-free — every faulty node transmits a
      non-empty noise message (colliding with the source at ``v``).

    The net effect: ``v`` hears the *flipped* message with the same
    probability it hears the true one, and silence with equal
    probability under either message, so its posterior never moves.

    Use with a star topology whose root is ``center`` and whose source
    is a leaf; wrap in a slowing adversary when ``p > (1-p)^{Δ+1}``.
    """

    def __init__(self, source: int, center: int, noise: Any = "JAM"):
        if source == center:
            raise ValueError("source must be a leaf, not the star center")
        if noise is None:
            raise ValueError("noise payload must not be None (None is silence)")
        self._source = source
        self._center = center
        self._noise = noise
        self._twin: Optional[CounterfactualTwin] = None

    @property
    def source(self) -> int:
        """The leaf source ``s`` the attack twins."""
        return self._source

    @property
    def center(self) -> int:
        """The star root ``v`` whose posterior the attack pins."""
        return self._center

    def _ensure_twin(self, view) -> CounterfactualTwin:
        self._twin = _fresh_twin_for(self._twin, self._source, view)
        return self._twin

    def _in_critical_set(self, intents: Dict[int, Any], view) -> bool:
        """Whether this step belongs to the set ``S`` of the proof."""
        if self._source not in intents:
            return False
        if self._center in intents:
            return False
        other_neighbours = [
            node for node in view.topology.neighbors(self._center)
            if node != self._source
        ]
        return all(node not in intents for node in other_neighbours)

    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        if view.model != RADIO:
            raise ValueError("EqualizingStarAdversary only applies to radio")
        twin = self._ensure_twin(view)
        twin_intent = twin.intent(round_index, view)
        replacements: Dict[int, Any] = {}
        if not self._in_critical_set(intents, view):
            # Outside S: faulty nodes behave exactly as fault-free.
            for node in faulty:
                intent = intents.get(node)
                if intent is not None:
                    replacements[node] = intent
            return replacements
        if self._source in faulty:
            # Source faulty: it plays the twin; other faulty nodes silent.
            if twin_intent is not None:
                replacements[self._source] = twin_intent
        else:
            # Source fault-free: every faulty node jams.
            for node in faulty:
                replacements[node] = self._noise
        return replacements


def _fresh_twin_for(current: Optional[CounterfactualTwin], source: int,
                    view) -> CounterfactualTwin:
    """``current`` if it belongs to this execution, else a new twin.

    One adversary instance may serve a whole Monte-Carlo batch (the
    :class:`repro.montecarlo.TrialRunner` shares the failure model
    across trials), so the twin must restart whenever a new execution
    begins.  Executions are told apart by the identity of their trace
    object; the twin keeps a strong reference to it, so the id cannot
    be recycled while the comparison matters.
    """
    if current is not None and current.trace is view.trace:
        return current
    algorithm = view.algorithm
    if not hasattr(algorithm, "counterfactual_source"):
        raise TypeError(
            f"{type(algorithm).__name__} does not support "
            f"counterfactual twinning (needs counterfactual_source())"
        )
    true_message = view.metadata["source_message"]
    twin_protocol = algorithm.counterfactual_source(_flip(true_message))
    return CounterfactualTwin(twin_protocol, source, view.model,
                              trace=view.trace)


def _flip(message: Any) -> Any:
    """Flip a binary source message."""
    if message == 0:
        return 1
    if message == 1:
        return 0
    raise ValueError(
        f"equalizing adversaries need a binary source message, got {message!r}"
    )
