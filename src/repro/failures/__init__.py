"""Failure substrate: omission and malicious transmission failures.

The paper's fault model — each node's transmitter fails independently
with probability ``p`` per round — is :class:`OmissionFailures`;
``OmissionFailures(p_v=[...])`` replaces the uniform rate with one
Bernoulli rate per transmitter (the heterogeneous noisy-broadcast
workload of PAPERS.md), drawing through the same stream-consumption
pattern so both forms stay bit-compatible with the engine's per-trial
streams.  :class:`MaliciousFailures` drives an :class:`Adversary`
(oblivious attacks, the coordinated radio worst case, the randomised
:class:`SlowingAdversary` rate reduction, the adaptive equalizing
constructions) under an enforced :class:`Restriction` level.  All
history-oblivious models also implement the vectorised
:mod:`repro.batchsim` hooks — see :mod:`repro.failures.base` and
:mod:`repro.failures.malicious` for the batch contracts.
"""

from repro.failures.adversaries import (
    ComplementAdversary,
    GarbageAdversary,
    JammingAdversary,
    RadioWorstCaseAdversary,
    RandomFlipAdversary,
    SilentAdversary,
    SlowingAdversary,
    flip_bit,
)
from repro.failures.base import FailureModel, FaultFree, OmissionFailures
from repro.failures.equalizing import (
    CounterfactualTwin,
    EqualizingMpAdversary,
    EqualizingStarAdversary,
    SourceTwinnable,
)
from repro.failures.malicious import Adversary, MaliciousFailures, Restriction

__all__ = [
    "FailureModel",
    "FaultFree",
    "OmissionFailures",
    "Adversary",
    "MaliciousFailures",
    "Restriction",
    "SilentAdversary",
    "ComplementAdversary",
    "RandomFlipAdversary",
    "GarbageAdversary",
    "JammingAdversary",
    "RadioWorstCaseAdversary",
    "SlowingAdversary",
    "flip_bit",
    "EqualizingMpAdversary",
    "EqualizingStarAdversary",
    "CounterfactualTwin",
    "SourceTwinnable",
]
