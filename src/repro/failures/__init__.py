"""Failure substrate: omission and malicious transmission failures."""

from repro.failures.adversaries import (
    ComplementAdversary,
    GarbageAdversary,
    JammingAdversary,
    RadioWorstCaseAdversary,
    RandomFlipAdversary,
    SilentAdversary,
    SlowingAdversary,
    flip_bit,
)
from repro.failures.base import FailureModel, FaultFree, OmissionFailures
from repro.failures.equalizing import (
    CounterfactualTwin,
    EqualizingMpAdversary,
    EqualizingStarAdversary,
    SourceTwinnable,
)
from repro.failures.malicious import Adversary, MaliciousFailures, Restriction

__all__ = [
    "FailureModel",
    "FaultFree",
    "OmissionFailures",
    "Adversary",
    "MaliciousFailures",
    "Restriction",
    "SilentAdversary",
    "ComplementAdversary",
    "RandomFlipAdversary",
    "GarbageAdversary",
    "JammingAdversary",
    "RadioWorstCaseAdversary",
    "SlowingAdversary",
    "flip_bit",
    "EqualizingMpAdversary",
    "EqualizingStarAdversary",
    "CounterfactualTwin",
    "SourceTwinnable",
]
