"""Malicious transmission failures and the adversary interface.

A malicious transmission failure "can cause the transmission component
of a faulty node to behave arbitrarily, by either stopping, or altering
transmitted messages in a way most detrimental to the communication
process.  It can also transmit in steps in which the algorithm requires
it to remain silent."  The adversary is *adaptive*: it sees the full
execution history.

Three strength levels are modelled, matching the paper:

``FULL``
    Anything goes: corrupt, drop, or speak out of turn.  This is the
    model of Theorems 2.2–2.4.
``LIMITED``
    "a failure cannot cause a link to speak out of turn" (Section 3's
    *limited malicious* model, used by Theorem 3.2 and the hello
    protocol): a faulty node may corrupt or drop its intended
    transmissions, but a silent node stays silent.
``FLIP``
    Kučera's flip model: payloads are bits and the only failure is a
    bit flip — no loss, no out-of-turn transmissions.

The engine enforces the declared level on whatever the adversary
returns, so a buggy adversary cannot silently exceed its powers.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Dict, FrozenSet, Optional

import numpy as np

from repro.engine.protocol import MESSAGE_PASSING, RADIO
from repro.failures.base import FailureModel

__all__ = ["Restriction", "Adversary", "MaliciousFailures"]


class Restriction(enum.Enum):
    """How much damage a faulty transmitter may do."""

    FULL = "full"
    LIMITED = "limited"
    FLIP = "flip"


class Adversary(ABC):
    """Adaptive adversary controlling faulty transmitters.

    Once per round the engine calls :meth:`rewrite` with every node's
    intent and the execution view (topology, trace so far, metadata
    such as the source message, and a private random stream).  The
    adversary returns replacement transmissions for the *faulty* nodes
    only; returning nothing for a faulty node means that node is
    silent.
    """

    @abstractmethod
    def rewrite(self, round_index: int, faulty: FrozenSet[int],
                intents: Dict[int, Any], view) -> Dict[int, Any]:
        """Return ``node -> transmission`` for (a subset of) ``faulty``."""

    @property
    def requires_history(self) -> bool:
        """Whether :meth:`rewrite` consults ``view.trace``.

        Adaptive adversaries (the equalizing constructions) need the
        round-by-round history; history-oblivious adversaries override
        this to ``False`` so trace-free executions can skip building
        the internal trace.  The conservative default is ``True``.
        """
        return True

    #: Whether :meth:`rewrite` draws from ``view.adversary_stream``.
    #: The conservative default is ``True``; randomness-free adversaries
    #: override it so stream-replaying wrappers (the slowing reduction)
    #: can certify batched bit-identity.
    consumes_adversary_stream: bool = True

    # -- batched-execution hooks ----------------------------------------
    def supports_batch(self, model: str) -> bool:
        """Whether :meth:`batch_rewrite` reproduces this adversary exactly.

        Answered per communication model (the jamming attacks only
        exist in radio).  Conservative default: ``False``.
        """
        return False

    def batch_restrictions(self, model: str) -> frozenset:
        """Restriction levels the batched rewrite is provably legal under.

        The batched path skips the scalar engine's per-round
        restriction enforcement, so an adversary must *certify* each
        level: membership means every behaviour :meth:`batch_rewrite`
        can produce would pass the scalar checks for that level (e.g.
        a rewrite that never speaks out of turn is legal under
        ``LIMITED``).  The default certifies only ``FULL`` — where all
        behaviours are legal by definition — and only when
        :meth:`supports_batch` holds.
        """
        if self.supports_batch(model):
            return frozenset({Restriction.FULL})
        return frozenset()

    def thin_faulty_batch(self, trial_streams, masks):
        """Hook for wrappers that release faulty nodes with private coins.

        Called once per trial chunk by
        :meth:`MaliciousFailures.sample_failures_batch` with the
        per-trial root streams and the ``(batch, rounds, order)``
        faulty masks; the returned masks replace them.  The slowing
        reduction replays its Bernoulli releases here so batched
        executions stay bit-identical; everything else passes the
        masks through unchanged.
        """
        return masks

    def batch_rewrite(self, round_index: int, faulty: np.ndarray,
                      codes: np.ndarray, codec, model: str) -> np.ndarray:
        """Vectorised :meth:`rewrite` over ``(batch, n)`` payload codes.

        Returns the replacement codes of the *faulty* positions (the
        caller composes them with the untouched fault-free intents);
        entries at fault-free positions are ignored.  ``-1`` silences a
        faulty node, matching a missing scalar replacement.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support batched execution"
        )

    def batch_payloads(self) -> tuple:
        """Payloads :meth:`batch_rewrite` can inject (noise, garbage)."""
        return ()

    def describe(self) -> str:
        """One-line description for experiment tables."""
        return type(self).__name__


def _check_limited_mp(node: int, intent: Optional[Dict[int, Any]],
                      replacement: Optional[Dict[int, Any]]) -> None:
    """Limited malicious, message passing: targets ⊆ intended targets."""
    if replacement is None:
        return
    intended_targets = set(intent or {})
    extra = set(replacement) - intended_targets
    if extra:
        raise ValueError(
            f"limited-malicious adversary made node {node} speak out of "
            f"turn to {sorted(extra)}"
        )


def _check_flip_mp(node: int, intent: Optional[Dict[int, Any]],
                   replacement: Optional[Dict[int, Any]]) -> None:
    """Flip model, message passing: same targets, payloads flipped bits."""
    intended = intent or {}
    actual = replacement or {}
    if set(actual) != set(intended):
        raise ValueError(
            f"flip adversary changed the target set of node {node}"
        )
    for target, payload in actual.items():
        original = intended[target]
        if original not in (0, 1) or payload not in (0, 1):
            raise ValueError(
                f"flip model requires bit payloads on edge ({node}, {target})"
            )


def _check_limited_radio(node: int, intent: Any, replacement: Any) -> None:
    """Limited malicious, radio: silence must stay silence."""
    if intent is None and replacement is not None:
        raise ValueError(
            f"limited-malicious adversary made node {node} speak out of turn"
        )


def _check_flip_radio(node: int, intent: Any, replacement: Any) -> None:
    """Flip model, radio: transmissions stay, payloads are bits."""
    if (intent is None) != (replacement is None):
        raise ValueError(
            f"flip adversary added or removed a transmission of node {node}"
        )
    if intent is not None and (intent not in (0, 1) or replacement not in (0, 1)):
        raise ValueError(f"flip model requires bit payloads at node {node}")


class MaliciousFailures(FailureModel):
    """Malicious transmission failures driven by an :class:`Adversary`.

    Parameters
    ----------
    p:
        Per-round transmitter failure probability.
    adversary:
        The adaptive adversary deciding faulty nodes' transmissions.
    restriction:
        Power level to *enforce* on the adversary's output.
    """

    def __init__(self, p: float, adversary: Adversary,
                 restriction: Restriction = Restriction.FULL):
        super().__init__(p)
        if not isinstance(adversary, Adversary):
            raise TypeError(
                f"adversary must be an Adversary, got {type(adversary).__name__}"
            )
        if not isinstance(restriction, Restriction):
            raise TypeError(
                f"restriction must be a Restriction, got {restriction!r}"
            )
        self._adversary = adversary
        self._restriction = restriction

    @property
    def adversary(self) -> Adversary:
        """The adversary in control of faulty transmitters."""
        return self._adversary

    @property
    def restriction(self) -> Restriction:
        """The enforced power level."""
        return self._restriction

    @property
    def requires_history(self) -> bool:
        return self._adversary.requires_history

    def supports_batch(self, model: str) -> bool:
        # The batched path skips the scalar engine's per-round
        # restriction enforcement, so a restriction level is only
        # offered when the adversary certifies its batched rewrite is
        # legal under that level by construction (FULL is legal by
        # definition; the flip level additionally needs an all-bit
        # alphabet, checked by supports_batch_payloads once the
        # scenario codec exists).
        return self._restriction in self._adversary.batch_restrictions(model)

    def supports_batch_payloads(self, payloads) -> bool:
        if self._restriction is not Restriction.FLIP:
            return True
        # The scalar engine *raises* on non-bit payloads under the
        # flip restriction; keep such scenarios on the engine tier so
        # the error surfaces identically.
        return all(payload == 0 or payload == 1 for payload in payloads)

    def sample_failures_batch(self, trial_streams, rounds: int,
                              order: int) -> np.ndarray:
        masks = super().sample_failures_batch(trial_streams, rounds, order)
        return self._adversary.thin_faulty_batch(trial_streams, masks)

    def apply_batch(self, round_index: int, faulty: np.ndarray,
                    codes: np.ndarray, codec, model: str) -> np.ndarray:
        replacements = self._adversary.batch_rewrite(
            round_index, faulty, codes, codec, model
        )
        return np.where(faulty, replacements, codes)

    def batch_payloads(self) -> tuple:
        return self._adversary.batch_payloads()

    def apply(self, round_index: int, faulty: FrozenSet[int],
              intents: Dict[int, Any], view) -> Dict[int, Any]:
        actual = {
            node: intent for node, intent in intents.items() if node not in faulty
        }
        if not faulty:
            return actual
        replacements = self._adversary.rewrite(round_index, faulty, intents, view)
        illegal = set(replacements) - set(faulty)
        if illegal:
            raise ValueError(
                f"adversary rewrote fault-free nodes {sorted(illegal)}"
            )
        for node in faulty:
            intent = intents.get(node)
            replacement = replacements.get(node)
            self._enforce(view.model, node, intent, replacement)
            if replacement is not None:
                actual[node] = replacement
            # A faulty node with no replacement is silent — even if it
            # intended to transmit (stopping is always within the
            # adversary's power except in the flip model, checked above).
        return actual

    def _enforce(self, model: str, node: int, intent: Any,
                 replacement: Any) -> None:
        """Check a replacement against the declared restriction."""
        if self._restriction is Restriction.FULL:
            return
        if model == MESSAGE_PASSING:
            if self._restriction is Restriction.LIMITED:
                _check_limited_mp(node, intent, replacement)
            else:
                _check_flip_mp(node, intent, replacement)
        elif model == RADIO:
            if self._restriction is Restriction.LIMITED:
                _check_limited_radio(node, intent, replacement)
            else:
                _check_flip_radio(node, intent, replacement)
        else:  # pragma: no cover - engine guarantees a valid model
            raise ValueError(f"unknown model {model!r}")

    def describe(self) -> str:
        return (f"MaliciousFailures(p={self.p:g}, "
                f"adversary={self._adversary.describe()}, "
                f"restriction={self._restriction.value})")
