"""Exact LRU result cache keyed by scenario fingerprint.

Because every Monte-Carlo batch is a pure function of its fingerprint
(:mod:`repro.montecarlo.fingerprint`), this cache is **exact**: a hit
returns the very :class:`~repro.montecarlo.TrialResult` (or
:class:`~repro.montecarlo.trials.SequentialResult`) a cold run would
recompute, byte-identical indicators included.  There is no staleness,
no TTL, no probabilistic reuse — eviction is purely a memory-bound
concern, handled LRU.  ``capacity=0`` degenerates to a pure
pass-through: every ``get`` misses, every ``put`` is a no-op, and the
service behaves as if memoisation were switched off.

The cache is synchronous and unlocked by design: the service accesses
it only from the event-loop thread (executor threads compute results
but never touch the cache), so adding a lock would buy nothing and
suggest a concurrency story that does not exist.

Besides its own :class:`CacheStats` counters (the in-process API),
every lookup and eviction is mirrored into the process-wide metrics
registry (:mod:`repro.obs`; ``serve.cache.hits`` /
``serve.cache.misses`` / ``serve.cache.evictions``), so the hit rate
shows up in the ``metrics`` wire op and the Prometheus exposition
without a stats round trip.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro._validation import check_non_negative_int
from repro.montecarlo.trials import SequentialResult, TrialResult
from repro.obs import get_registry

__all__ = ["ResultCache", "CacheStats"]

CacheValue = Union[TrialResult, SequentialResult]


@dataclass(frozen=True)
class CacheStats:
    """Counters since the cache was created (monotone, never reset)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """LRU ``fingerprint -> result`` memo with hit/miss counters.

    Parameters
    ----------
    capacity:
        Maximum number of memoised results; the least-recently-*used*
        entry (get or put both refresh recency) is evicted beyond it.
        ``0`` disables memoisation entirely — the cache is then a pure
        pass-through that stores nothing and misses every lookup.
    """

    def __init__(self, capacity: int = 256):
        self._capacity = check_non_negative_int(capacity, "capacity")
        self._entries: "OrderedDict[str, CacheValue]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum entry count (0 means pass-through)."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def __iter__(self) -> Iterator[str]:
        """Fingerprints, least- to most-recently used."""
        return iter(self._entries)

    def items(self) -> List[Tuple[str, CacheValue]]:
        """``(fingerprint, result)`` pairs, least- to most-recently used.

        The journal's compaction input: exactly the live entries, in a
        stable recency order so a compact-then-replay round trip
        rebuilds the same LRU ordering.
        """
        return list(self._entries.items())

    def get(self, fingerprint: str) -> Optional[CacheValue]:
        """The memoised result, refreshing its recency; ``None`` on miss."""
        result = self._entries.get(fingerprint)
        if result is None:
            self._misses += 1
            get_registry().counter("serve.cache.misses").inc()
            return None
        self._entries.move_to_end(fingerprint)
        self._hits += 1
        get_registry().counter("serve.cache.hits").inc()
        return result

    def put(self, fingerprint: str, result: CacheValue) -> None:
        """Memoise ``result``, evicting the LRU entry beyond capacity."""
        if not isinstance(result, (TrialResult, SequentialResult)):
            raise TypeError(
                f"cache values must be TrialResult or SequentialResult, "
                f"got {type(result).__name__}"
            )
        if self._capacity == 0:
            return
        self._entries[fingerprint] = result
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
            get_registry().counter("serve.cache.evictions").inc()

    def stats(self) -> CacheStats:
        """Current counters snapshot."""
        return CacheStats(
            hits=self._hits, misses=self._misses,
            evictions=self._evictions, size=len(self._entries),
            capacity=self._capacity,
        )
