"""Structured client-facing errors of the serving layer.

Kept in their own module so the service, the wire protocol and the
admission controller can all share them without import cycles.  The
wire protocol maps each error's ``code`` to the ``"error"`` field of
an error response; the in-process API raises them.
"""

from __future__ import annotations

__all__ = ["QueryError", "OverloadedError"]


class QueryError(ValueError):
    """A client-side problem with a query (unknown scenario, bad params).

    The wire protocol maps this to an error response instead of a
    connection-killing crash; the in-process API raises it.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


class OverloadedError(QueryError):
    """The run queue is full — retry later; nothing was executed.

    Carries the wire code ``overloaded`` plus a ``retry_after_ms``
    hint scaled by the queue depth at rejection time.  Shedding is
    correctness-preserving by the fingerprint argument: the retried
    query is the same memo key and yields the identical bytes.
    """

    def __init__(self, op: str, message: str, retry_after_ms: float):
        super().__init__("overloaded", message)
        self.op = op
        self.retry_after_ms = retry_after_ms
