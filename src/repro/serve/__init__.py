"""Always-on simulation serving layer.

``python -m repro.serve`` runs the TCP server; the in-process surface
is :class:`SimulationService` (submit :class:`Query`, get
:class:`Answer`).  See ARCHITECTURE.md's service-layer section for the
resolve → fingerprint → cache → coalesce → memoise data flow.

Importing this package registers the built-in scenario families
(:mod:`repro.serve.catalog`) with the experiment registry.
"""

from repro.serve import catalog  # noqa: F401  (family registration)
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.coalescer import Coalescer
from repro.serve.protocol import SimulationServer, query_many, query_one
from repro.serve.service import (
    Answer,
    Query,
    QueryError,
    ServiceStats,
    SimulationService,
)
from repro.serve.traffic import TrafficReport, make_query_pool

__all__ = [
    "Answer",
    "CacheStats",
    "Coalescer",
    "Query",
    "QueryError",
    "ResultCache",
    "ServiceStats",
    "SimulationServer",
    "SimulationService",
    "TrafficReport",
    "make_query_pool",
    "query_many",
    "query_one",
]
