"""Always-on simulation serving layer.

``python -m repro.serve`` runs the TCP server; the in-process surface
is :class:`SimulationService` (submit :class:`Query` or the adaptive
:class:`SequentialQuery`, get :class:`Answer` /
:class:`SequentialAnswer`).  See ARCHITECTURE.md's service-layer
section for the resolve → fingerprint → cache → coalesce → memoise
data flow, the persistent memo journal (:class:`MemoJournal`,
``--memo-path``), and admission control
(:class:`AdmissionController`, wire code ``overloaded``).

Importing this package registers the built-in scenario families
(:mod:`repro.serve.catalog`) with the experiment registry.
"""

from repro.serve import catalog  # noqa: F401  (family registration)
from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.coalescer import Coalescer
from repro.serve.errors import OverloadedError, QueryError
from repro.serve.persistence import MemoJournal
from repro.serve.protocol import SimulationServer, query_many, query_one
from repro.serve.service import (
    Answer,
    Query,
    SequentialAnswer,
    SequentialQuery,
    ServiceStats,
    SimulationService,
)
from repro.serve.traffic import TrafficReport, make_query_pool

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "Answer",
    "CacheStats",
    "Coalescer",
    "MemoJournal",
    "OverloadedError",
    "Query",
    "QueryError",
    "ResultCache",
    "SequentialAnswer",
    "SequentialQuery",
    "ServiceStats",
    "SimulationServer",
    "SimulationService",
    "TrafficReport",
    "make_query_pool",
    "query_many",
    "query_one",
]
