"""Single-flight coalescing of concurrent identical queries.

When N clients ask for the same fingerprint while no memoised result
exists yet, exactly one Monte-Carlo execution must run; the other N-1
callers await the same in-flight future and receive the *same*
:class:`~repro.montecarlo.TrialResult` object — trivially
bit-identical, and N-1 batch executions cheaper.  This is the piece
that turns duplicate-heavy traffic (threshold-curve dashboards all
asking for the same cells) into one shared sharded run.

The coalescer is fingerprint-agnostic: it maps any hashable key to an
``asyncio`` future and runs the supplied zero-argument coroutine
factory once per key generation.  Failures propagate to *every* waiter
of that generation and are not cached — the next query retries.

Launches and joins are mirrored into the process-wide metrics
registry (:mod:`repro.obs`; counters ``serve.coalesce.started`` /
``serve.coalesce.joined``, gauge ``serve.coalesce.inflight``), so the
single-flight win — how many executions duplicate traffic *didn't*
run — is visible in the ``metrics`` wire op alongside the
``started``/``joined`` properties the stats op reports.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable

from repro.obs import get_registry

__all__ = ["Coalescer"]


class Coalescer:
    """Deduplicate concurrent async computations by key (single flight)."""

    def __init__(self) -> None:
        self._inflight: Dict[Hashable, "asyncio.Future[Any]"] = {}
        self._started = 0
        self._joined = 0

    @property
    def started(self) -> int:
        """Computations actually launched (one per key generation)."""
        return self._started

    @property
    def joined(self) -> int:
        """Calls that coalesced onto an already-in-flight computation."""
        return self._joined

    def inflight(self) -> int:
        """Keys currently being computed."""
        return len(self._inflight)

    async def run(self, key: Hashable,
                  compute: Callable[[], Awaitable[Any]]) -> Any:
        """Return ``await compute()`` for this key, deduplicated.

        The first caller for a key launches ``compute()`` and everyone
        arriving before it resolves awaits the same future.  Returns
        ``(result, coalesced)`` where ``coalesced`` is ``True`` for the
        callers that joined an existing flight.
        """
        registry = get_registry()
        existing = self._inflight.get(key)
        if existing is not None:
            self._joined += 1
            registry.counter("serve.coalesce.joined").inc()
            return await asyncio.shield(existing), True
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self._inflight[key] = future
        self._started += 1
        registry.counter("serve.coalesce.started").inc()
        registry.gauge("serve.coalesce.inflight").inc()
        try:
            result = await compute()
        except BaseException as error:
            if not future.cancelled():
                future.set_exception(error)
                # A waiter may have already moved on (cancelled); make
                # sure an unconsumed exception never warns at GC time.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)
            registry.gauge("serve.coalesce.inflight").dec()
