"""Builtin wire-scenario families for the simulation service.

Each family maps the wire triple ``(scenario name, p, n)`` — plus
optional family-specific ``params`` — to a picklable
``(algorithm_factory, failure_model)`` pair via
:func:`repro.experiments.registry.register_family`.  Picklability is
the load-bearing property: the same factory object shards across
worker processes *and* feeds
:func:`repro.montecarlo.scenario_fingerprint`, so every family's
results are exactly memoisable.

The catalog covers **every registered experiment E01–E15** (each
family carries its ``experiments`` tag; the completeness is pinned by
``tests/test_serve_catalog.py``), spanning all three service regimes:

* fastsim-dispatched families (``simple-omission``, ``flooding``,
  ``equalizing-star``, ``layered-omission``, ...) — answered
  instantly, no coalescing needed;
* batchsim/engine Monte-Carlo families (``windowed-malicious``,
  ``kucera-flip``, ``equalizing-mp``, ...) — the expensive queries the
  coalescer collapses and the LRU memoises;
* the one **exact** family (``layered-opt``, E10) — no Monte-Carlo at
  all: the build returns a picklable zero-argument ``compute`` whose
  verdict (the Lemma 3.3 exhaustive search) the service runs once and
  serves memo-only.

Families validate their parameters and raise ``ValueError`` on
out-of-range input; the wire protocol maps that to a client error.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Tuple

from repro._validation import check_probability
from repro.analysis.thresholds import radio_malicious_threshold  # noqa: F401  (re-export convenience)
from repro.core import (
    ADOPT_ANY,
    ADOPT_MAJORITY,
    FastFlooding,
    PrimeScheduleBroadcast,
    RadioRepeat,
    RoundRobinBroadcast,
    SimpleMalicious,
    SimpleOmission,
)
from repro.core.flooding import flooding_rounds
from repro.core.hello import HelloProtocolAlgorithm
from repro.core.kucera import KuceraBroadcast
from repro.core.parameters import (
    mp_malicious_phase_length,
    omission_phase_length,
    radio_malicious_phase_length,
)
from repro.core.windowed import WindowedMalicious
from repro.engine import MESSAGE_PASSING, RADIO
from repro.experiments.registry import FAMILY_EXACT, register_family
from repro.failures import (
    ComplementAdversary,
    GarbageAdversary,
    MaliciousFailures,
    OmissionFailures,
    RandomFlipAdversary,
    Restriction,
    SilentAdversary,
)
from repro.failures.adversaries import RadioWorstCaseAdversary
from repro.failures.equalizing import EqualizingMpAdversary, EqualizingStarAdversary
from repro.graphs import binary_tree, grid, line, star, two_node
from repro.graphs.layered import layered_graph
from repro.radio.closed_form import layered_schedule, line_schedule
from repro.radio.exact import layered_min_layer2_steps
from repro.radio.layered_broadcast import LayeredScheduleBroadcast

import numpy as np

__all__ = ["MAX_NODES"]

#: Ceiling on the node count a single wire query may request — a
#: serving-layer guard, not a simulation limit (batch memory scales
#: with ``trials x rounds x n``).
MAX_NODES = 4096

FactoryAndFailures = Tuple[Callable[[], Any], Any]


def _check_n(n: Any, minimum: int, meaning: str,
             maximum: int = MAX_NODES) -> int:
    if not isinstance(n, int) or isinstance(n, bool):
        raise ValueError(f"n ({meaning}) must be an int, got {n!r}")
    if not minimum <= n <= maximum:
        raise ValueError(
            f"n ({meaning}) must lie in [{minimum}, {maximum}], got {n}"
        )
    return n


# -- omission families (Theorem 2.1) -----------------------------------


@register_family(
    "simple-omission",
    "Simple-Omission on a depth-d binary tree under omission failures "
    "(Theorem 2.1); fastsim-served",
    size_meaning="binary-tree depth (order 2^(d+1)-1)",
    experiments=("E01",),
)
def _build_simple_omission(p: float, n: int, *,
                           phase_length: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=True)
    depth = _check_n(n, 1, "binary-tree depth", maximum=11)
    topology = binary_tree(depth)
    if phase_length:
        m = _check_n(phase_length, 1, "phase_length")
    else:
        m = omission_phase_length(topology.order, p)
    factory = partial(SimpleOmission, topology, 0, 1, MESSAGE_PASSING, m)
    return factory, OmissionFailures(p)


@register_family(
    "simple-omission-radio",
    "Simple-Omission on a depth-d binary tree in the radio model "
    "(Theorem 2.1, radio variant); fastsim-served",
    size_meaning="binary-tree depth (order 2^(d+1)-1)",
    experiments=("E02",),
)
def _build_simple_omission_radio(p: float, n: int, *,
                                 phase_length: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=True)
    depth = _check_n(n, 1, "binary-tree depth", maximum=11)
    topology = binary_tree(depth)
    if phase_length:
        m = _check_n(phase_length, 1, "phase_length")
    else:
        m = omission_phase_length(topology.order, p)
    factory = partial(SimpleOmission, topology, 0, 1, RADIO, m)
    return factory, OmissionFailures(p)


@register_family(
    "hetero-omission",
    "Simple-Omission on a binary tree with per-node failure rates "
    "ramping linearly up to p (E15 ablation); batchsim Monte-Carlo",
    size_meaning="binary-tree depth (order 2^(d+1)-1)",
    experiments=("E15",),
)
def _build_hetero_omission(p: float, n: int, *, p_low: float = 0.0,
                           phase_length: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    p_low = check_probability(p_low, "p_low", allow_zero=True)
    if p_low > p:
        raise ValueError(f"p_low must not exceed p, got {p_low} > {p}")
    depth = _check_n(n, 1, "binary-tree depth", maximum=11)
    topology = binary_tree(depth)
    if phase_length:
        m = _check_n(phase_length, 1, "phase_length")
    else:
        m = omission_phase_length(topology.order, p)
    rates = np.round(np.linspace(p_low, p, topology.order), 4)
    factory = partial(SimpleOmission, topology, 0, 1, MESSAGE_PASSING, m)
    return factory, OmissionFailures(p_v=rates)


# -- malicious families (Theorems 2.2 / 2.4) ---------------------------


@register_family(
    "simple-malicious-mp",
    "Simple-Malicious on a depth-d binary tree vs the complement "
    "adversary, message passing (Theorem 2.2); fastsim-served",
    size_meaning="binary-tree depth (order 2^(d+1)-1)",
    experiments=("E03",),
)
def _build_simple_malicious_mp(p: float, n: int, *,
                               phase_length: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    depth = _check_n(n, 1, "binary-tree depth", maximum=11)
    topology = binary_tree(depth)
    if phase_length:
        m = _check_n(phase_length, 1, "phase_length")
    else:
        m = mp_malicious_phase_length(topology.order, p)
    factory = partial(SimpleMalicious, topology, 0, 1, MESSAGE_PASSING, m)
    return factory, MaliciousFailures(p, ComplementAdversary())


@register_family(
    "equalizing-mp",
    "Two-node Simple-Malicious vs the history-dependent equalizing "
    "adversary (Theorem 2.3 impossibility); scalar-engine Monte-Carlo",
    size_meaning="phase length m (the graph is always the 2-node link)",
    experiments=("E04",),
)
def _build_equalizing_mp(p: float, n: int) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    m = _check_n(n, 1, "phase length", maximum=256)
    factory = partial(SimpleMalicious, two_node(), 0, 1, MESSAGE_PASSING, m)
    return factory, MaliciousFailures(p, EqualizingMpAdversary(source=0))


@register_family(
    "malicious-radio-star",
    "Simple-Malicious on a leaf-sourced star vs the radio worst-case "
    "adversary (Theorem 2.4 threshold); batchsim Monte-Carlo",
    size_meaning="star degree delta (order delta+1)",
    experiments=("E05",),
)
def _build_malicious_radio_star(p: float, n: int, *,
                                phase_length: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    delta = _check_n(n, 2, "star degree", maximum=MAX_NODES - 1)
    topology = star(delta, source_is_center=False)
    if phase_length:
        m = _check_n(phase_length, 1, "phase_length")
    else:
        m = radio_malicious_phase_length(topology.order, p, delta)
    factory = partial(SimpleMalicious, topology, 0, 1, RADIO, m)
    return factory, MaliciousFailures(p, RadioWorstCaseAdversary())


@register_family(
    "equalizing-star",
    "Leaf-sourced star vs the adaptive equalizing-star adversary "
    "(Theorem 2.4 impossibility side); fastsim-served",
    size_meaning="star degree delta (order delta+1)",
    experiments=("E06",),
)
def _build_equalizing_star(p: float, n: int, *,
                           phase_length: int = 15) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    delta = _check_n(n, 2, "star degree", maximum=MAX_NODES - 1)
    m = _check_n(phase_length, 1, "phase_length")
    topology = star(delta, source_is_center=False)
    factory = partial(SimpleMalicious, topology, 0, 1, RADIO, m)
    return factory, MaliciousFailures(
        p, EqualizingStarAdversary(source=0, center=1))


@register_family(
    "windowed-malicious",
    "Windowed Simple-Malicious on a k x k grid vs the complement "
    "adversary (Section 2.2); batchsim Monte-Carlo",
    size_meaning="grid side k (order k^2)",
    experiments=("E14",),
)
def _build_windowed_malicious(p: float, n: int) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    side = _check_n(n, 2, "grid side")
    if side * side > MAX_NODES:
        raise ValueError(f"grid side must satisfy k^2 <= {MAX_NODES}")
    factory = partial(WindowedMalicious, grid(side, side), 0, 1, p=p)
    return factory, MaliciousFailures(p, ComplementAdversary())


# -- flooding / composition families (Section 3) -----------------------


@register_family(
    "flooding",
    "Fast flooding on a line under omission failures (Theorem 3.1); "
    "fastsim-served",
    size_meaning="line length",
    experiments=("E08",),
)
def _build_flooding(p: float, n: int, *,
                    rounds: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=True)
    length = _check_n(n, 2, "line length")
    topology = line(length)
    kwargs = {}
    if rounds:
        kwargs["rounds"] = _check_n(rounds, 1, "rounds")
    factory = partial(FastFlooding, topology, 0, 1, p=p, **kwargs)
    return factory, OmissionFailures(p)


@register_family(
    "grid-flooding",
    "Fast flooding on a k x k grid under omission failures "
    "(Theorem 3.1 on general graphs); batchsim Monte-Carlo",
    size_meaning="grid side k (order k^2)",
    experiments=("E07",),
)
def _build_grid_flooding(p: float, n: int, *,
                         rounds: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=True)
    side = _check_n(n, 2, "grid side")
    if side * side > MAX_NODES:
        raise ValueError(f"grid side must satisfy k^2 <= {MAX_NODES}")
    topology = grid(side, side)
    kwargs = {}
    if rounds:
        kwargs["rounds"] = _check_n(rounds, 1, "rounds")
    factory = partial(FastFlooding, topology, 0, 1, p=p, **kwargs)
    return factory, OmissionFailures(p)


@register_family(
    "kucera-flip",
    "Kucera composition plan on a line vs the random bit-flip "
    "adversary (Theorem 3.2); batchsim Monte-Carlo",
    size_meaning="line length",
    experiments=("E09",),
)
def _build_kucera_flip(p: float, n: int) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    length = _check_n(n, 2, "line length", maximum=64)
    factory = partial(KuceraBroadcast, line(length), 0, 1, p=p)
    return factory, MaliciousFailures(p, RandomFlipAdversary(),
                                      Restriction.FLIP)


# -- radio lower-bound families (Section 3.3) --------------------------


def _layered_opt_verdict(m: int) -> bool:
    """The Lemma 3.3 claim for ``G(m)``, checked exhaustively.

    Module-level (hence picklable/fingerprintable): the exhaustive
    layer-2 search must need exactly ``m`` steps, and the constructive
    schedule must achieve the matching ``m + 1`` total.
    """
    graph = layered_graph(m)
    constructive = layered_schedule(graph).length == m + 1
    exhaustive = layered_min_layer2_steps(graph) == m
    return constructive and exhaustive


@register_family(
    "layered-opt",
    "Exact optimal broadcast time of the lower-bound graph G(m) "
    "(Lemma 3.3, exhaustive search); combinatorial, served memo-only "
    "with p=0, trials=1, seed=0",
    size_meaning="bit-node count m of G(m) (exhaustive up to m=5)",
    experiments=("E10",),
    kind=FAMILY_EXACT,
)
def _build_layered_opt(p: float, n: int) -> FactoryAndFailures:
    if p != 0.0:
        raise ValueError(
            f"layered-opt is purely combinatorial; p must be 0, got {p}"
        )
    m = _check_n(n, 2, "bit-node count m", maximum=5)
    return partial(_layered_opt_verdict, m), None


def _uniform_layer2_schedule(m: int, budget: int):
    """Spread a layer-2 step budget evenly over bit-node singletons."""
    return [{(index % m) + 1} for index in range(budget)]


@register_family(
    "layered-omission",
    "Layered-graph schedule broadcast G(m) under omission failures "
    "(Theorem 3.3 lower-bound graph); fastsim-served",
    size_meaning="bit-node count m of G(m) (order 2^m + m + 1)",
    experiments=("E11",),
)
def _build_layered_omission(p: float, n: int, *,
                            budget: int = 0,
                            source_steps: int = 1) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=True)
    m = _check_n(n, 2, "bit-node count m", maximum=10)
    graph = layered_graph(m)
    steps = _uniform_layer2_schedule(
        m, _check_n(budget, 1, "budget") if budget else 2 * m)
    factory = partial(LayeredScheduleBroadcast, graph, steps,
                      _check_n(source_steps, 1, "source_steps"))
    return factory, OmissionFailures(p)


@register_family(
    "radio-repeat",
    "Schedule-repetition broadcast on a line (adopt-any under omission "
    "failures, adopt-majority vs the complement adversary; Section "
    "3.3); fastsim-served",
    size_meaning="line length",
    experiments=("E12",),
)
def _build_radio_repeat(p: float, n: int, *,
                        rule: str = "any") -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    length = _check_n(n, 2, "line length", maximum=64)
    if rule not in (ADOPT_ANY, ADOPT_MAJORITY):
        raise ValueError(
            f"rule must be {ADOPT_ANY!r} or {ADOPT_MAJORITY!r}, got {rule!r}"
        )
    schedule = line_schedule(line(length))
    algorithm = RadioRepeat(schedule, 1, rule=rule, p=p)
    factory = partial(RadioRepeat, schedule, 1, rule,
                      algorithm.phase_length)
    if rule == ADOPT_ANY:
        return factory, OmissionFailures(p)
    return factory, MaliciousFailures(p, ComplementAdversary())


# -- timing-channel and label-schedule families ------------------------


@register_family(
    "hello",
    "Two-node timing-channel broadcast vs a limited malicious "
    "adversary (Section 4 feasibility); batchsim Monte-Carlo",
    size_meaning="half-round count m (the protocol runs 2m rounds)",
    experiments=("E13",),
)
def _build_hello(p: float, n: int, *,
                 adversary: str = "silent") -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    m = _check_n(n, 1, "half-round count m", maximum=4096)
    adversaries = {"silent": SilentAdversary, "garbage": GarbageAdversary}
    if adversary not in adversaries:
        raise ValueError(
            f"adversary must be one of {sorted(adversaries)}, got "
            f"{adversary!r}"
        )
    factory = partial(HelloProtocolAlgorithm, two_node(), 0, m)
    return factory, MaliciousFailures(p, adversaries[adversary](),
                                      Restriction.LIMITED)


@register_family(
    "round-robin",
    "Round-robin label-schedule broadcast on a binary tree under "
    "omission failures (E14 variant); batchsim Monte-Carlo",
    size_meaning="binary-tree depth (order 2^(d+1)-1)",
    experiments=("E14",),
)
def _build_round_robin(p: float, n: int, *,
                       cycles: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    depth = _check_n(n, 1, "binary-tree depth", maximum=8)
    topology = binary_tree(depth)
    if cycles:
        cycles = _check_n(cycles, 1, "cycles")
    else:
        cycles = flooding_rounds(topology.order, depth, p)
    factory = partial(RoundRobinBroadcast, topology, 0, 1, cycles=cycles)
    return factory, OmissionFailures(p)


@register_family(
    "prime-schedule",
    "Prime label-schedule broadcast on a line under omission failures "
    "(E14 variant); batchsim Monte-Carlo",
    size_meaning="line length",
    experiments=("E14",),
)
def _build_prime_schedule(p: float, n: int, *,
                          rounds: int = 2500) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    length = _check_n(n, 2, "line length", maximum=64)
    rounds = _check_n(rounds, 1, "rounds", maximum=100_000)
    factory = partial(PrimeScheduleBroadcast, line(length), 0, 1,
                      rounds=rounds)
    return factory, OmissionFailures(p)
