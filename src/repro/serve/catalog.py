"""Builtin wire-scenario families for the simulation service.

Each family maps the wire triple ``(scenario name, p, n)`` — plus
optional family-specific ``params`` — to a picklable
``(algorithm_factory, failure_model)`` pair via
:func:`repro.experiments.registry.register_family`.  Picklability is
the load-bearing property: the same factory object shards across
worker processes *and* feeds
:func:`repro.montecarlo.scenario_fingerprint`, so every family's
results are exactly memoisable.

The four builtin families deliberately cover both service regimes:

* ``simple-omission`` and ``flooding`` dispatch to **fastsim** closed
  forms — the service answers them instantly, no coalescing needed;
* ``windowed-malicious`` and ``kucera-flip`` dispatch to **batchsim**
  Monte-Carlo runs — the expensive queries the coalescer collapses and
  the LRU memoises.

Families validate their parameters and raise ``ValueError`` on
out-of-range input; the wire protocol maps that to a client error.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Tuple

from repro._validation import check_probability
from repro.core import FastFlooding, SimpleOmission
from repro.core.kucera import KuceraBroadcast
from repro.core.parameters import omission_phase_length
from repro.core.windowed import WindowedMalicious
from repro.engine import MESSAGE_PASSING
from repro.experiments.registry import register_family
from repro.failures import (
    ComplementAdversary,
    MaliciousFailures,
    OmissionFailures,
    RandomFlipAdversary,
    Restriction,
)
from repro.graphs import binary_tree, grid, line

__all__ = ["MAX_NODES"]

#: Ceiling on the node count a single wire query may request — a
#: serving-layer guard, not a simulation limit (batch memory scales
#: with ``trials x rounds x n``).
MAX_NODES = 4096

FactoryAndFailures = Tuple[Callable[[], Any], Any]


def _check_n(n: Any, minimum: int, meaning: str) -> int:
    if not isinstance(n, int) or isinstance(n, bool):
        raise ValueError(f"n ({meaning}) must be an int, got {n!r}")
    if not minimum <= n <= MAX_NODES:
        raise ValueError(
            f"n ({meaning}) must lie in [{minimum}, {MAX_NODES}], got {n}"
        )
    return n


@register_family(
    "simple-omission",
    "Simple-Omission on a depth-d binary tree under omission failures "
    "(Theorem 2.1); fastsim-served",
    size_meaning="binary-tree depth (order 2^(d+1)-1)",
)
def _build_simple_omission(p: float, n: int, *,
                           phase_length: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=True)
    depth = _check_n(n, 1, "binary-tree depth")
    if depth > 11:
        raise ValueError(f"binary-tree depth must be <= 11, got {depth}")
    topology = binary_tree(depth)
    if phase_length:
        m = _check_n(phase_length, 1, "phase_length")
    else:
        m = omission_phase_length(topology.order, p)
    factory = partial(SimpleOmission, topology, 0, 1, MESSAGE_PASSING, m)
    return factory, OmissionFailures(p)


@register_family(
    "flooding",
    "Fast flooding on a line under omission failures (Theorem 3.1); "
    "fastsim-served",
    size_meaning="line length",
)
def _build_flooding(p: float, n: int, *,
                    rounds: int = 0) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=True)
    length = _check_n(n, 2, "line length")
    topology = line(length)
    kwargs = {}
    if rounds:
        kwargs["rounds"] = _check_n(rounds, 1, "rounds")
    factory = partial(FastFlooding, topology, 0, 1, p=p, **kwargs)
    return factory, OmissionFailures(p)


@register_family(
    "windowed-malicious",
    "Windowed Simple-Malicious on a k x k grid vs the complement "
    "adversary (Section 2.2); batchsim Monte-Carlo",
    size_meaning="grid side k (order k^2)",
)
def _build_windowed_malicious(p: float, n: int) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    side = _check_n(n, 2, "grid side")
    if side * side > MAX_NODES:
        raise ValueError(f"grid side must satisfy k^2 <= {MAX_NODES}")
    factory = partial(WindowedMalicious, grid(side, side), 0, 1, p=p)
    return factory, MaliciousFailures(p, ComplementAdversary())


@register_family(
    "kucera-flip",
    "Kucera composition plan on a line vs the random bit-flip "
    "adversary (Theorem 3.2); batchsim Monte-Carlo",
    size_meaning="line length",
)
def _build_kucera_flip(p: float, n: int) -> FactoryAndFailures:
    p = check_probability(p, "p", allow_zero=False, allow_one=False)
    length = _check_n(n, 2, "line length")
    if length > 64:
        raise ValueError(
            f"kucera-flip compiles a per-edge plan; line length must be "
            f"<= 64, got {length}"
        )
    factory = partial(KuceraBroadcast, line(length), 0, 1, p=p)
    return factory, MaliciousFailures(p, RandomFlipAdversary(),
                                      Restriction.FLIP)
