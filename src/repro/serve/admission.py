"""Admission control: bounded concurrency with honest overload answers.

The service's expensive work — a fresh batch execution on the executor
— runs through an :class:`AdmissionController`.  Each op class
(``"query"``, ``"run_until"``) has a concurrency limit; runs beyond it
wait in a bounded queue, and once the queue-depth watermark is reached
the controller *sheds* the run with a structured
:class:`OverloadedError` (wire code ``overloaded``) carrying a
``retry_after_ms`` hint, instead of queueing unboundedly and timing
out.  That is the Královič-style trade the fingerprint makes safe:
shedding is correctness-preserving — the client retries the identical
query later and gets the identical bytes.

Cheap paths never touch the controller: cache hits and coalesced joins
are served even when the run queue is saturated, so a hot duplicate
working set stays fast under overload.

Everything is event-loop-local state (no locks, no threads) and fully
deterministic: a slot is granted synchronously when free, the queue is
FIFO, and rejection happens at admission time, never mid-run.

Metrics (:mod:`repro.obs`): ``serve.admission.admitted{op}`` /
``serve.admission.rejected{op}`` counters and
``serve.admission.inflight{op}`` / ``serve.admission.waiting{op}``
gauges.
"""

from __future__ import annotations

import asyncio
from collections import deque
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Mapping, Optional

from repro._validation import check_non_negative_int, check_positive_int
from repro.obs import get_registry
from repro.serve.errors import OverloadedError

__all__ = ["AdmissionController", "OverloadedError", "AdmissionStats"]


@dataclass(frozen=True)
class AdmissionStats:
    """Controller counters since creation (gauges are instantaneous)."""

    admitted: int
    rejected: int
    inflight: int
    waiting: int


@dataclass
class _OpState:
    inflight: int = 0
    waiters: "Deque[asyncio.Future]" = field(default_factory=deque)


class AdmissionController:
    """Per-op bounded run queue with a queue-depth shed watermark.

    Parameters
    ----------
    limits:
        ``op -> max concurrent runs``.  Ops absent from the mapping use
        ``default_limit``.
    max_waiting:
        Queue-depth watermark per op: a run arriving with this many
        already waiting is rejected with :class:`OverloadedError`
        (``0`` means shed as soon as every slot is busy).
    retry_after_ms:
        Base retry hint; the raised error scales it by the queue depth
        at rejection (deeper queue, longer hint).
    default_limit:
        Concurrency limit for ops not named in ``limits``.
    """

    def __init__(self, limits: Optional[Mapping[str, int]] = None,
                 *, max_waiting: int = 64,
                 retry_after_ms: float = 250.0,
                 default_limit: int = 8):
        self._limits: Dict[str, int] = {
            op: check_positive_int(limit, f"limit[{op}]")
            for op, limit in dict(limits or {}).items()
        }
        self._max_waiting = check_non_negative_int(max_waiting,
                                                   "max_waiting")
        if not (retry_after_ms > 0):
            raise ValueError(
                f"retry_after_ms must be positive, got {retry_after_ms}"
            )
        self._retry_after_ms = float(retry_after_ms)
        self._default_limit = check_positive_int(default_limit,
                                                 "default_limit")
        self._states: Dict[str, _OpState] = {}
        self._admitted = 0
        self._rejected = 0

    def limit(self, op: str) -> int:
        """The concurrency limit applied to ``op``."""
        return self._limits.get(op, self._default_limit)

    def stats(self) -> AdmissionStats:
        """Current counters snapshot (summed over ops)."""
        return AdmissionStats(
            admitted=self._admitted, rejected=self._rejected,
            inflight=sum(s.inflight for s in self._states.values()),
            waiting=sum(len(s.waiters) for s in self._states.values()),
        )

    def _state(self, op: str) -> _OpState:
        state = self._states.get(op)
        if state is None:
            state = self._states[op] = _OpState()
        return state

    async def acquire(self, op: str) -> None:
        """Take a run slot for ``op`` or raise :class:`OverloadedError`.

        Grants are synchronous when a slot is free (no scheduling
        point), FIFO when queued, and the rejection decision is made
        entirely at admission time.
        """
        registry = get_registry()
        state = self._state(op)
        if state.inflight < self.limit(op):
            state.inflight += 1
        elif len(state.waiters) >= self._max_waiting:
            self._rejected += 1
            registry.counter("serve.admission.rejected", op=op).inc()
            depth = len(state.waiters)
            raise OverloadedError(
                op,
                f"run queue for op {op!r} is full "
                f"({state.inflight} running, {depth} waiting)",
                retry_after_ms=self._retry_after_ms * (depth + 1),
            )
        else:
            future = asyncio.get_running_loop().create_future()
            state.waiters.append(future)
            waiting = registry.gauge("serve.admission.waiting", op=op)
            waiting.inc()
            try:
                # A granted future means release() already transferred
                # the slot to us — inflight stays constant.
                await future
            except asyncio.CancelledError:
                if future.cancelled() or not future.done():
                    try:
                        state.waiters.remove(future)
                    except ValueError:
                        pass
                else:
                    # Granted and cancelled in the same tick: pass the
                    # slot on instead of leaking it.
                    self.release(op)
                raise
            finally:
                waiting.dec()
        self._admitted += 1
        registry.counter("serve.admission.admitted", op=op).inc()
        registry.gauge("serve.admission.inflight", op=op).inc()

    def release(self, op: str) -> None:
        """Return a slot, handing it to the oldest waiter if any."""
        state = self._state(op)
        while state.waiters:
            future = state.waiters.popleft()
            if not future.done():
                future.set_result(None)
                break
        else:
            state.inflight = max(0, state.inflight - 1)
        get_registry().gauge("serve.admission.inflight", op=op).dec()

    @asynccontextmanager
    async def admit(self, op: str):
        """``async with controller.admit(op):`` — slot for the block."""
        await self.acquire(op)
        try:
            yield
        finally:
            self.release(op)
