"""The always-on simulation service (in-process API).

:class:`SimulationService` is the asyncio serving layer over the
experiment machinery: clients submit :class:`Query` objects naming a
registered scenario family (:mod:`repro.serve.catalog`) plus
``(p, n, trials, seed)``, and the service answers with an exact
:class:`Answer`.  The wire protocol (:mod:`repro.serve.protocol`) and
the synthetic traffic generator (:mod:`repro.serve.traffic`) both
drive this same API.

Data flow per query::

    resolve   spec -> (factory, failure model) -> TrialRunner   (memoised)
    fingerprint    scenario_fingerprint(factory, model, trials, seed)
    cache          exact LRU hit?  ->  answer (source="cache")
    fastsim        dispatch tier 1?  ->  run instantly, memoise
    coalesce       Monte-Carlo: single flight per fingerprint;
                   concurrent identical queries await one shared
                   (sharded) BatchExecution and get the same
                   TrialResult object
    memoise        completed results enter the LRU

Everything rests on the repo's determinism invariant: a result is a
pure function of ``(scenario fingerprint, seed, trials)``, so the
cache is exact and coalesced waiters lose nothing — bit-identical
indicators either way.

Every ``submit`` runs under a ``serve.query`` span (:mod:`repro.obs`)
whose resolve / fingerprint / cache / run / coalesce phases are child
spans, so per-phase latency histograms (``serve.query.seconds``,
``serve.run.seconds``, ...) and the slow-query log come for free;
outcome counters (``serve.queries``, ``serve.answers`` by source,
``serve.errors`` by code) land in the same registry.  The
instrumentation is inert by construction — wall-clock reads only,
never the experiment RNG — so answers stay bit-identical with metrics
on or off.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Dict, Mapping, Optional, Tuple

from repro._validation import check_positive_int
from repro.experiments.registry import resolve_scenario
from repro.montecarlo import (
    AsyncTrialRunner,
    TrialResult,
    TrialRunner,
    scenario_fingerprint,
)
from repro.obs import get_registry, span
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.coalescer import Coalescer

__all__ = ["Query", "Answer", "SimulationService", "ServiceStats",
           "QueryError"]

#: Source tags an :class:`Answer` can carry.
SOURCE_COMPUTED = "computed"
SOURCE_COALESCED = "coalesced"
SOURCE_CACHE = "cache"


class QueryError(ValueError):
    """A client-side problem with a query (unknown scenario, bad params).

    The wire protocol maps this to an error response instead of a
    connection-killing crash; the in-process API raises it.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Query:
    """One simulation request.

    Attributes
    ----------
    scenario:
        Registered scenario-family name (see
        ``repro.experiments.registry.all_families()``).
    p:
        Transmission-failure probability handed to the family builder.
    n:
        Family-specific size parameter (each family documents what it
        selects — line length, grid side, tree depth).
    trials:
        Monte-Carlo trial count; with ``seed`` it completes the
        fingerprint, so distinct trial counts are distinct cache
        entries (as they must be — indicators differ in length).
    seed:
        Root seed of the per-trial streams.
    params:
        Optional family-specific extras (e.g. ``phase_length``).
    """

    scenario: str
    p: float
    n: int
    trials: int
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Answer:
    """The service's reply: the exact result plus serving metadata."""

    query: Query
    result: TrialResult
    fingerprint: str
    source: str
    elapsed: float

    @property
    def estimate(self) -> float:
        """Success-probability point estimate."""
        return self.result.estimate

    @property
    def successes(self) -> int:
        """Successful trials."""
        return self.result.successes

    @property
    def trials(self) -> int:
        """Trials run."""
        return self.result.trials

    @property
    def backend(self) -> str:
        """Dispatch backend that produced the indicators."""
        return self.result.backend

    def indicators_digest(self) -> str:
        """SHA-256 over the raw indicator bytes.

        What the wire protocol sends instead of the vector itself:
        clients can assert byte-identity of replays (cache hits,
        coalesced answers, cross-server reruns) without shipping
        ``trials`` booleans.
        """
        return sha256(self.result.indicators.tobytes()).hexdigest()


@dataclass(frozen=True)
class ServiceStats:
    """Counters since service creation (all monotone except gauges).

    ``uptime_seconds`` is wall clock since the service object was
    built; the three ``coalesce_*`` fields surface the single-flight
    coalescer's tallies (``coalesce_inflight`` is the only
    non-monotone value here — keys being computed right now).
    """

    queries: int
    computed: int
    coalesced_hits: int
    cache_hits: int
    fastsim_answers: int
    errors: int
    cache: CacheStats
    uptime_seconds: float = 0.0
    coalesce_inflight: int = 0
    coalesce_started: int = 0
    coalesce_joined: int = 0

    @property
    def shared_work_rate(self) -> float:
        """Queries answered without a fresh execution (coalesced or
        cached) over all successful queries — the duplicate-heavy-load
        metric the service exists to maximise."""
        answered = self.queries - self.errors
        if answered <= 0:
            return 0.0
        return (self.coalesced_hits + self.cache_hits) / answered


class SimulationService:
    """Always-on query service over the scenario-family catalog.

    Parameters
    ----------
    workers:
        Process count handed to every :class:`TrialRunner` (sharded
        batchsim/engine execution under the hood).
    cache_capacity:
        LRU capacity of the exact result memo.
    max_trials:
        Per-query trial ceiling — a serving-layer guard against a
        single wire query monopolising the machine.
    executor:
        Optional executor hosting the blocking batch runs; ``None``
        uses the event loop's default thread pool.

    The service is single-loop: all bookkeeping (cache, coalescer,
    counters) happens on the event-loop thread, while batch execution
    runs on executor threads (and, for sharded runs, worker
    processes).
    """

    def __init__(self, *, workers: int = 1, cache_capacity: int = 256,
                 max_trials: int = 1_000_000,
                 executor: Optional[Executor] = None):
        self._workers = check_positive_int(workers, "workers")
        self._max_trials = check_positive_int(max_trials, "max_trials")
        self._cache = ResultCache(cache_capacity)
        self._coalescer = Coalescer()
        self._executor = executor
        # Scenario resolution is itself worth memoising: building a
        # runner re-probes dispatch (builds the algorithm, scans the
        # registry, checks batchsim eligibility).  Keyed by the wire
        # identity, bounded like the result cache.
        self._runners: Dict[Tuple, TrialRunner] = {}
        self._queries = 0
        self._computed = 0
        self._coalesced_hits = 0
        self._cache_hits = 0
        self._fastsim_answers = 0
        self._errors = 0
        self._started_monotonic = time.monotonic()

    @property
    def workers(self) -> int:
        """Process count each runner shards over."""
        return self._workers

    def stats(self) -> ServiceStats:
        """Current counter snapshot."""
        return ServiceStats(
            queries=self._queries, computed=self._computed,
            coalesced_hits=self._coalesced_hits,
            cache_hits=self._cache_hits,
            fastsim_answers=self._fastsim_answers, errors=self._errors,
            cache=self._cache.stats(),
            uptime_seconds=time.monotonic() - self._started_monotonic,
            coalesce_inflight=self._coalescer.inflight(),
            coalesce_started=self._coalescer.started,
            coalesce_joined=self._coalescer.joined,
        )

    # -- resolution ----------------------------------------------------

    def _runner_key(self, query: Query) -> Tuple:
        try:
            params = tuple(sorted(dict(query.params).items()))
        except (TypeError, AttributeError) as error:
            raise QueryError(
                "bad-parameters", f"params must be a string-keyed mapping "
                f"of sortable items: {error}"
            ) from error
        return (query.scenario, float(query.p), query.n, params)

    def _resolve(self, query: Query) -> TrialRunner:
        """The memoised ``TrialRunner`` for this query's scenario."""
        key = self._runner_key(query)
        runner = self._runners.get(key)
        if runner is None:
            try:
                factory, failure_model = resolve_scenario(
                    query.scenario, query.p, query.n, dict(query.params)
                )
            except KeyError as error:
                raise QueryError("unknown-scenario",
                                 str(error.args[0])) from error
            except (TypeError, ValueError) as error:
                raise QueryError("bad-parameters", str(error)) from error
            runner = TrialRunner(factory, failure_model,
                                 workers=self._workers)
            if len(self._runners) >= self._cache.capacity:
                self._runners.pop(next(iter(self._runners)))
            self._runners[key] = runner
        return runner

    def _validate(self, query: Query) -> None:
        if not isinstance(query.scenario, str) or not query.scenario:
            raise QueryError("bad-request", "scenario must be a non-empty "
                                            "string")
        if not isinstance(query.trials, int) or isinstance(query.trials,
                                                           bool):
            raise QueryError("bad-request", "trials must be an int")
        if not 1 <= query.trials <= self._max_trials:
            raise QueryError(
                "bad-request",
                f"trials must lie in [1, {self._max_trials}], got "
                f"{query.trials}"
            )
        if not isinstance(query.seed, int) or isinstance(query.seed, bool):
            raise QueryError("bad-request", "seed must be an int")
        if query.seed < 0:
            raise QueryError("bad-request",
                             f"seed must be non-negative, got {query.seed}")

    def fingerprint(self, query: Query) -> str:
        """The canonical memo key this query resolves to."""
        self._validate(query)
        runner = self._resolve(query)
        return scenario_fingerprint(
            runner.algorithm_factory, runner.failure_model, query.trials, query.seed
        )

    # -- serving -------------------------------------------------------

    async def submit(self, query: Query) -> Answer:
        """Answer one query (exactly; see the module docstring's flow).

        Raises :class:`QueryError` for client-side problems.
        """
        start = time.perf_counter()
        self._queries += 1
        registry = get_registry()
        registry.counter("serve.queries").inc()
        with span("serve.query", scenario=query.scenario):
            try:
                with span("serve.resolve"):
                    self._validate(query)
                    runner = self._resolve(query)
            except QueryError as error:
                self._errors += 1
                registry.counter("serve.errors", code=error.code).inc()
                raise
            with span("serve.fingerprint"):
                fingerprint = scenario_fingerprint(
                    runner.algorithm_factory, runner.failure_model,
                    query.trials, query.seed
                )
            with span("serve.cache"):
                cached = self._cache.get(fingerprint)
            if cached is not None:
                self._cache_hits += 1
                registry.counter("serve.answers", source=SOURCE_CACHE).inc()
                return Answer(
                    query=query, result=cached, fingerprint=fingerprint,
                    source=SOURCE_CACHE,
                    elapsed=time.perf_counter() - start,
                )
            arunner = AsyncTrialRunner(runner, self._executor)
            if runner.dispatch_entry() is not None:
                # Fastsim tier: one closed-form vectorised draw — answered
                # immediately, no coalescing needed (the draw itself is
                # cheaper than the bookkeeping would save).
                with span("serve.run", tier="fastsim"):
                    result = await arunner.run(query.trials, query.seed)
                self._computed += 1
                self._fastsim_answers += 1
                self._cache.put(fingerprint, result)
                registry.counter("serve.answers",
                                 source=SOURCE_COMPUTED).inc()
                return Answer(
                    query=query, result=result, fingerprint=fingerprint,
                    source=SOURCE_COMPUTED,
                    elapsed=time.perf_counter() - start,
                )

            async def compute() -> TrialResult:
                with span("serve.run", tier="montecarlo"):
                    return await arunner.run(query.trials, query.seed)

            with span("serve.coalesce"):
                result, coalesced = await self._coalescer.run(
                    fingerprint, compute)
            if coalesced:
                self._coalesced_hits += 1
            else:
                self._computed += 1
                self._cache.put(fingerprint, result)
            source = SOURCE_COALESCED if coalesced else SOURCE_COMPUTED
            registry.counter("serve.answers", source=source).inc()
            return Answer(
                query=query, result=result, fingerprint=fingerprint,
                source=source,
                elapsed=time.perf_counter() - start,
            )
