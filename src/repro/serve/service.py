"""The always-on simulation service (in-process API).

:class:`SimulationService` is the asyncio serving layer over the
experiment machinery: clients submit :class:`Query` objects naming a
registered scenario family (:mod:`repro.serve.catalog`) plus
``(p, n, trials, seed)``, and the service answers with an exact
:class:`Answer`.  The wire protocol (:mod:`repro.serve.protocol`) and
the synthetic traffic generator (:mod:`repro.serve.traffic`) both
drive this same API.

Data flow per query::

    resolve   spec -> (factory, failure model) -> TrialRunner   (memoised)
    fingerprint    scenario_fingerprint(factory, model, trials, seed)
    cache          exact LRU hit?  ->  answer (source="cache")
    admission      fresh work takes a bounded run slot
                   (serve/admission.py) or sheds with `overloaded`
    fastsim        dispatch tier 1?  ->  run instantly, memoise
    coalesce       Monte-Carlo: single flight per fingerprint;
                   concurrent identical queries await one shared
                   (sharded) BatchExecution and get the same
                   TrialResult object
    memoise        completed results enter the LRU and, when a
                   memo journal is configured (serve/persistence.py),
                   the on-disk journal — restarts rehydrate it

:meth:`SimulationService.submit_until` is the adaptive twin: a
:class:`SequentialQuery` drives :meth:`TrialRunner.run_until` through
the same pipeline, coalescing on ``(fingerprint, target_width)`` and
memo-keyed on the scenario alone — because sequential indicators are
bit-identical *prefixes* of each other, a cached stricter run answers
any wider-target query by truncation, byte-identically.

Purely combinatorial families (``kind="exact"``, E10) bypass the
Monte-Carlo machinery entirely: the family's picklable ``compute`` is
run once on the executor and its verdict served memo-only as a
single-indicator ``backend="exact"`` result.

Everything rests on the repo's determinism invariant: a result is a
pure function of ``(scenario fingerprint, seed, trials)``, so the
cache is exact and coalesced waiters lose nothing — bit-identical
indicators either way.

Every ``submit`` runs under a ``serve.query`` span (:mod:`repro.obs`)
whose resolve / fingerprint / cache / run / coalesce phases are child
spans, so per-phase latency histograms (``serve.query.seconds``,
``serve.run.seconds``, ...) and the slow-query log come for free;
outcome counters (``serve.queries``, ``serve.answers`` by source,
``serve.errors`` by code) land in the same registry.  The
instrumentation is inert by construction — wall-clock reads only,
never the experiment RNG — so answers stay bit-identical with metrics
on or off.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro._validation import check_positive_int
from repro.experiments.registry import (
    FAMILY_EXACT,
    ScenarioFamily,
    get_family,
)
from repro.montecarlo import (
    AsyncTrialRunner,
    ShardExecutor,
    TrialResult,
    TrialRunner,
    make_executor,
    scenario_fingerprint,
)
from repro.montecarlo.trials import SEQUENTIAL_BOUNDS, SequentialResult
from repro.obs import get_registry, span
from repro.serve.admission import AdmissionController
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.coalescer import Coalescer
from repro.serve.errors import OverloadedError, QueryError
from repro.serve.persistence import MemoJournal

__all__ = ["Query", "SequentialQuery", "Answer", "SequentialAnswer",
           "SimulationService", "ServiceStats", "QueryError",
           "OverloadedError"]

#: Source tags an :class:`Answer` can carry.
SOURCE_COMPUTED = "computed"
SOURCE_COALESCED = "coalesced"
SOURCE_CACHE = "cache"

#: Backend tag of purely combinatorial (``kind="exact"``) answers.
BACKEND_EXACT = "exact"

#: Sequential-run constants baked into the ``run_until`` memo key.
#: Pinning them keeps the key space one-dimensional in ``target_width``
#: — which is exactly what lets a stricter cached run serve every wider
#: target by prefix truncation.
SEQUENTIAL_CONFIDENCE = 0.99
SEQUENTIAL_INITIAL_TRIALS = 512


@dataclass(frozen=True)
class Query:
    """One simulation request.

    Attributes
    ----------
    scenario:
        Registered scenario-family name (see
        ``repro.experiments.registry.all_families()``).
    p:
        Transmission-failure probability handed to the family builder.
    n:
        Family-specific size parameter (each family documents what it
        selects — line length, grid side, tree depth).
    trials:
        Monte-Carlo trial count; with ``seed`` it completes the
        fingerprint, so distinct trial counts are distinct cache
        entries (as they must be — indicators differ in length).
        Exact (combinatorial) families require ``trials=1``.
    seed:
        Root seed of the per-trial streams (``0`` for exact families).
    params:
        Optional family-specific extras (e.g. ``phase_length``).
    """

    scenario: str
    p: float
    n: int
    trials: int
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SequentialQuery:
    """One adaptive request: run until the interval is narrow enough.

    Drives :meth:`TrialRunner.run_until` — the budget doubles from
    ``512`` until the ``bound`` interval width at 99% confidence
    reaches ``target_width``, capped at ``max_trials`` (the ``met``
    flag on the answer is honest about which happened).
    """

    scenario: str
    p: float
    n: int
    target_width: float
    max_trials: int
    seed: int = 0
    bound: str = "hoeffding"
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Answer:
    """The service's reply: the exact result plus serving metadata."""

    query: Query
    result: TrialResult
    fingerprint: str
    source: str
    elapsed: float

    @property
    def estimate(self) -> float:
        """Success-probability point estimate."""
        return self.result.estimate

    @property
    def successes(self) -> int:
        """Successful trials."""
        return self.result.successes

    @property
    def trials(self) -> int:
        """Trials run."""
        return self.result.trials

    @property
    def backend(self) -> str:
        """Dispatch backend that produced the indicators."""
        return self.result.backend

    def indicators_digest(self) -> str:
        """SHA-256 over the raw indicator bytes.

        What the wire protocol sends instead of the vector itself:
        clients can assert byte-identity of replays (cache hits,
        coalesced answers, cross-server reruns) without shipping
        ``trials`` booleans.
        """
        return sha256(self.result.indicators.tobytes()).hexdigest()


@dataclass(frozen=True)
class SequentialAnswer:
    """The adaptive reply: the sequential trace plus serving metadata."""

    query: SequentialQuery
    sequential: SequentialResult
    fingerprint: str
    source: str
    elapsed: float

    @property
    def result(self) -> TrialResult:
        """The final batch over every trial actually run."""
        return self.sequential.result

    @property
    def estimate(self) -> float:
        """Success-probability point estimate."""
        return self.result.estimate

    @property
    def met(self) -> bool:
        """Whether the target width was reached within the cap."""
        return self.sequential.met

    @property
    def width(self) -> float:
        """The final stopping-bound interval width (1.0 pre-extension)."""
        steps = self.sequential.steps
        return steps[-1].width if steps else 1.0

    def indicators_digest(self) -> str:
        """SHA-256 over the raw indicator bytes (see :class:`Answer`)."""
        return sha256(self.result.indicators.tobytes()).hexdigest()


@dataclass(frozen=True)
class ServiceStats:
    """Counters since service creation (all monotone except gauges).

    ``uptime_seconds`` is wall clock since the service object was
    built; the three ``coalesce_*`` fields surface the single-flight
    coalescer's tallies (``coalesce_inflight`` is the only
    non-monotone value here — keys being computed right now);
    ``overloaded`` counts queries shed by admission control.
    """

    queries: int
    computed: int
    coalesced_hits: int
    cache_hits: int
    fastsim_answers: int
    errors: int
    cache: CacheStats
    uptime_seconds: float = 0.0
    coalesce_inflight: int = 0
    coalesce_started: int = 0
    coalesce_joined: int = 0
    overloaded: int = 0
    #: The shard substrate batches are scheduled onto: backend name,
    #: worker count and (for the remote backend) the peer list — the
    #: deployment-at-a-glance block the ``stats`` wire op exposes.
    executor: Mapping[str, Any] = field(default_factory=dict)

    @property
    def shared_work_rate(self) -> float:
        """Queries answered without a fresh execution (coalesced or
        cached) over all successful queries — the duplicate-heavy-load
        metric the service exists to maximise."""
        answered = self.queries - self.errors
        if answered <= 0:
            return 0.0
        return (self.coalesced_hits + self.cache_hits) / answered


class SimulationService:
    """Always-on query service over the scenario-family catalog.

    Parameters
    ----------
    workers:
        Process count handed to every :class:`TrialRunner` (sharded
        batchsim/engine execution under the hood).
    cache_capacity:
        LRU capacity of the exact result memo (``0`` disables
        memoisation — the cache becomes a pure pass-through).
    max_trials:
        Per-query trial ceiling — a serving-layer guard against a
        single wire query monopolising the machine.  Also caps a
        sequential query's ``max_trials``.
    executor:
        Optional *thread* executor hosting the blocking batch runs;
        ``None`` uses the event loop's default thread pool.
    shard_executor:
        The shard substrate every resolved runner schedules its
        batches onto: ``None`` resolves from ``workers`` (in-process
        or local pool, the historical behaviour), a spec string
        (e.g. ``"remote:host:port,host:port"`` — the
        ``--executor-workers`` serve flag) or a pre-built
        :class:`~repro.montecarlo.executors.ShardExecutor` schedules
        Monte-Carlo work onto an explicit substrate, e.g. a remote
        worker fleet.  One instance is shared by every runner; cache,
        coalescing and admission semantics are untouched because by
        the bit-identity invariant answers do not depend on placement.
    memo_path:
        Optional path to the persistent memo journal
        (:mod:`repro.serve.persistence`).  On construction the journal
        is replayed into the LRU, so a restarted server serves warm
        queries from cache, byte-identically; every fresh compute is
        appended.
    admission:
        Optional pre-built :class:`AdmissionController` (for per-op
        limit maps); ``None`` builds one from the three knobs below.
    max_concurrent_runs:
        Fresh executions allowed in flight per op class.
    max_queued_runs:
        Runs allowed to wait per op class before the service sheds
        with a structured ``overloaded`` error.
    retry_after_ms:
        Base retry hint carried by ``overloaded`` errors.

    The service is single-loop: all bookkeeping (cache, coalescer,
    journal, admission counters) happens on the event-loop thread,
    while batch execution runs on executor threads (and, for sharded
    runs, worker processes).
    """

    def __init__(self, *, workers: int = 1, cache_capacity: int = 256,
                 max_trials: int = 1_000_000,
                 executor: Optional[Executor] = None,
                 shard_executor: Optional[Union[str, ShardExecutor]] = None,
                 memo_path: Optional[str] = None,
                 admission: Optional[AdmissionController] = None,
                 max_concurrent_runs: int = 8,
                 max_queued_runs: int = 64,
                 retry_after_ms: float = 250.0):
        self._workers = check_positive_int(workers, "workers")
        self._shard_executor = make_executor(shard_executor,
                                             workers=self._workers)
        self._max_trials = check_positive_int(max_trials, "max_trials")
        self._cache = ResultCache(cache_capacity)
        self._coalescer = Coalescer()
        self._executor = executor
        self._admission = admission if admission is not None else (
            AdmissionController(
                max_waiting=max_queued_runs,
                retry_after_ms=retry_after_ms,
                default_limit=max_concurrent_runs,
            )
        )
        self._journal: Optional[MemoJournal] = None
        if memo_path is not None:
            self._journal = MemoJournal(memo_path)
            for key, value in self._journal.load():
                self._cache.put(key, value)
        # Scenario resolution is itself worth memoising: building a
        # runner re-probes dispatch (builds the algorithm, scans the
        # registry, checks batchsim eligibility).  Keyed by the wire
        # identity, bounded like the result cache.
        self._runners: Dict[Tuple, TrialRunner] = {}
        self._queries = 0
        self._computed = 0
        self._coalesced_hits = 0
        self._cache_hits = 0
        self._fastsim_answers = 0
        self._errors = 0
        self._overloaded = 0
        self._started_monotonic = time.monotonic()

    @property
    def workers(self) -> int:
        """Process count each runner shards over."""
        return self._workers

    @property
    def shard_executor(self) -> ShardExecutor:
        """The shared shard substrate every runner schedules onto."""
        return self._shard_executor

    @property
    def admission(self) -> AdmissionController:
        """The run-queue admission controller."""
        return self._admission

    @property
    def journal(self) -> Optional[MemoJournal]:
        """The persistent memo journal, when one is configured."""
        return self._journal

    def stats(self) -> ServiceStats:
        """Current counter snapshot."""
        return ServiceStats(
            queries=self._queries, computed=self._computed,
            coalesced_hits=self._coalesced_hits,
            cache_hits=self._cache_hits,
            fastsim_answers=self._fastsim_answers, errors=self._errors,
            cache=self._cache.stats(),
            uptime_seconds=time.monotonic() - self._started_monotonic,
            coalesce_inflight=self._coalescer.inflight(),
            coalesce_started=self._coalescer.started,
            coalesce_joined=self._coalescer.joined,
            overloaded=self._overloaded,
            executor=self._shard_executor.describe(),
        )

    def close(self) -> None:
        """Flush and close the memo journal (idempotent)."""
        if self._journal is not None:
            self._journal.close()

    # -- resolution ----------------------------------------------------

    def _family(self, scenario: str) -> ScenarioFamily:
        if not isinstance(scenario, str) or not scenario:
            raise QueryError("bad-request",
                             "scenario must be a non-empty string")
        try:
            return get_family(scenario)
        except KeyError as error:
            raise QueryError("unknown-scenario",
                             str(error.args[0])) from error

    def _runner_key(self, query: Union[Query, SequentialQuery]) -> Tuple:
        try:
            params = tuple(sorted(dict(query.params).items()))
        except (TypeError, AttributeError) as error:
            raise QueryError(
                "bad-parameters", f"params must be a string-keyed mapping "
                f"of sortable items: {error}"
            ) from error
        return (query.scenario, float(query.p), query.n, params)

    def _resolve(self, query: Union[Query, SequentialQuery]) -> TrialRunner:
        """The memoised ``TrialRunner`` for this query's scenario."""
        key = self._runner_key(query)
        runner = self._runners.get(key)
        if runner is None:
            try:
                factory, failure_model = self._family(query.scenario).build(
                    query.p, query.n, **dict(query.params)
                )
            except (TypeError, ValueError) as error:
                raise QueryError("bad-parameters", str(error)) from error
            runner = TrialRunner(factory, failure_model,
                                 workers=self._workers,
                                 executor=self._shard_executor)
            if len(self._runners) >= max(self._cache.capacity, 1):
                self._runners.pop(next(iter(self._runners)))
            self._runners[key] = runner
        return runner

    def _resolve_exact(self, query: Query,
                       family: ScenarioFamily) -> Callable[[], object]:
        try:
            compute, failure_model = family.build(query.p, query.n,
                                                  **dict(query.params))
        except (TypeError, ValueError) as error:
            raise QueryError("bad-parameters", str(error)) from error
        if failure_model is not None:
            raise QueryError(
                "bad-parameters",
                f"exact family {family.name!r} must not carry a failure "
                f"model"
            )
        return compute

    def _validate_seed(self, seed: Any) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise QueryError("bad-request", "seed must be an int")
        if seed < 0:
            raise QueryError("bad-request",
                             f"seed must be non-negative, got {seed}")

    def _validate(self, query: Query) -> None:
        if not isinstance(query.scenario, str) or not query.scenario:
            raise QueryError("bad-request", "scenario must be a non-empty "
                                            "string")
        if not isinstance(query.trials, int) or isinstance(query.trials,
                                                           bool):
            raise QueryError("bad-request", "trials must be an int")
        if not 1 <= query.trials <= self._max_trials:
            raise QueryError(
                "bad-request",
                f"trials must lie in [1, {self._max_trials}], got "
                f"{query.trials}"
            )
        self._validate_seed(query.seed)

    def _validate_exact(self, query: Query) -> None:
        """Exact families are deterministic: pin the batch shape.

        Accepting arbitrary ``trials``/``seed`` would fragment the memo
        across keys whose answers are identical by construction, so the
        service insists on the canonical ``trials=1, seed=0`` instead
        of silently aliasing.
        """
        if query.trials != 1:
            raise QueryError(
                "bad-request",
                f"scenario {query.scenario!r} is exact (combinatorial); "
                f"trials must be 1, got {query.trials}"
            )
        if query.seed != 0:
            raise QueryError(
                "bad-request",
                f"scenario {query.scenario!r} is exact (combinatorial); "
                f"seed must be 0, got {query.seed}"
            )

    def _validate_sequential(self, query: SequentialQuery) -> None:
        if not isinstance(query.target_width, (int, float)) or isinstance(
                query.target_width, bool):
            raise QueryError("bad-request", "target_width must be a number")
        if not 0.0 < float(query.target_width) <= 1.0:
            raise QueryError(
                "bad-request",
                f"target_width must lie in (0, 1], got {query.target_width}"
            )
        if not isinstance(query.max_trials, int) or isinstance(
                query.max_trials, bool):
            raise QueryError("bad-request", "max_trials must be an int")
        if not 1 <= query.max_trials <= self._max_trials:
            raise QueryError(
                "bad-request",
                f"max_trials must lie in [1, {self._max_trials}], got "
                f"{query.max_trials}"
            )
        if query.bound not in SEQUENTIAL_BOUNDS:
            raise QueryError(
                "bad-request",
                f"bound must be one of {SEQUENTIAL_BOUNDS}, got "
                f"{query.bound!r}"
            )
        self._validate_seed(query.seed)

    # -- fingerprints --------------------------------------------------

    def fingerprint(self, query: Query) -> str:
        """The canonical memo key this query resolves to."""
        self._validate(query)
        family = self._family(query.scenario)
        if family.kind == FAMILY_EXACT:
            self._validate_exact(query)
            compute = self._resolve_exact(query, family)
            return scenario_fingerprint(compute, None, 1, 0,
                                        extra="exact-search")
        runner = self._resolve(query)
        return scenario_fingerprint(
            runner.algorithm_factory, runner.failure_model, query.trials, query.seed
        )

    def sequential_fingerprint(self, query: SequentialQuery) -> str:
        """The scenario-level memo key of a ``run_until`` query.

        Deliberately **excludes** ``target_width``: every target over
        the same ``(scenario, seed, bound, max_trials)`` shares one
        key, because sequential indicator vectors are bit-identical
        prefixes of each other — the cache keeps the strictest run
        seen and truncates it for wider targets.
        """
        self._validate_sequential(query)
        runner = self._resolve(query)
        return scenario_fingerprint(
            runner.algorithm_factory, runner.failure_model,
            query.max_trials, query.seed,
            extra=("run_until", query.bound, SEQUENTIAL_CONFIDENCE,
                   SEQUENTIAL_INITIAL_TRIALS),
        )

    # -- memo ----------------------------------------------------------

    def _memoise(self, fingerprint: str,
                 result: Union[TrialResult, SequentialResult]) -> None:
        self._cache.put(fingerprint, result)
        if self._journal is None:
            return
        self._journal.append(fingerprint, result)
        # Compact once superseded records dominate the file.  With a
        # pass-through cache (capacity 0) the journal *is* the memo, so
        # compacting against the empty cache would erase it — skip.
        if (self._cache.capacity > 0
                and self._journal.record_count
                > max(32, 2 * self._cache.capacity)):
            self._journal.compact(self._cache.items())

    # -- serving -------------------------------------------------------

    async def submit(self, query: Query) -> Answer:
        """Answer one query (exactly; see the module docstring's flow).

        Raises :class:`QueryError` for client-side problems (including
        :class:`OverloadedError` when admission control sheds the run).
        """
        start = time.perf_counter()
        self._queries += 1
        registry = get_registry()
        registry.counter("serve.queries").inc()
        try:
            with span("serve.query", scenario=query.scenario):
                with span("serve.resolve"):
                    self._validate(query)
                    family = self._family(query.scenario)
                    if family.kind == FAMILY_EXACT:
                        self._validate_exact(query)
                        compute = self._resolve_exact(query, family)
                        runner = None
                    else:
                        runner = self._resolve(query)
                with span("serve.fingerprint"):
                    if runner is None:
                        fingerprint = scenario_fingerprint(
                            compute, None, 1, 0, extra="exact-search")
                    else:
                        fingerprint = scenario_fingerprint(
                            runner.algorithm_factory, runner.failure_model,
                            query.trials, query.seed
                        )
                with span("serve.cache"):
                    cached = self._cache.get(fingerprint)
                if isinstance(cached, TrialResult):
                    self._cache_hits += 1
                    registry.counter("serve.answers",
                                     source=SOURCE_CACHE).inc()
                    return Answer(
                        query=query, result=cached, fingerprint=fingerprint,
                        source=SOURCE_CACHE,
                        elapsed=time.perf_counter() - start,
                    )
                if runner is None:
                    return await self._run_exact(query, compute, fingerprint,
                                                 start)
                return await self._run_montecarlo(query, runner, fingerprint,
                                                  start)
        except QueryError as error:
            self._errors += 1
            if isinstance(error, OverloadedError):
                self._overloaded += 1
            registry.counter("serve.errors", code=error.code).inc()
            raise

    async def _run_montecarlo(self, query: Query, runner: TrialRunner,
                              fingerprint: str, start: float) -> Answer:
        registry = get_registry()
        arunner = AsyncTrialRunner(runner, self._executor)
        if runner.dispatch_entry() is not None:
            # Fastsim tier: one closed-form vectorised draw — answered
            # immediately, no coalescing needed (the draw itself is
            # cheaper than the bookkeeping would save), but still a
            # fresh execution, so it takes an admission slot.
            async with self._admission.admit("query"):
                with span("serve.run", tier="fastsim"):
                    result = await arunner.run(query.trials, query.seed)
            self._computed += 1
            self._fastsim_answers += 1
            self._memoise(fingerprint, result)
            registry.counter("serve.answers",
                             source=SOURCE_COMPUTED).inc()
            return Answer(
                query=query, result=result, fingerprint=fingerprint,
                source=SOURCE_COMPUTED,
                elapsed=time.perf_counter() - start,
            )

        async def compute() -> TrialResult:
            async with self._admission.admit("query"):
                with span("serve.run", tier="montecarlo"):
                    return await arunner.run(query.trials, query.seed)

        with span("serve.coalesce"):
            result, coalesced = await self._coalescer.run(
                fingerprint, compute)
        if coalesced:
            self._coalesced_hits += 1
        else:
            self._computed += 1
            self._memoise(fingerprint, result)
        source = SOURCE_COALESCED if coalesced else SOURCE_COMPUTED
        registry.counter("serve.answers", source=source).inc()
        return Answer(
            query=query, result=result, fingerprint=fingerprint,
            source=source,
            elapsed=time.perf_counter() - start,
        )

    async def _run_exact(self, query: Query, compute: Callable[[], object],
                         fingerprint: str, start: float) -> Answer:
        registry = get_registry()

        async def run() -> TrialResult:
            async with self._admission.admit("query"):
                with span("serve.run", tier="exact"):
                    loop = asyncio.get_running_loop()
                    verdict = await loop.run_in_executor(self._executor,
                                                         compute)
            return TrialResult(
                indicators=np.array([bool(verdict)], dtype=bool),
                backend=BACKEND_EXACT, workers=1, seed=0,
            )

        with span("serve.coalesce"):
            result, coalesced = await self._coalescer.run(fingerprint, run)
        if coalesced:
            self._coalesced_hits += 1
        else:
            self._computed += 1
            self._memoise(fingerprint, result)
        source = SOURCE_COALESCED if coalesced else SOURCE_COMPUTED
        registry.counter("serve.answers", source=source).inc()
        return Answer(
            query=query, result=result, fingerprint=fingerprint,
            source=source,
            elapsed=time.perf_counter() - start,
        )

    # -- adaptive serving ----------------------------------------------

    @staticmethod
    def _truncate_sequential(cached: SequentialResult,
                             target_width: float
                             ) -> Optional[SequentialResult]:
        """Serve ``target_width`` from a cached (stricter) run, if valid.

        Sequential indicators are bit-identical prefixes: a run asked
        for a *wider* target walks the same extension trace and stops
        at the first step whose width clears it, so the cached run's
        prefix up to that step IS the fresh answer.  A cached run that
        exhausted its cap (``met=False``) is the full trace any target
        would produce.  Returns ``None`` when the cached run stopped
        early of what ``target_width`` needs — the caller recomputes
        (and the stricter fresh run then replaces the cache entry,
        extending it).
        """
        for index, step in enumerate(cached.steps):
            if step.width <= target_width:
                result = dataclasses.replace(
                    cached.result,
                    indicators=cached.result.indicators[:step.trials],
                    timings=None,
                )
                return SequentialResult(
                    result=result, steps=cached.steps[:index + 1],
                    target_width=target_width, bound=cached.bound, met=True,
                )
        if not cached.met:
            # Capped run: a stricter target runs the identical trace
            # and caps too — only the honest `met` recomputation
            # (still False here: no step cleared the target) differs.
            return SequentialResult(
                result=cached.result, steps=cached.steps,
                target_width=target_width, bound=cached.bound, met=False,
            )
        return None

    async def submit_until(self, query: SequentialQuery) -> SequentialAnswer:
        """Answer one adaptive query via :meth:`TrialRunner.run_until`.

        Coalesces concurrent identical queries on ``(fingerprint,
        target_width)``; the memo key excludes the target, so any
        cached stricter run serves a wider target by prefix truncation
        (byte-identical, per the sequential prefix invariant).
        """
        start = time.perf_counter()
        self._queries += 1
        registry = get_registry()
        registry.counter("serve.queries").inc()
        try:
            with span("serve.query", scenario=query.scenario):
                with span("serve.resolve"):
                    family = self._family(query.scenario)
                    if family.kind == FAMILY_EXACT:
                        raise QueryError(
                            "bad-request",
                            f"scenario {query.scenario!r} is exact "
                            f"(combinatorial); run_until does not apply"
                        )
                    self._validate_sequential(query)
                    runner = self._resolve(query)
                with span("serve.fingerprint"):
                    fingerprint = scenario_fingerprint(
                        runner.algorithm_factory, runner.failure_model,
                        query.max_trials, query.seed,
                        extra=("run_until", query.bound,
                               SEQUENTIAL_CONFIDENCE,
                               SEQUENTIAL_INITIAL_TRIALS),
                    )
                target = float(query.target_width)
                with span("serve.cache"):
                    cached = self._cache.get(fingerprint)
                if isinstance(cached, SequentialResult):
                    served = self._truncate_sequential(cached, target)
                    if served is not None:
                        self._cache_hits += 1
                        registry.counter("serve.answers",
                                         source=SOURCE_CACHE).inc()
                        return SequentialAnswer(
                            query=query, sequential=served,
                            fingerprint=fingerprint, source=SOURCE_CACHE,
                            elapsed=time.perf_counter() - start,
                        )
                arunner = AsyncTrialRunner(runner, self._executor)

                async def compute() -> SequentialResult:
                    async with self._admission.admit("run_until"):
                        with span("serve.run", tier="run_until"):
                            return await arunner.run_until(
                                target, query.max_trials, query.seed,
                                SEQUENTIAL_CONFIDENCE, bound=query.bound,
                                initial_trials=SEQUENTIAL_INITIAL_TRIALS,
                            )

                with span("serve.coalesce"):
                    sequential, coalesced = await self._coalescer.run(
                        (fingerprint, target), compute)
                if coalesced:
                    self._coalesced_hits += 1
                else:
                    self._computed += 1
                    self._memoise(fingerprint, sequential)
                source = SOURCE_COALESCED if coalesced else SOURCE_COMPUTED
                registry.counter("serve.answers", source=source).inc()
                return SequentialAnswer(
                    query=query, sequential=sequential,
                    fingerprint=fingerprint, source=source,
                    elapsed=time.perf_counter() - start,
                )
        except QueryError as error:
            self._errors += 1
            if isinstance(error, OverloadedError):
                self._overloaded += 1
            registry.counter("serve.errors", code=error.code).inc()
            raise
