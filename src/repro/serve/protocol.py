"""Newline-delimited-JSON TCP protocol for the simulation service.

One JSON object per line, in both directions.  Requests::

    {"id": 1, "scenario": "windowed-malicious", "p": 0.25, "n": 4,
     "trials": 2000, "seed": 7}
    {"id": 2, "op": "run_until", "scenario": "flooding", "p": 0.1,
     "n": 16, "target_width": 0.05, "max_trials": 100000}
    {"id": 3, "op": "stats"}
    {"id": 4, "op": "catalog"}
    {"id": 5, "op": "metrics"}

Responses echo the request ``id`` (when one parsed) and carry
``"ok": true/false``.  A successful query response::

    {"id": 1, "ok": true, "scenario": "windowed-malicious",
     "estimate": 0.97, "successes": 1940, "trials": 2000,
     "backend": "batchsim", "source": "computed",
     "fingerprint": "<sha256>", "indicators_sha256": "<sha256>",
     "elapsed_ms": 412.7}

The adaptive ``run_until`` op drives the sequential engine
(:meth:`TrialRunner.run_until`) server-side: its response adds
``target_width`` / ``max_trials`` / ``bound``, the honest ``met``
flag, the final interval ``width``, and the per-extension ``steps``
trace (``[[trials, successes, width], ...]``).  Sequential answers are
memo-keyed on the scenario alone, so a cached stricter run serves any
wider target by prefix truncation — byte-identically, which the
``indicators_sha256`` field lets clients verify.

``indicators_sha256`` digests the raw indicator bytes, so clients can
assert that a cached or coalesced replay is byte-identical to a cold
run without shipping the whole vector.  Errors answer
``{"ok": false, "error": "<code>", "message": "..."}`` with codes
``bad-json`` / ``bad-request`` / ``unknown-scenario`` /
``bad-parameters`` / ``overloaded`` / ``internal`` — a malformed line
never kills the connection.  ``overloaded`` responses (admission
control shed the run; see :mod:`repro.serve.admission`) additionally
carry ``retry_after_ms``, a back-off hint scaled by the queue depth at
rejection.

Requests on one connection may be **pipelined**: the server processes
each line as its own task and writes responses as they complete (the
``id`` is the correlation key; responses can arrive out of order).
That is what lets N duplicate queries from one client coalesce into a
single batch execution.

The ``metrics`` op returns the process-wide :mod:`repro.obs` registry
snapshot (``{"ok": true, "metrics": {counters, gauges, histograms}}``)
— the machine-readable twin of ``stats``; pipe it through ``python -m
repro.obs render`` (or point that command at a live server with
``--host``/``--port``) for the Prometheus text exposition.  The server
itself feeds the registry: per-op request counters (``serve.op``),
wire-level error counters (``serve.wire.errors`` by code), a
``serve.wire.inflight`` gauge of request lines currently being
processed, and a ``serve.connections`` counter.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.registry import all_families
from repro.obs import get_registry
from repro.serve.service import (
    Answer,
    OverloadedError,
    Query,
    QueryError,
    SequentialAnswer,
    SequentialQuery,
    SimulationService,
)

__all__ = ["SimulationServer", "query_one", "query_many",
           "MAX_LINE_BYTES"]

#: Request-line size limit — a serving-layer guard against unbounded
#: buffering, far above any legitimate query.
MAX_LINE_BYTES = 64 * 1024

_QUERY_KEYS = {"id", "op", "scenario", "p", "n", "trials", "seed", "params"}
_RUN_UNTIL_KEYS = {"id", "op", "scenario", "p", "n", "seed", "params",
                   "target_width", "max_trials", "bound"}


def _error(code: str, message: str,
           request_id: Any = None) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"ok": False, "error": code,
                               "message": message}
    if request_id is not None:
        payload["id"] = request_id
    return payload


def _query_error(error: QueryError, request_id: Any) -> Dict[str, Any]:
    payload = _error(error.code, error.message, request_id)
    if isinstance(error, OverloadedError):
        payload["retry_after_ms"] = round(error.retry_after_ms, 3)
    return payload


def _answer_payload(answer: Answer, request_id: Any) -> Dict[str, Any]:
    payload = {
        "ok": True,
        "scenario": answer.query.scenario,
        "estimate": answer.estimate,
        "successes": answer.successes,
        "trials": answer.trials,
        "backend": answer.backend,
        "workers": answer.result.workers,
        "seed": answer.result.seed,
        "source": answer.source,
        "fingerprint": answer.fingerprint,
        "indicators_sha256": answer.indicators_digest(),
        "elapsed_ms": round(answer.elapsed * 1000.0, 3),
    }
    if request_id is not None:
        payload["id"] = request_id
    return payload


def _sequential_payload(answer: SequentialAnswer,
                        request_id: Any) -> Dict[str, Any]:
    sequential = answer.sequential
    payload = {
        "ok": True,
        "scenario": answer.query.scenario,
        "estimate": answer.estimate,
        "successes": answer.result.successes,
        "trials": answer.result.trials,
        "backend": answer.result.backend,
        "workers": answer.result.workers,
        "seed": answer.result.seed,
        "source": answer.source,
        "fingerprint": answer.fingerprint,
        "indicators_sha256": answer.indicators_digest(),
        "elapsed_ms": round(answer.elapsed * 1000.0, 3),
        "target_width": sequential.target_width,
        "max_trials": answer.query.max_trials,
        "bound": sequential.bound,
        "met": sequential.met,
        "width": answer.width,
        "steps": [[step.trials, step.successes, step.width]
                  for step in sequential.steps],
    }
    if request_id is not None:
        payload["id"] = request_id
    return payload


class SimulationServer:
    """Asyncio TCP front end over a :class:`SimulationService`."""

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 0):
        self._service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections = 0

    @property
    def service(self) -> SimulationService:
        """The in-process service this server fronts."""
        return self._service

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves on start)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def connections_served(self) -> int:
        """Total connections accepted since start."""
        return self._connections

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port,
            limit=MAX_LINE_BYTES,
        )
        return self.address

    async def close(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``python -m repro.serve`` loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        get_registry().counter("serve.connections").inc()
        write_lock = asyncio.Lock()
        pending: List[asyncio.Task] = []

        async def respond(payload: Dict[str, Any]) -> None:
            data = json.dumps(payload, separators=(",", ":")) + "\n"
            async with write_lock:
                writer.write(data.encode("utf8"))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await respond(_error(
                        "bad-request",
                        f"request line exceeds {MAX_LINE_BYTES} bytes"
                    ))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_line(line, respond)
                )
                pending.append(task)
                pending = [item for item in pending if not item.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            # Loop/server shutdown with the connection still open:
            # drop in-flight line tasks and close quietly instead of
            # letting the cancellation escape into asyncio's stream
            # callback (which logs it as an error).
            for task in pending:
                task.cancel()
        except ConnectionResetError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError):
                # Teardown may cancel the handler while it drains the
                # close; the transport is going away either way.
                pass

    async def _handle_line(self, line: bytes, respond) -> None:
        registry = get_registry()
        inflight = registry.gauge("serve.wire.inflight")
        inflight.inc()
        try:
            payload = await self._process_line(line)
        finally:
            inflight.dec()
        if not payload.get("ok"):
            registry.counter("serve.wire.errors",
                             code=payload.get("error", "unknown")).inc()
        try:
            await respond(payload)
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _process_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line.decode("utf8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return _error("bad-json", f"request is not valid JSON: {error}")
        if not isinstance(request, dict):
            return _error("bad-request", "request must be a JSON object")
        request_id = request.get("id")
        op = request.get("op", "query")
        if op in ("query", "run_until", "stats", "catalog", "metrics"):
            get_registry().counter("serve.op", op=op).inc()
        if op == "stats":
            return self._stats_payload(request_id)
        if op == "catalog":
            return self._catalog_payload(request_id)
        if op == "metrics":
            return self._metrics_payload(request_id)
        if op == "run_until":
            return await self._run_until_payload(request, request_id)
        if op != "query":
            return _error("bad-request", f"unknown op {op!r}", request_id)
        unknown = set(request) - _QUERY_KEYS
        if unknown:
            return _error(
                "bad-request",
                f"unknown request field(s): {', '.join(sorted(unknown))}",
                request_id,
            )
        missing = [key for key in ("scenario", "p", "n", "trials")
                   if key not in request]
        if missing:
            return _error(
                "bad-request",
                f"missing required field(s): {', '.join(missing)}",
                request_id,
            )
        if not isinstance(request.get("p"), (int, float)) or isinstance(
                request.get("p"), bool):
            return _error("bad-request", "p must be a number", request_id)
        params = request.get("params", {})
        if not isinstance(params, dict):
            return _error("bad-request", "params must be a JSON object",
                          request_id)
        query = Query(
            scenario=request["scenario"], p=float(request["p"]),
            n=request["n"], trials=request["trials"],
            seed=request.get("seed", 0), params=params,
        )
        try:
            answer = await self._service.submit(query)
        except QueryError as error:
            return _query_error(error, request_id)
        except Exception as error:  # pragma: no cover - defensive
            return _error("internal", f"{type(error).__name__}: {error}",
                          request_id)
        return _answer_payload(answer, request_id)

    async def _run_until_payload(self, request: Dict[str, Any],
                                 request_id: Any) -> Dict[str, Any]:
        unknown = set(request) - _RUN_UNTIL_KEYS
        if unknown:
            return _error(
                "bad-request",
                f"unknown request field(s): {', '.join(sorted(unknown))}",
                request_id,
            )
        missing = [key for key in ("scenario", "p", "n", "target_width",
                                   "max_trials") if key not in request]
        if missing:
            return _error(
                "bad-request",
                f"missing required field(s): {', '.join(missing)}",
                request_id,
            )
        for field in ("p", "target_width"):
            if not isinstance(request.get(field), (int, float)) or \
                    isinstance(request.get(field), bool):
                return _error("bad-request", f"{field} must be a number",
                              request_id)
        params = request.get("params", {})
        if not isinstance(params, dict):
            return _error("bad-request", "params must be a JSON object",
                          request_id)
        bound = request.get("bound", "hoeffding")
        if not isinstance(bound, str):
            return _error("bad-request", "bound must be a string",
                          request_id)
        query = SequentialQuery(
            scenario=request["scenario"], p=float(request["p"]),
            n=request["n"], target_width=float(request["target_width"]),
            max_trials=request["max_trials"], seed=request.get("seed", 0),
            bound=bound, params=params,
        )
        try:
            answer = await self._service.submit_until(query)
        except QueryError as error:
            return _query_error(error, request_id)
        except Exception as error:  # pragma: no cover - defensive
            return _error("internal", f"{type(error).__name__}: {error}",
                          request_id)
        return _sequential_payload(answer, request_id)

    def _stats_payload(self, request_id: Any) -> Dict[str, Any]:
        stats = self._service.stats()
        payload: Dict[str, Any] = {
            "ok": True,
            "queries": stats.queries,
            "computed": stats.computed,
            "coalesced_hits": stats.coalesced_hits,
            "cache_hits": stats.cache_hits,
            "fastsim_answers": stats.fastsim_answers,
            "errors": stats.errors,
            "shared_work_rate": stats.shared_work_rate,
            "uptime_seconds": round(stats.uptime_seconds, 3),
            "cache": {
                "hits": stats.cache.hits,
                "misses": stats.cache.misses,
                "evictions": stats.cache.evictions,
                "size": stats.cache.size,
                "capacity": stats.cache.capacity,
            },
            "coalescer": {
                "inflight": stats.coalesce_inflight,
                "started": stats.coalesce_started,
                "joined": stats.coalesce_joined,
            },
            "admission": self._admission_block(),
            "executor": dict(stats.executor),
        }
        if request_id is not None:
            payload["id"] = request_id
        return payload

    def _admission_block(self) -> Dict[str, Any]:
        stats = self._service.stats()
        admission = self._service.admission.stats()
        return {
            "admitted": admission.admitted,
            "rejected": admission.rejected,
            "inflight": admission.inflight,
            "waiting": admission.waiting,
            "overloaded_answers": stats.overloaded,
        }

    def _metrics_payload(self, request_id: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "ok": True,
            "metrics": get_registry().snapshot(),
        }
        if request_id is not None:
            payload["id"] = request_id
        return payload

    def _catalog_payload(self, request_id: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "ok": True,
            "scenarios": [
                {
                    "name": family.name,
                    "description": family.description,
                    "n": family.size_meaning,
                    "kind": family.kind,
                    "experiments": list(family.experiments),
                }
                for family in all_families()
            ],
        }
        if request_id is not None:
            payload["id"] = request_id
        return payload


# -- client helpers ----------------------------------------------------


async def query_one(host: str, port: int,
                    request: Dict[str, Any]) -> Dict[str, Any]:
    """Send one request and await its single response line."""
    responses = await query_many(host, port, [request])
    return responses[0]


async def query_many(host: str, port: int,
                     requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Pipeline ``requests`` over one connection.

    All request lines are written up front (which is what makes
    duplicate queries coalesce server-side), then one response line is
    read per request.  Responses are re-ordered to match the request
    list via their ``id`` echoes; requests without an ``id`` get one
    injected for correlation.  An empty request list answers ``[]``
    without opening a connection.
    """
    if not requests:
        return []
    reader, writer = await asyncio.open_connection(host, port,
                                                   limit=MAX_LINE_BYTES)
    try:
        tagged: List[Dict[str, Any]] = []
        for index, request in enumerate(requests):
            request = dict(request)
            request.setdefault("id", f"q{index}")
            tagged.append(request)
        payload = "".join(
            json.dumps(request, separators=(",", ":")) + "\n"
            for request in tagged
        )
        writer.write(payload.encode("utf8"))
        await writer.drain()
        by_id: Dict[Any, Dict[str, Any]] = {}
        unmatched: List[Dict[str, Any]] = []
        for _ in tagged:
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed before all responses")
            response = json.loads(line)
            if isinstance(response, dict) and "id" in response:
                by_id[response["id"]] = response
            else:
                unmatched.append(response)
        ordered = []
        for request in tagged:
            ordered.append(by_id.get(request["id"],
                                     unmatched.pop(0) if unmatched
                                     else _error("internal",
                                                 "response missing")))
        return ordered
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
