"""Persistent exact memo: an append-only NDJSON journal on disk.

The service's LRU memo is exact — a fingerprint fully determines the
result bytes — which makes persistence trivial to get *right*: replay
the journal, and every rehydrated entry is byte-identical to the run
that produced it.  This module owns the on-disk format:

* **Header** (first line, versioned)::

      {"format": "repro-serve-memo", "version": 1,
       "fingerprint_version": 1}

  Unknown *newer* versions refuse to load (never clobber a future
  format); a missing or mangled header restarts the journal fresh.

* **Records** (one JSON object per line, appended as results are
  computed)::

      {"key": "<fingerprint>", "kind": "trial" | "sequential",
       "payload": {...}, "crc": <crc32>}

  ``payload`` packs the indicator booleans as base64 bit-packed bytes
  plus the result metadata (backend, workers, seed, confidence; for
  sequential records also the step trace, target width, bound and the
  honest ``met`` flag).  ``crc`` is the CRC-32 of the canonical JSON
  of the other three fields — a torn or bit-flipped line fails the
  check, is **dropped and logged** (``repro.serve.persistence``
  logger, ``serve.memo.corrupt`` counter), and never crashes the
  server; every other record still loads.  Later records for the same
  key win, so an append-only file doubles as a last-writer-wins map.

* **Compaction** rewrites the journal to one record per live cache
  entry, atomically: write to ``<path>.tmp``, ``os.replace`` over the
  journal.  A crash mid-compaction leaves either the old or the new
  file, both valid.

Nothing here touches the experiment RNG — persistence is bookkeeping
around already-computed results, so the bit-identity contract is
preserved by construction (property-pinned in
``tests/test_serve_persistence.py``).
"""

from __future__ import annotations

import base64
import json
import logging
import os
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.montecarlo.fingerprint import FINGERPRINT_VERSION
from repro.montecarlo.trials import (
    SequentialResult,
    SequentialStep,
    TrialResult,
)
from repro.obs import get_registry

__all__ = ["MemoJournal", "MemoRecord", "FORMAT_NAME", "FORMAT_VERSION"]

logger = logging.getLogger("repro.serve.persistence")

FORMAT_NAME = "repro-serve-memo"
FORMAT_VERSION = 1

KIND_TRIAL = "trial"
KIND_SEQUENTIAL = "sequential"

MemoValue = Union[TrialResult, SequentialResult]
MemoRecord = Tuple[str, MemoValue]


# -- result (de)serialisation ------------------------------------------


def _encode_trial(result: TrialResult) -> Dict[str, Any]:
    indicators = np.ascontiguousarray(result.indicators, dtype=bool)
    packed = np.packbits(indicators.view(np.uint8))
    return {
        "indicators": base64.b64encode(packed.tobytes()).decode("ascii"),
        "trials": int(indicators.size),
        "backend": result.backend,
        "workers": int(result.workers),
        "seed": int(result.seed),
        "confidence": float(result.confidence),
    }


def _decode_trial(payload: Dict[str, Any]) -> TrialResult:
    packed = np.frombuffer(base64.b64decode(payload["indicators"]),
                           dtype=np.uint8)
    trials = int(payload["trials"])
    if packed.size * 8 < trials:
        raise ValueError("indicator payload shorter than trial count")
    indicators = np.unpackbits(packed)[:trials].astype(bool)
    return TrialResult(
        indicators=indicators,
        backend=str(payload["backend"]),
        workers=int(payload["workers"]),
        seed=int(payload["seed"]),
        confidence=float(payload["confidence"]),
    )


def _encode_value(value: MemoValue) -> Tuple[str, Dict[str, Any]]:
    if isinstance(value, TrialResult):
        return KIND_TRIAL, _encode_trial(value)
    if isinstance(value, SequentialResult):
        return KIND_SEQUENTIAL, {
            "result": _encode_trial(value.result),
            "steps": [[int(step.trials), int(step.successes),
                       float(step.width)] for step in value.steps],
            "target_width": float(value.target_width),
            "bound": value.bound,
            "met": bool(value.met),
        }
    raise TypeError(
        f"memo values must be TrialResult or SequentialResult, got "
        f"{type(value).__name__}"
    )


def _decode_value(kind: str, payload: Dict[str, Any]) -> MemoValue:
    if kind == KIND_TRIAL:
        return _decode_trial(payload)
    if kind == KIND_SEQUENTIAL:
        return SequentialResult(
            result=_decode_trial(payload["result"]),
            steps=tuple(
                SequentialStep(trials=int(trials), successes=int(successes),
                               width=float(width))
                for trials, successes, width in payload["steps"]
            ),
            target_width=float(payload["target_width"]),
            bound=str(payload["bound"]),
            met=bool(payload["met"]),
        )
    raise ValueError(f"unknown memo record kind {kind!r}")


def _crc(key: str, kind: str, payload: Dict[str, Any]) -> int:
    canonical = json.dumps({"key": key, "kind": kind, "payload": payload},
                           sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf8"))


def _record_line(key: str, value: MemoValue) -> str:
    kind, payload = _encode_value(value)
    record = {"key": key, "kind": kind, "payload": payload,
              "crc": _crc(key, kind, payload)}
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _header_line() -> str:
    header = {"format": FORMAT_NAME, "version": FORMAT_VERSION,
              "fingerprint_version": FINGERPRINT_VERSION}
    return json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n"


class MemoJournal:
    """Append-only, CRC-checked, atomically-compactable memo journal.

    Usage::

        journal = MemoJournal(path)
        for key, value in journal.load():   # rehydrate (oldest first)
            cache.put(key, value)
        journal.append(key, result)         # after each fresh compute
        journal.compact(cache.items())      # drop superseded records

    ``load()`` must be called before ``append()``; it creates the file
    (with header) when missing and opens the append handle.
    """

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._handle = None
        self._record_count = 0     # record lines in the file right now
        self._loaded = 0
        self._dropped = 0
        self._compactions = 0

    @property
    def path(self) -> Path:
        """The journal file path."""
        return self._path

    @property
    def record_count(self) -> int:
        """Record lines currently in the file (including superseded)."""
        return self._record_count

    @property
    def records_loaded(self) -> int:
        """Valid records read by :meth:`load`."""
        return self._loaded

    @property
    def records_dropped(self) -> int:
        """Corrupt lines dropped by :meth:`load` (logged, never fatal)."""
        return self._dropped

    @property
    def compactions(self) -> int:
        """Atomic rewrites performed."""
        return self._compactions

    # -- lifecycle -----------------------------------------------------

    def load(self) -> List[MemoRecord]:
        """Read every valid record (file order) and open for append.

        Corrupt lines — torn tails, CRC mismatches, malformed JSON —
        are dropped individually with a log line and a
        ``serve.memo.corrupt`` count.  A missing file is created; a
        mangled header restarts the journal fresh; a *newer* format
        version raises (never clobber data from the future).
        """
        records: List[MemoRecord] = []
        if self._path.exists():
            raw = self._path.read_bytes()
            lines = raw.split(b"\n")
            if not self._check_header(lines[0] if lines else b""):
                self._rewrite([])
            else:
                for line in lines[1:]:
                    if not line.strip():
                        continue
                    decoded = self._decode_record(line)
                    self._record_count += 1
                    if decoded is None:
                        self._drop(line)
                    else:
                        records.append(decoded)
        else:
            self._rewrite([])
        self._loaded = len(records)
        get_registry().counter("serve.memo.loaded").inc(len(records))
        self._open_append()
        return records

    def close(self) -> None:
        """Flush and close the append handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- writes --------------------------------------------------------

    def append(self, key: str, value: MemoValue) -> None:
        """Journal one computed result (flushed line-atomically)."""
        if self._handle is None:
            raise RuntimeError("journal is not open — call load() first")
        self._handle.write(_record_line(key, value))
        self._handle.flush()
        self._record_count += 1
        get_registry().counter("serve.memo.appended").inc()

    def compact(self, live: Iterable[MemoRecord]) -> None:
        """Atomically rewrite the journal to exactly ``live``.

        Write the header plus one record per live entry to
        ``<path>.tmp`` and ``os.replace`` it over the journal, so a
        crash at any point leaves a valid file (old or new).
        """
        self.close()
        self._rewrite(list(live))
        self._compactions += 1
        get_registry().counter("serve.memo.compactions").inc()
        self._open_append()

    # -- internals -----------------------------------------------------

    def _open_append(self) -> None:
        if self._handle is None:
            self._handle = self._path.open("a", encoding="utf8")

    def _rewrite(self, records: List[MemoRecord]) -> None:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._path.with_name(self._path.name + ".tmp")
        with tmp.open("w", encoding="utf8") as handle:
            handle.write(_header_line())
            for key, value in records:
                handle.write(_record_line(key, value))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._path)
        self._record_count = len(records)

    def _check_header(self, line: bytes) -> bool:
        try:
            header = json.loads(line.decode("utf8"))
        except (UnicodeDecodeError, ValueError):
            logger.warning("memo journal %s: unreadable header — "
                           "restarting fresh", self._path)
            return False
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            logger.warning("memo journal %s: not a %s file — "
                           "restarting fresh", self._path, FORMAT_NAME)
            return False
        version = header.get("version")
        if isinstance(version, int) and version > FORMAT_VERSION:
            raise ValueError(
                f"memo journal {self._path} has format version {version}, "
                f"newer than this build's {FORMAT_VERSION} — refusing to "
                f"load or overwrite it"
            )
        if version != FORMAT_VERSION:
            logger.warning("memo journal %s: unsupported version %r — "
                           "restarting fresh", self._path, version)
            return False
        return True

    def _decode_record(self, line: bytes) -> Optional[MemoRecord]:
        try:
            record = json.loads(line.decode("utf8"))
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
            key = record["key"]
            kind = record["kind"]
            payload = record["payload"]
            if record["crc"] != _crc(key, kind, payload):
                raise ValueError("CRC mismatch")
            return str(key), _decode_value(kind, payload)
        except (KeyError, TypeError, ValueError) as error:
            logger.warning("memo journal %s: dropping corrupt record "
                           "(%s)", self._path, error)
            return None

    def _drop(self, line: bytes) -> None:
        self._dropped += 1
        get_registry().counter("serve.memo.corrupt").inc()
