"""Command-line front end: ``python -m repro.serve``.

Subcommands::

    serve    run the TCP server until interrupted (the default)
    traffic  fire a seeded duplicate-heavy burst at a running server
    smoke    start a server, fire an in-process burst, assert that
             coalescing/caching actually shared work and that the
             ``metrics`` wire op exposes the core series (query
             latency histogram, cache lookups, per-backend trial
             counts), shut down — exit status 0 iff healthy (what CI
             runs)
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.serve.protocol import SimulationServer, query_one
from repro.serve.service import SimulationService
from repro.serve.traffic import run_over_wire


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on broadcast-simulation service.",
    )
    sub = parser.add_subparsers(dest="command")

    serve = sub.add_parser("serve", help="run the TCP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7641,
                       help="TCP port (default 7641; 0 picks a free one)")
    serve.add_argument("--workers", type=int, default=1,
                       help="processes each Monte-Carlo run shards over")
    serve.add_argument("--cache-capacity", type=int, default=256,
                       help="exact-memo LRU entries (0 disables caching)")
    serve.add_argument("--memo-path", default=None,
                       help="persistent memo journal; replayed on start "
                            "so a restarted server answers warm queries "
                            "from cache, byte-identically")
    serve.add_argument("--max-concurrent-runs", type=int, default=8,
                       help="fresh executions in flight per op before "
                            "runs queue")
    serve.add_argument("--max-queued-runs", type=int, default=64,
                       help="queued runs per op before the server sheds "
                            "with a structured 'overloaded' error")
    serve.add_argument("--executor", default=None,
                       metavar="SPEC",
                       help="shard substrate spec: 'in-process', "
                            "'local-process[:N]' or "
                            "'remote:host:port,...' (default: resolved "
                            "from --workers)")
    serve.add_argument("--executor-workers", default=None,
                       metavar="HOST:PORT,...",
                       help="shorthand for --executor remote:...: "
                            "schedule Monte-Carlo batches onto these "
                            "repro.distrib workers (cache/coalesce/"
                            "admission semantics unchanged — answers "
                            "are placement-independent)")

    traffic = sub.add_parser(
        "traffic", help="fire a seeded burst at a running server")
    traffic.add_argument("--host", default="127.0.0.1")
    traffic.add_argument("--port", type=int, default=7641)
    traffic.add_argument("--queries", type=int, default=64)
    traffic.add_argument("--pool-size", type=int, default=4,
                         help="distinct queries the burst draws from")
    traffic.add_argument("--trials", type=int, default=256)
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--connections", type=int, default=4)

    smoke = sub.add_parser(
        "smoke", help="self-contained server health check (CI)")
    smoke.add_argument("--queries", type=int, default=48)
    smoke.add_argument("--pool-size", type=int, default=3)
    smoke.add_argument("--trials", type=int, default=128)
    smoke.add_argument("--seed", type=int, default=0)
    return parser


async def _serve(args: argparse.Namespace) -> int:
    if args.executor is not None and args.executor_workers is not None:
        print("--executor and --executor-workers are mutually exclusive",
              flush=True)
        return 2
    shard_executor = args.executor
    if args.executor_workers is not None:
        shard_executor = f"remote:{args.executor_workers}"
    service = SimulationService(
        workers=args.workers, cache_capacity=args.cache_capacity,
        shard_executor=shard_executor,
        memo_path=args.memo_path,
        max_concurrent_runs=args.max_concurrent_runs,
        max_queued_runs=args.max_queued_runs,
    )
    server = SimulationServer(service, args.host, args.port)
    host, port = await server.start()
    substrate = service.shard_executor.describe()
    peers = substrate.get("peers")
    print(f"repro.serve shard executor {substrate['backend']} "
          f"({substrate['workers']} workers"
          f"{': ' + ', '.join(peers) if peers else ''})", flush=True)
    if service.journal is not None:
        print(f"repro.serve memo journal {service.journal.path} "
              f"({service.journal.records_loaded} records rehydrated, "
              f"{service.journal.records_dropped} corrupt dropped)",
              flush=True)
    print(f"repro.serve listening on {host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
        service.close()
    return 0


async def _traffic(args: argparse.Namespace) -> int:
    report = await run_over_wire(
        args.host, args.port, queries=args.queries,
        pool_size=args.pool_size, trials=args.trials, seed=args.seed,
        connections=args.connections,
    )
    print(report.describe(), flush=True)
    return 0 if report.errors == 0 else 1


def _check_metrics(response: dict) -> List[str]:
    """Assert the ``metrics`` wire op exposed the core serving series."""
    if not response.get("ok"):
        return [f"metrics op failed: {response}"]
    snapshot = response.get("metrics", {})
    counters = snapshot.get("counters", [])
    histograms = snapshot.get("histograms", [])

    def counter_total(name: str) -> float:
        return sum(entry["value"] for entry in counters
                   if entry["name"] == name)

    failures = []
    query_observations = sum(
        entry["count"] for entry in histograms
        if entry["name"] == "serve.query.seconds"
    )
    if query_observations < 1:
        failures.append("metrics: no serve.query.seconds observations")
    lookups = (counter_total("serve.cache.hits")
               + counter_total("serve.cache.misses"))
    if lookups < 1:
        failures.append("metrics: no serve.cache lookups recorded")
    batch_trials = sum(
        entry["value"] for entry in counters
        if entry["name"] == "mc.trials"
        and entry.get("labels", {}).get("backend") == "batchsim"
    )
    if batch_trials < 1:
        failures.append("metrics: no mc.trials{backend=batchsim} recorded")
    return failures


async def _smoke(args: argparse.Namespace) -> int:
    """Start, burst over the wire, assert shared work, shut down."""
    service = SimulationService()
    server = SimulationServer(service)
    host, port = await server.start()
    print(f"smoke: server on {host}:{port}", flush=True)
    try:
        report = await run_over_wire(
            host, port, queries=args.queries, pool_size=args.pool_size,
            trials=args.trials, seed=args.seed,
        )
        metrics_response = await query_one(host, port, {"op": "metrics"})
    finally:
        await server.close()
    print(f"smoke: {report.describe()}", flush=True)
    failures = []
    if report.errors:
        failures.append(f"{report.errors} queries errored")
    failures.extend(_check_metrics(metrics_response))
    if report.shared_answers < 1:
        failures.append("no query was coalesced or served from cache")
    if report.distinct_fingerprints >= report.queries:
        failures.append("burst was not duplicate-heavy")
    stats = service.stats()
    computed_cells = stats.computed
    if computed_cells > report.distinct_fingerprints:
        failures.append(
            f"{computed_cells} executions for "
            f"{report.distinct_fingerprints} distinct queries — "
            f"duplicates were not shared"
        )
    if failures:
        for failure in failures:
            print(f"smoke: FAIL {failure}", flush=True)
        return 1
    print("smoke: OK (clean shutdown, duplicates shared)", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command or "serve"
    if command == "serve":
        if args.command is None:  # bare ``python -m repro.serve``
            args = _build_parser().parse_args(["serve"])
        runner = _serve
    elif command == "traffic":
        runner = _traffic
    else:
        runner = _smoke
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
