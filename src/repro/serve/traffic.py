"""Seeded synthetic traffic for exercising the simulation service.

Real serving load for this repo is duplicate-heavy: threshold-curve
dashboards and sweep notebooks keep re-asking for the same
``(scenario, p, n, trials, seed)`` cells.  The generator reproduces
that shape — it draws each query from a small *pool* of distinct
queries, so with ``queries >> pool_size`` most requests are duplicates
and the coalescer/cache should absorb them.

Everything is seeded (``random.Random``), so a traffic run is
reproducible: same seed, same query sequence.  The generator can drive
the in-process :class:`~repro.serve.service.SimulationService` API
directly or a live TCP server via the wire protocol.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro._validation import check_positive_int
from repro.obs import Histogram
from repro.serve.protocol import MAX_LINE_BYTES
from repro.serve.service import (
    OverloadedError,
    Query,
    QueryError,
    SimulationService,
)

__all__ = ["TrafficReport", "make_query_pool", "run_inprocess",
           "run_over_wire"]

#: Default Monte-Carlo scenario cells the pool draws from.  Small sizes
#: and trial counts keep a burst cheap while still forcing real
#: batchsim executions (these families have no fastsim closed form).
_MONTE_CARLO_CELLS: Tuple[Tuple[str, float, int], ...] = (
    ("windowed-malicious", 0.2, 2),
    ("windowed-malicious", 0.4, 2),
    ("kucera-flip", 0.3, 4),
    ("kucera-flip", 0.1, 6),
)


@dataclass
class TrafficReport:
    """What a traffic run observed (the smoke test's assertion surface).

    ``p50_seconds`` / ``p95_seconds`` are per-query latency
    percentiles, bucket-interpolated from an
    :class:`repro.obs.Histogram` over the same fixed latency buckets
    the serving metrics use — so the traffic summary and a Prometheus
    dashboard quantile over ``serve_query_seconds_bucket`` agree on
    resolution.  Both are 0.0 when no query succeeded.
    """

    queries: int
    elapsed: float
    sources: Dict[str, int] = field(default_factory=dict)
    errors: int = 0
    distinct_fingerprints: int = 0
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0
    #: Errors that were admission-control sheds (a subset of
    #: ``errors``): the server answered ``overloaded`` instead of
    #: queueing unboundedly.  Non-zero under a saturating burst is the
    #: backpressure working, not a bug.
    overloaded: int = 0

    @property
    def qps(self) -> float:
        """Answered queries per second of wall clock."""
        if self.elapsed <= 0:
            return 0.0
        return self.queries / self.elapsed

    @property
    def shared_answers(self) -> int:
        """Answers served without a fresh execution."""
        return (self.sources.get("coalesced", 0)
                + self.sources.get("cache", 0))

    @property
    def shared_rate(self) -> float:
        """Fraction of successful answers that were coalesced or cached."""
        answered = self.queries - self.errors
        if answered <= 0:
            return 0.0
        return self.shared_answers / answered

    def describe(self) -> str:
        """One human-readable summary line per metric."""
        parts = [
            f"queries={self.queries}",
            f"elapsed={self.elapsed:.3f}s",
            f"qps={self.qps:.1f}",
            f"p50={self.p50_seconds * 1000.0:.1f}ms",
            f"p95={self.p95_seconds * 1000.0:.1f}ms",
            f"errors={self.errors}",
            f"overloaded={self.overloaded}",
            f"distinct={self.distinct_fingerprints}",
            f"shared_rate={self.shared_rate:.2f}",
        ]
        for source in sorted(self.sources):
            parts.append(f"{source}={self.sources[source]}")
        return " ".join(parts)


def make_query_pool(pool_size: int, *, trials: int = 256,
                    seed: int = 0) -> List[Query]:
    """``pool_size`` distinct Monte-Carlo queries, deterministically.

    Cells cycle through :data:`_MONTE_CARLO_CELLS`; once the cells are
    exhausted, later pool entries vary the root seed, so every entry
    has a distinct fingerprint.
    """
    check_positive_int(pool_size, "pool_size")
    pool: List[Query] = []
    for index in range(pool_size):
        scenario, p, n = _MONTE_CARLO_CELLS[index % len(_MONTE_CARLO_CELLS)]
        pool.append(Query(
            scenario=scenario, p=p, n=n, trials=trials,
            seed=seed + index // len(_MONTE_CARLO_CELLS),
        ))
    return pool


def _draw_sequence(pool: List[Query], queries: int,
                   seed: int) -> List[Query]:
    rng = random.Random(seed)
    return [pool[rng.randrange(len(pool))] for _ in range(queries)]


async def run_inprocess(service: SimulationService, *, queries: int = 64,
                        pool_size: int = 4, trials: int = 256,
                        seed: int = 0,
                        concurrency: int = 8) -> TrafficReport:
    """Fire a duplicate-heavy burst at the in-process API.

    ``concurrency`` identical queries in flight at once is what makes
    coalescing observable: duplicates that arrive while their twin is
    still executing join its flight; duplicates that arrive later hit
    the cache.
    """
    check_positive_int(queries, "queries")
    check_positive_int(concurrency, "concurrency")
    pool = make_query_pool(pool_size, trials=trials, seed=seed)
    sequence = _draw_sequence(pool, queries, seed)
    gate = asyncio.Semaphore(concurrency)
    sources: Dict[str, int] = {}
    errors = 0
    overloaded = 0
    latencies = Histogram()

    async def one(query: Query) -> None:
        nonlocal errors, overloaded
        async with gate:
            try:
                answer = await service.submit(query)
            except OverloadedError:
                errors += 1
                overloaded += 1
                return
            except QueryError:
                errors += 1
                return
            sources[answer.source] = sources.get(answer.source, 0) + 1
            latencies.observe(answer.elapsed)

    start = time.perf_counter()
    await asyncio.gather(*(one(query) for query in sequence))
    elapsed = time.perf_counter() - start
    distinct = len({service.fingerprint(query) for query in pool})
    return TrafficReport(
        queries=queries, elapsed=elapsed, sources=sources, errors=errors,
        distinct_fingerprints=distinct,
        p50_seconds=latencies.percentile(0.5) if latencies.count else 0.0,
        p95_seconds=latencies.percentile(0.95) if latencies.count else 0.0,
        overloaded=overloaded,
    )


async def run_over_wire(host: str, port: int, *, queries: int = 64,
                        pool_size: int = 4, trials: int = 256,
                        seed: int = 0,
                        connections: int = 4) -> TrafficReport:
    """Fire the same burst at a live server over TCP.

    The sequence is split round-robin over ``connections`` pipelined
    connections; each connection writes all its request lines up front,
    so server-side the duplicates overlap and coalesce.
    """
    check_positive_int(queries, "queries")
    check_positive_int(connections, "connections")
    pool = make_query_pool(pool_size, trials=trials, seed=seed)
    sequence = _draw_sequence(pool, queries, seed)
    batches: List[List[Query]] = [[] for _ in range(connections)]
    for index, query in enumerate(sequence):
        batches[index % connections].append(query)

    async def one_connection(batch: List[Query]) -> List[Dict[str, Any]]:
        if not batch:
            return []
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES)
        try:
            lines = []
            for index, query in enumerate(batch):
                lines.append(json.dumps({
                    "id": index, "scenario": query.scenario,
                    "p": query.p, "n": query.n, "trials": query.trials,
                    "seed": query.seed,
                }, separators=(",", ":")))
            writer.write(("\n".join(lines) + "\n").encode("utf8"))
            await writer.drain()
            responses = []
            for _ in batch:
                line = await reader.readline()
                if not line:
                    raise ConnectionError(
                        "server closed before all responses")
                responses.append(json.loads(line))
            return responses
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    start = time.perf_counter()
    all_responses = await asyncio.gather(
        *(one_connection(batch) for batch in batches))
    elapsed = time.perf_counter() - start
    sources: Dict[str, int] = {}
    errors = 0
    overloaded = 0
    fingerprints = set()
    latencies = Histogram()
    for responses in all_responses:
        for response in responses:
            if not response.get("ok"):
                errors += 1
                if response.get("error") == "overloaded":
                    overloaded += 1
                continue
            source = response.get("source", "unknown")
            sources[source] = sources.get(source, 0) + 1
            fingerprints.add(response.get("fingerprint"))
            latencies.observe(float(response.get("elapsed_ms", 0.0)) / 1000.0)
    return TrafficReport(
        queries=queries, elapsed=elapsed, sources=sources, errors=errors,
        distinct_fingerprints=len(fingerprints),
        p50_seconds=latencies.percentile(0.5) if latencies.count else 0.0,
        p95_seconds=latencies.percentile(0.95) if latencies.count else 0.0,
        overloaded=overloaded,
    )
