"""The stateless shard worker behind ``python -m repro.distrib worker``.

One asyncio TCP server per worker process.  Each connection is served
sequentially (NDJSON request in, NDJSON response out, ids echoed), but
``run`` ops execute on a dedicated single-thread pool so the event
loop stays responsive: a heartbeat ``ping`` on another connection is
answered immediately even while a multi-second shard is simulating.
One execution thread per worker is deliberate — the executor ships at
most one shard per worker connection at a time, so extra threads would
only let misbehaving clients oversubscribe the host.

The worker holds **no state between requests**: every ``run`` carries
the entrypoint spec and the pickled argument tuple (scenario factory
included), the worker rebuilds the scenario and runs the absolute
trial range, and by the bit-identity invariant the result is
byte-identical to what any other placement would have produced.
Killing a worker mid-shard therefore loses nothing but time — the
executor re-ships the same shard elsewhere.

``die_after_runs=N`` is the fault-injection hook used by the retry
regression tests and the CI ``distrib-smoke`` job: the worker serves
``N`` run ops normally, then hard-exits (``os._exit``; no reply, no
TCP goodbye) upon receiving the next one — exactly what a mid-shard
OOM kill looks like from the executor's side.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.distrib.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    WORKER_ROLE,
    decode_line,
    decode_payload,
    encode_line,
    encode_payload,
    resolve_function,
)

__all__ = ["ShardWorker"]


class ShardWorker:
    """A stateless NDJSON shard worker serving one TCP endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 die_after_runs: Optional[int] = None):
        if die_after_runs is not None and die_after_runs < 0:
            raise ValueError(
                f"die_after_runs must be >= 0, got {die_after_runs}")
        self._host = host
        self._port = port
        self._die_after_runs = die_after_runs
        self._runs_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-distrib-shard")

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port, limit=MAX_LINE_BYTES)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves port 0 to the real port."""
        assert self._server is not None, "worker not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None, "worker not started"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False, cancel_futures=True)

    # -- connection handling ------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized frame: the stream position is lost, so
                    # reject and hang up rather than resynchronise.
                    writer.write(encode_line(
                        {"ok": False, "error": "bad-request",
                         "message": f"frame exceeds {MAX_LINE_BYTES} bytes"}))
                    await writer.drain()
                    break
                if not line:
                    break
                reply = await self._dispatch(line)
                writer.write(encode_line(reply))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(self, line: bytes) -> Dict[str, Any]:
        try:
            message = decode_line(line)
        except ValueError as error:
            return {"ok": False, "error": "bad-json", "message": str(error)}
        ident = message.get("id")
        op = message.get("op")
        if op == "hello":
            return {"id": ident, "ok": True, "role": WORKER_ROLE,
                    "protocol": PROTOCOL_VERSION, "pid": os.getpid()}
        if op == "ping":
            return {"id": ident, "ok": True}
        if op == "run":
            return await self._run(ident, message)
        return {"id": ident, "ok": False, "error": "bad-request",
                "message": f"unknown op: {op!r}"}

    async def _run(self, ident: Any,
                   message: Dict[str, Any]) -> Dict[str, Any]:
        if message.get("protocol") != PROTOCOL_VERSION:
            return {"id": ident, "ok": False, "error": "bad-request",
                    "message": f"protocol mismatch: worker speaks "
                               f"{PROTOCOL_VERSION}, request says "
                               f"{message.get('protocol')!r}"}
        if self._die_after_runs is not None:
            if self._runs_served >= self._die_after_runs:
                # Fault injection: die mid-shard, no reply, no goodbye.
                os._exit(1)
            self._runs_served += 1
        spec = message.get("function")
        payload = message.get("payload")
        digest = message.get("digest")
        if not isinstance(spec, str) or not isinstance(payload, str) \
                or not isinstance(digest, str):
            return {"id": ident, "ok": False, "error": "bad-request",
                    "message": "run needs string function/payload/digest"}
        try:
            function = resolve_function(spec)
        except PermissionError as error:
            return {"id": ident, "ok": False, "error": "forbidden-function",
                    "message": str(error)}
        except ValueError as error:
            return {"id": ident, "ok": False, "error": "bad-request",
                    "message": str(error)}
        try:
            args = decode_payload(payload, digest)
        except ValueError as error:
            return {"id": ident, "ok": False, "error": "bad-payload",
                    "message": str(error)}
        if not isinstance(args, tuple):
            return {"id": ident, "ok": False, "error": "bad-payload",
                    "message": f"shard args must unpickle to a tuple, "
                               f"got {type(args).__name__}"}
        loop = asyncio.get_running_loop()
        try:
            seconds, value = await loop.run_in_executor(
                self._pool, self._execute, function, args)
        except Exception as error:  # the shard raised: deterministic
            error_payload, error_digest = encode_payload(error)
            return {"id": ident, "ok": False, "error": "shard-error",
                    "payload": error_payload, "digest": error_digest}
        value_payload, value_digest = encode_payload(value)
        return {"id": ident, "ok": True, "payload": value_payload,
                "digest": value_digest, "seconds": seconds}

    @staticmethod
    def _execute(function, args) -> Tuple[float, Any]:
        started = time.monotonic()
        value = function(*args)
        return time.monotonic() - started, value
