"""CLI entrypoints of the distributed worker substrate.

``python -m repro.distrib worker``
    Run one stateless shard worker bound to ``--host``/``--port``
    (port 0 picks a free port; the banner prints the real one).  A
    worker serves any number of sweeps from any number of clients and
    holds no state between requests, so a fleet is just N of these
    behind ``--executor remote:host:port,...``.

``python -m repro.distrib smoke``
    Self-contained fault-tolerance smoke (the CI ``distrib-smoke``
    job): spawn two loopback workers — one rigged to die mid-sweep via
    ``--die-after-runs`` — run a sharded sweep through the remote
    executor, and exit non-zero unless (a) the rigged worker really
    died, (b) the sweep survived via shard retry, and (c) the
    indicators are byte-identical to an in-process run of the same
    scenario and seed.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import subprocess
import sys
import time
from typing import List, Optional

from repro.distrib.worker import ShardWorker


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib",
        description="distributed shard workers for sharded Monte-Carlo runs",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    worker = commands.add_parser(
        "worker", help="run one stateless NDJSON shard worker")
    worker.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default loopback; only "
                             "bind non-loopback on trusted networks — "
                             "shard payloads are pickles)")
    worker.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0: pick a free port and "
                             "print it)")
    worker.add_argument("--die-after-runs", type=int, default=None,
                        metavar="N",
                        help="fault injection: serve N run ops, then "
                             "hard-exit on the next one (no reply) — "
                             "what an OOM kill looks like to the client")

    commands.add_parser(
        "smoke",
        help="two loopback workers, one rigged to die; assert the sweep "
             "survives with bit-identical indicators")
    return parser


async def _worker_main(args: argparse.Namespace) -> None:
    worker = ShardWorker(args.host, args.port,
                         die_after_runs=args.die_after_runs)
    await worker.start()
    host, port = worker.address
    print(f"repro.distrib worker listening on {host}:{port} "
          f"(pid {os.getpid()})", flush=True)
    try:
        await worker.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await worker.close()


def _smoke() -> int:
    from functools import partial

    import numpy as np

    from repro.core import SimpleOmission
    from repro.engine import MESSAGE_PASSING
    from repro.failures import OmissionFailures
    from repro.graphs import binary_tree
    from repro.montecarlo import RemoteSocketExecutor, TrialRunner

    def spawn(extra: Optional[List[str]] = None):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.distrib", "worker", "--port", "0",
             *(extra or [])],
            stdout=subprocess.PIPE, text=True,
        )
        banner = process.stdout.readline()
        if "listening on" not in banner:
            process.kill()
            raise RuntimeError(f"worker failed to start: {banner!r}")
        address = banner.split("listening on", 1)[1].split()[0]
        port = int(address.rpartition(":")[2])
        return process, port

    factory = partial(SimpleOmission, binary_tree(4), 0, 1,
                      MESSAGE_PASSING, 3)
    model = OmissionFailures(0.3)
    trials, seed = 1024, 2007

    steady, steady_port = spawn()
    doomed, doomed_port = spawn(["--die-after-runs", "1"])
    try:
        executor = RemoteSocketExecutor(
            [("127.0.0.1", steady_port), ("127.0.0.1", doomed_port)],
            max_shard_retries=2,
        )
        # Vectorised tiers off so the sweep really shards: the engine
        # tier cuts 4 shards per worker, which guarantees the rigged
        # worker receives a second shard and dies mid-sweep (fastsim
        # would answer without sharding, batchsim with one chunk per
        # worker).
        remote = TrialRunner(factory, model, use_fastsim=False,
                             use_batchsim=False,
                             executor=executor).run(trials, seed)
        local = TrialRunner(factory, model, use_fastsim=False,
                            use_batchsim=False).run(trials, seed)

        deadline = time.monotonic() + 10.0
        while doomed.poll() is None and time.monotonic() < deadline:
            time.sleep(0.05)
        checks = [
            ("rigged worker died mid-sweep", doomed.poll() is not None),
            ("steady worker survived", steady.poll() is None),
            ("sweep used the remote backend",
             remote.workers >= 1 and remote.trials == trials),
            ("indicators byte-identical to the in-process run",
             np.array_equal(remote.indicators, local.indicators)),
        ]
        failed = [label for label, ok in checks if not ok]
        for label, ok in checks:
            print(f"[{'ok' if ok else 'FAIL'}] {label}")
        print(f"remote success rate {remote.successes}/{remote.trials}, "
              f"local {local.successes}/{local.trials}")
        return 1 if failed else 0
    finally:
        for process in (steady, doomed):
            if process.poll() is None:
                process.kill()
            process.wait()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "worker":
        try:
            asyncio.run(_worker_main(args))
        except KeyboardInterrupt:
            pass
        return 0
    if args.command == "smoke":
        return _smoke()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
