"""Wire format of the distributed shard-worker protocol.

Same framing idiom as the serving layer (:mod:`repro.serve.protocol`):
newline-delimited JSON over TCP, one request object per line, one
response object per line, responses echo the request ``id``.  The
payload layer differs — shard arguments and results are arbitrary
picklable Python objects, so they travel as base64-encoded pickle
bytes at the pinned :data:`~repro.montecarlo.fingerprint.PICKLE_PROTOCOL`,
stamped with a :func:`~repro.montecarlo.fingerprint.payload_fingerprint`
content address.  A frame whose digest does not match its bytes is
rejected (``bad-payload``), never silently mis-simulated.

Workers are **stateless**: a ``run`` request carries everything needed
to execute one shard — the worker entrypoint as a ``module:qualname``
spec and the pickled argument tuple (which includes the picklable
scenario factory, so the worker rebuilds the scenario from scratch and
runs the absolute trial range).  Statelessness is what makes retry-
with-reassignment trivially correct: any worker can run any shard at
any time, and by the bit-identity invariant the answer is the same.

Trust model: **unpickling is code execution**, so a worker only serves
trusted networks (bind to loopback or a private interface).  Two
defensive layers on top: the entrypoint spec must resolve inside the
``repro.`` namespace (no ``os:system``), and frames are hard-capped at
:data:`MAX_LINE_BYTES` so a garbage peer cannot balloon worker memory.

Ops::

    {"op": "hello", "id": 0}
        -> {"id": 0, "ok": true, "role": "repro-distrib-worker",
            "protocol": 1, "pid": 1234}
    {"op": "ping", "id": 1}
        -> {"id": 1, "ok": true}
    {"op": "run", "id": 2, "protocol": 1,
     "function": "repro.montecarlo.trials:run_batch_shard",
     "payload": "<base64 pickle of the args tuple>",
     "digest": "<sha256 of the pickle bytes>"}
        -> {"id": 2, "ok": true, "payload": "<base64 pickle of the
            result>", "digest": "...", "seconds": 0.41}
        -> {"id": 2, "ok": false, "error": "shard-error",
            "payload": "<base64 pickle of the exception>",
            "digest": "..."}   # the shard raised; deterministic
        -> {"id": 2, "ok": false, "error": "bad-payload" |
            "forbidden-function" | "bad-request" | "bad-json",
            "message": "..."}  # protocol-level rejection
"""

from __future__ import annotations

import base64
import importlib
import json
import pickle
from typing import Any, Callable, Dict, Tuple

from repro.montecarlo.fingerprint import PICKLE_PROTOCOL, payload_fingerprint

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "WORKER_ROLE",
    "TRUSTED_FUNCTION_PREFIX",
    "encode_payload",
    "decode_payload",
    "function_spec",
    "resolve_function",
    "encode_line",
    "decode_line",
]

#: Bumped on any incompatible wire change; ``run`` requests carry it
#: and workers reject mismatches instead of guessing.
PROTOCOL_VERSION = 1

#: Hard frame cap.  Shard results are pickled indicator arrays — a
#: million-trial uint8 chunk is ~1.3 MiB after base64 — so the cap is
#: far above any legitimate frame while still bounding what a garbage
#: peer can make a worker buffer.  (The serving layer's 64 KiB cap is
#: for *queries*; shard payloads are bulkier by design.)
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Role string echoed by the hello op, so an executor that connected
#: to the wrong service (e.g. a serve port) fails fast and clearly.
WORKER_ROLE = "repro-distrib-worker"

#: Module prefix a ``run`` entrypoint must live under.  Unpickling
#: already implies trust, but refusing to resolve functions outside
#: the library namespace turns "point it at os:system" from a oneliner
#: into a non-option.
TRUSTED_FUNCTION_PREFIX = "repro."


def encode_payload(value: Any) -> Tuple[str, str]:
    """Pickle ``value`` at the pinned protocol; return (base64, digest)."""
    raw = pickle.dumps(value, protocol=PICKLE_PROTOCOL)
    return base64.b64encode(raw).decode("ascii"), payload_fingerprint(raw)


def decode_payload(payload: str, digest: str) -> Any:
    """Decode a (base64, digest) pair back into the pickled value.

    Raises
    ------
    ValueError
        When the base64 is malformed or the digest does not match the
        decoded bytes — the frame was corrupted or tampered with.
    """
    try:
        raw = base64.b64decode(payload.encode("ascii"), validate=True)
    except Exception as error:
        raise ValueError(f"payload is not valid base64: {error}") from error
    actual = payload_fingerprint(raw)
    if actual != digest:
        raise ValueError(
            f"payload digest mismatch: frame says {digest[:12]}..., "
            f"bytes hash to {actual[:12]}..."
        )
    try:
        return pickle.loads(raw)
    except Exception as error:
        # Unpickling can raise anything (ModuleNotFoundError for a
        # class the receiving side cannot import, AttributeError for a
        # renamed one); fold it into the frame-rejection error class so
        # a worker answers ``bad-payload`` instead of dying on it.
        raise ValueError(f"payload does not unpickle: {error}") from error


def function_spec(function: Callable[..., Any]) -> str:
    """The ``module:qualname`` wire spec of a worker entrypoint."""
    module = getattr(function, "__module__", None)
    qualname = getattr(function, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            f"remote shards need a module-level entrypoint "
            f"(importable module:qualname), got {function!r}"
        )
    return f"{module}:{qualname}"


def resolve_function(spec: str) -> Callable[..., Any]:
    """Resolve a ``module:qualname`` spec inside the trusted namespace.

    Raises
    ------
    PermissionError
        When the module is outside :data:`TRUSTED_FUNCTION_PREFIX`.
    ValueError
        When the spec is malformed or does not resolve to a callable.
    """
    module_name, _, qualname = spec.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed function spec: {spec!r}")
    if not module_name.startswith(TRUSTED_FUNCTION_PREFIX):
        raise PermissionError(
            f"function {spec!r} is outside the trusted "
            f"{TRUSTED_FUNCTION_PREFIX}* namespace"
        )
    try:
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except Exception as error:
        raise ValueError(
            f"function spec {spec!r} does not resolve: {error}"
        ) from error
    if not callable(target):
        raise ValueError(f"function spec {spec!r} is not callable")
    return target


def encode_line(message: Dict[str, Any]) -> bytes:
    """One NDJSON frame: compact JSON plus the terminating newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one NDJSON frame into a dict.

    Raises
    ------
    ValueError
        When the line is not valid JSON or not a JSON object.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except Exception as error:
        raise ValueError(f"frame is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ValueError("frame must be a JSON object")
    return message
