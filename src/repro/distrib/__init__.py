"""Distributed shard workers: the multi-host execution substrate.

``python -m repro.distrib worker`` starts a stateless NDJSON worker
process that the :class:`~repro.montecarlo.executors.RemoteSocketExecutor`
ships shards to.  See :mod:`repro.distrib.protocol` for the wire
format and trust model, and ARCHITECTURE.md's "Execution substrate"
section for how placement freedom follows from the bit-identity
invariant.
"""

from repro.distrib.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    WORKER_ROLE,
)

__all__ = ["MAX_LINE_BYTES", "PROTOCOL_VERSION", "WORKER_ROLE"]
