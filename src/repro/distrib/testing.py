"""Picklable shard functions for executor conformance testing.

The remote worker only resolves functions inside the ``repro.``
namespace (:data:`repro.distrib.protocol.TRUSTED_FUNCTION_PREFIX`), so
the cross-backend conformance suite cannot ship ad-hoc test-module
functions the way the in-process and local-pool tests always could.
These helpers live here — importable on both ends of the wire — so the
*same* shard functions exercise all three executor backends.

They are deliberately trivial (arithmetic, scripted failures, scripted
sleeps): the point is the executor contract — ordering, streaming,
error selection, crash retry — not the work itself.
"""

from __future__ import annotations

import os
import time

__all__ = [
    "shard_square",
    "shard_fail_on_odd",
    "shard_slow_first",
    "shard_sleep_then_square",
    "shard_exit",
    "shard_exit_unless_marked",
]


def shard_square(value: int) -> int:
    """The no-surprises shard: ``value ** 2``."""
    return value * value


def shard_fail_on_odd(value: int) -> int:
    """Raise deterministically on odd values (error-selection tests)."""
    if value % 2:
        raise ValueError(f"shard value {value} failed")
    return value


def shard_slow_first(value: int) -> int:
    """Value 0 finishes last — forces out-of-order completion."""
    if value == 0:
        time.sleep(0.3)
    return value


def shard_sleep_then_square(value: int, seconds: float) -> int:
    """Square after a scripted delay (keeps a worker busy mid-kill)."""
    time.sleep(seconds)
    return value * value


def shard_exit(value: int) -> int:
    """Die without raising — ``os._exit`` skips all cleanup, so the
    parent sees a broken pool / dropped connection, never a pickled
    exception."""
    os._exit(1)


def shard_exit_unless_marked(value: int, marker_path: str) -> int:
    """Crash exactly once: die if ``marker_path`` is absent (creating
    it first), succeed on the retry.  Drives the bounded-retry path
    deterministically."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        os._exit(1)
    return value * value
