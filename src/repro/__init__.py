"""repro — broadcasting with random transmission failures.

A full reproduction of Pelc & Peleg, *Feasibility and complexity of
broadcasting with random transmission failures* (PODC 2005; TCS 370,
2007): synchronous message-passing and radio broadcast under per-step
probabilistic transmitter failures, both node-omission and malicious,
with every algorithm, adversary, threshold and lower-bound construction
from the paper.

Quickstart::

    from repro import graphs, run_execution
    from repro.core import SimpleOmission
    from repro.failures import OmissionFailures

    g = graphs.binary_tree(4)
    algo = SimpleOmission(g, source=0, source_message=1,
                          model="message-passing", p=0.3)
    result = run_execution(algo, OmissionFailures(0.3), seed_or_stream=7,
                           metadata=algo.metadata())
    assert result.is_successful_broadcast()

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the per-theorem reproduction results.
"""

from repro import (
    analysis,
    batchsim,
    core,
    engine,
    failures,
    graphs,
    montecarlo,
    obs,
)
from repro.engine import (
    MESSAGE_PASSING,
    RADIO,
    Execution,
    ExecutionResult,
    run_execution,
)
from repro.montecarlo import TrialResult, TrialRunner
from repro.rng import RngStream, as_stream, derive_seed

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "batchsim",
    "core",
    "engine",
    "failures",
    "graphs",
    "montecarlo",
    "obs",
    "TrialRunner",
    "TrialResult",
    "MESSAGE_PASSING",
    "RADIO",
    "Execution",
    "ExecutionResult",
    "run_execution",
    "RngStream",
    "as_stream",
    "derive_seed",
    "__version__",
]
