"""Execution traces.

A trace records, for every round, what each node intended to transmit,
which transmitters failed, what was actually put on the medium after
the failure model acted, and what each node received.  Traces are what
adaptive adversaries consult ("the model allows adaptive adversarial
behavior, namely, one depending on the execution's history") and what
tests and experiment post-mortems inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional

__all__ = ["RoundRecord", "Trace"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one synchronous round.

    Attributes
    ----------
    round_index:
        0-based round number.
    intents:
        ``node -> intent`` as returned by the protocols (silent nodes,
        i.e. intent ``None``, are omitted).
    faulty:
        The set of nodes whose transmitter failed this round.
    actual:
        ``node -> transmission`` actually placed on the medium after the
        failure model acted (again, silent nodes omitted).
    deliveries:
        ``node -> received`` as handed to each protocol (model-specific
        shape; radio silence/collision deliveries of ``None`` omitted).
    """

    round_index: int
    intents: Dict[int, Any]
    faulty: FrozenSet[int]
    actual: Dict[int, Any]
    deliveries: Dict[int, Any]

    def was_faulty(self, node: int) -> bool:
        """Whether ``node``'s transmitter failed this round."""
        return node in self.faulty

    def transmitted(self, node: int) -> Any:
        """What ``node`` actually transmitted (``None`` if silent)."""
        return self.actual.get(node)

    def intended(self, node: int) -> Any:
        """What ``node`` intended to transmit (``None`` if silent)."""
        return self.intents.get(node)


@dataclass
class Trace:
    """A sequence of :class:`RoundRecord`, appended as the execution runs."""

    records: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Append the record of the round that just completed."""
        expected = len(self.records)
        if record.round_index != expected:
            raise ValueError(
                f"trace expected round {expected}, got {record.round_index}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RoundRecord:
        return self.records[index]

    # -- history queries used by adversaries and tests -----------------
    def transmissions_of(self, node: int) -> List[Any]:
        """All non-silent transmissions ``node`` actually made, in order."""
        return [
            record.actual[node] for record in self.records if node in record.actual
        ]

    def deliveries_to(self, node: int) -> List[Any]:
        """All deliveries handed to ``node``, in round order."""
        return [
            record.deliveries[node]
            for record in self.records
            if node in record.deliveries
        ]

    def fault_count(self, node: Optional[int] = None) -> int:
        """Number of faulty rounds, for one node or summed over all."""
        if node is None:
            return sum(len(record.faulty) for record in self.records)
        return sum(1 for record in self.records if node in record.faulty)
