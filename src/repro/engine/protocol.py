"""Per-node protocol and whole-algorithm interfaces.

The paper's algorithms are deterministic per-node programs driven by a
global synchronous clock.  A :class:`Protocol` instance is the program
of one node; an :class:`Algorithm` bundles the per-node programs with
the round horizon and the communication model they target.

Intents
-------
At the start of each round every protocol is asked for a *transmission
intent*:

* message passing — a ``dict`` mapping neighbour ids to payloads (each
  neighbour may receive a different message), or ``None`` for silence;
* radio — a single payload delivered to all neighbours, or ``None`` for
  silence.  ``None`` is reserved for silence and is never a payload.

Deliveries
----------
At the end of each round, after failures are applied, protocols receive
what reached them:

* message passing — a ``dict`` mapping sender ids to payloads (empty if
  nothing arrived);
* radio — a single payload if *exactly one* neighbour transmitted and
  the node itself kept silent, otherwise ``None`` (collision and
  silence are indistinguishable; there is no collision detection).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from repro.graphs.topology import Topology

__all__ = ["MESSAGE_PASSING", "RADIO", "Protocol", "Algorithm"]

MESSAGE_PASSING = "message-passing"
RADIO = "radio"

_VALID_MODELS = (MESSAGE_PASSING, RADIO)


class Protocol(ABC):
    """The deterministic program run by a single node.

    Subclasses receive their node id and the topology at construction
    time (via their :class:`Algorithm`), keep whatever state they need,
    and implement the three hooks below.  Determinism is required by the
    paper's model: all randomness lives in the environment.
    """

    @abstractmethod
    def intent(self, round_index: int):
        """Transmission intent for ``round_index`` (see module docstring).

        Contract: the intent must be a pure function of the round
        number and the deliveries received so far — never of how many
        times ``intent`` itself was called.  Counterfactual twins (used
        by the impossibility adversaries) rely on being able to query
        intents without perfect call-for-call lock-step.
        """

    @abstractmethod
    def deliver(self, round_index: int, received) -> None:
        """End-of-round delivery (model-specific shape, see module docstring)."""

    @abstractmethod
    def output(self) -> Any:
        """The node's current decision (the message it believes was broadcast).

        Read after the final round; protocols should keep it meaningful
        at every point so that traces can inspect partial progress.
        """


class Algorithm(ABC):
    """A complete distributed algorithm: factory of per-node protocols.

    Attributes
    ----------
    model:
        Which communication model the algorithm is written for —
        :data:`MESSAGE_PASSING`, :data:`RADIO`; algorithms valid in both
        (like Simple-Omission) advertise the model they are being run in
        via :meth:`for_model`.
    """

    def __init__(self, topology: Topology, model: str):
        if model not in _VALID_MODELS:
            raise ValueError(
                f"model must be one of {_VALID_MODELS}, got {model!r}"
            )
        self._topology = topology
        self._model = model

    @property
    def topology(self) -> Topology:
        """The network the algorithm runs on."""
        return self._topology

    @property
    def model(self) -> str:
        """The communication model this instance targets."""
        return self._model

    @property
    @abstractmethod
    def rounds(self) -> int:
        """Total number of synchronous rounds the algorithm runs."""

    @abstractmethod
    def protocol(self, node: int) -> Protocol:
        """Instantiate the program of ``node``."""

    def protocols(self) -> Dict[int, Protocol]:
        """Instantiate all per-node programs."""
        return {node: self.protocol(node) for node in self._topology.nodes}

    def describe(self) -> str:
        """One-line description for experiment tables."""
        return (f"{type(self).__name__}(n={self._topology.order}, "
                f"model={self._model}, rounds={self.rounds})")


def validate_mp_intent(topology: Topology, node: int,
                       intent: Optional[Dict[int, Any]]) -> None:
    """Raise if a message-passing intent is malformed."""
    if intent is None:
        return
    if not isinstance(intent, dict):
        raise TypeError(
            f"node {node}: message-passing intent must be a dict or None, "
            f"got {type(intent).__name__}"
        )
    neighbours = set(topology.neighbors(node))
    for target, payload in intent.items():
        if target not in neighbours:
            raise ValueError(
                f"node {node} intends to send to non-neighbour {target}"
            )
        if payload is None:
            raise ValueError(
                f"node {node}: None is reserved for silence, not a payload"
            )


def validate_radio_intent(node: int, intent: Any) -> None:
    """Raise if a radio intent is malformed (dicts are a likely bug)."""
    if isinstance(intent, dict):
        raise TypeError(
            f"node {node}: radio intent must be a single payload or None, "
            f"got a dict (did you mean message passing?)"
        )
