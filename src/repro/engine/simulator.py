"""The synchronous execution engine.

One :class:`Execution` runs one algorithm on one topology under one
failure model, for the algorithm's declared number of rounds, and
returns an :class:`ExecutionResult` with every node's output and the
full trace.

Round structure (identical for both communication models):

1. every protocol is asked for its transmission intent;
2. the failure model samples faulty transmitters and transforms the
   intents into actual transmissions (possibly consulting an adaptive
   adversary through the :class:`ExecutionView`);
3. the medium delivers:

   * message passing — each actual ``(sender → target, payload)`` is
     handed to ``target``; every node gets a dict ``sender -> payload``;
   * radio — a node hears a payload iff it did not itself (actually)
     transmit and *exactly one* of its neighbours transmitted;
     otherwise it hears silence (``None``) — collisions are
     indistinguishable from silence, per the paper's no-collision-
     detection assumption;

4. deliveries are handed to the protocols and the round is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

import numpy as np

from repro.engine.protocol import (
    MESSAGE_PASSING,
    RADIO,
    Algorithm,
    validate_mp_intent,
    validate_radio_intent,
)
from repro.engine.trace import RoundRecord, Trace
from repro.failures.base import FailureModel, FaultFree
from repro.graphs.topology import Topology
from repro.rng import RngStream, as_stream

__all__ = [
    "ExecutionView",
    "ExecutionResult",
    "Execution",
    "run_execution",
    "deliver_message_passing",
    "deliver_radio",
    "deliver_radio_batch",
    "deliver_mp_batch",
]

# Transmitter count from which the CSR/bincount delivery path beats the
# per-listener membership scan (numpy call overhead amortises).
_DENSE_RADIO_TRANSMITTERS = 8


def deliver_message_passing(topology: Topology,
                            actual: Dict[int, Dict[int, Any]]
                            ) -> Dict[int, Dict[int, Any]]:
    """Message-passing delivery: route every actual transmission."""
    inboxes: Dict[int, Dict[int, Any]] = {node: {} for node in topology.nodes}
    for sender, per_target in actual.items():
        for target, payload in per_target.items():
            inboxes[target][sender] = payload
    return inboxes


def deliver_radio(topology: Topology,
                  actual: Dict[int, Any]) -> Dict[int, Any]:
    """Radio delivery with collision-as-silence semantics.

    Sparse rounds (single-transmitter schedules) scan, per listener,
    whichever is smaller — the transmitter set or the listener's
    neighbour list — against the cached neighbour sets, so a round
    costs ``O(min(n · #transmitters, E))`` membership probes.  Dense
    rounds (jamming adversaries) switch to one vectorised pass over the
    cached :meth:`~repro.graphs.topology.Topology.csr_neighbors`
    arrays, counting speaking neighbours with ``bincount`` in
    ``O(Σ deg(transmitter))``.
    """
    if len(actual) >= _DENSE_RADIO_TRANSMITTERS:
        return _deliver_radio_dense(topology, actual)
    transmitters = list(actual)
    neighbor_sets = topology.neighbor_sets()
    heard: Dict[int, Any] = {}
    for node in topology.nodes:
        if node in actual:
            heard[node] = None
            continue
        speaking: Optional[int] = None
        collided = False
        node_neighbors = neighbor_sets[node]
        if len(transmitters) <= len(node_neighbors):
            candidates = transmitters
            speaking_test = node_neighbors
        else:
            candidates = node_neighbors
            speaking_test = actual
        for transmitter in candidates:
            if transmitter in speaking_test:
                if speaking is not None:
                    collided = True
                    break
                speaking = transmitter
        if speaking is not None and not collided:
            heard[node] = actual[speaking]
        else:
            heard[node] = None
    return heard


def _deliver_radio_dense(topology: Topology,
                         actual: Dict[int, Any]) -> Dict[int, Any]:
    """CSR/bincount radio delivery for rounds with many transmitters."""
    indptr, indices = topology.csr_neighbors()
    transmitters = np.fromiter(actual, dtype=np.int64, count=len(actual))
    degrees = indptr[1:] - indptr[:-1]
    out_degrees = degrees[transmitters]
    # Concatenated neighbour lists of all transmitters, each entry
    # paired with the transmitter it came from.
    ends = np.cumsum(out_degrees)
    offsets = np.arange(int(ends[-1])) - np.repeat(ends - out_degrees,
                                                   out_degrees)
    reached = indices[np.repeat(indptr[transmitters], out_degrees) + offsets]
    speakers = np.repeat(transmitters, out_degrees)
    speaking_count = np.bincount(reached, minlength=topology.order)
    # With exactly one speaking neighbour the weighted sum *is* its id.
    speaker_sum = np.bincount(
        reached, weights=speakers, minlength=topology.order
    )
    heard: Dict[int, Any] = {}
    for node in topology.nodes:
        if node in actual or speaking_count[node] != 1:
            heard[node] = None
        else:
            heard[node] = actual[int(speaker_sum[node])]
    return heard


def deliver_radio_batch(topology: Topology,
                        transmitting: np.ndarray) -> np.ndarray:
    """Vectorised radio delivery for a whole batch of rounds at once.

    The trial axis is what the scalar :func:`deliver_radio` cannot
    exploit: Monte-Carlo batches re-deliver on the same topology with
    different transmitter sets, so the per-listener neighbour reduction
    is done for all rows in one ``reduceat`` over the cached CSR
    arrays.

    Parameters
    ----------
    topology:
        The network.
    transmitting:
        Boolean array of shape ``(batch, n)``; ``transmitting[b, v]``
        marks ``v`` as actually transmitting in row ``b``.

    Returns
    -------
    ``int64`` array of shape ``(batch, n)``: the unique speaking
    neighbour each node hears, or ``-1`` for silence (no speaking
    neighbour, a collision, or the node itself transmitting — the
    collision-as-silence semantics of the scalar path).
    """
    transmitting = np.asarray(transmitting, dtype=bool)
    if transmitting.ndim != 2 or transmitting.shape[1] != topology.order:
        raise ValueError(
            f"transmitting must have shape (batch, {topology.order}), "
            f"got {transmitting.shape}"
        )
    batch = transmitting.shape[0]
    silence = np.full((batch, topology.order), -1, dtype=np.int64)
    indptr, indices = topology.csr_neighbors()
    if batch == 0 or indices.size == 0:
        return silence
    degrees = indptr[1:] - indptr[:-1]
    # Reduce only over nodes that have neighbours: their starts are
    # strictly increasing and in bounds (a trailing isolated node's
    # start would point one past the end, and clamping it would
    # truncate the previous node's reduction region), and consecutive
    # regions abut exactly because zero-degree nodes add nothing.
    connected = degrees > 0
    starts = indptr[:-1][connected]
    speaking_neighbors = transmitting[:, indices]
    counts = np.zeros((batch, topology.order), dtype=np.int64)
    counts[:, connected] = np.add.reduceat(
        speaking_neighbors.astype(np.int64), starts, axis=1
    )
    speaker_sum = np.zeros((batch, topology.order), dtype=np.int64)
    speaker_sum[:, connected] = np.add.reduceat(
        speaking_neighbors * indices[np.newaxis, :], starts, axis=1
    )
    return np.where((counts == 1) & ~transmitting, speaker_sum, silence)


def deliver_mp_batch(topology: Topology, codes: np.ndarray,
                     targets: Optional[np.ndarray] = None) -> np.ndarray:
    """Vectorised message-passing delivery for a batch of rounds.

    The batched counterpart of :func:`deliver_message_passing` for the
    broadcast-style senders the batchsim tier executes: each
    transmitting node offers **one** payload per round, addressed to a
    *static* subset of its neighbours (all of them by default, or the
    slots marked in ``targets`` — e.g. a node's tree children).

    Parameters
    ----------
    topology:
        The network.
    codes:
        ``int64`` array of shape ``(batch, n)``: the payload code node
        ``v`` transmits in row ``b``, or ``-1`` for silence.
    targets:
        Optional ``(E,)`` boolean mask over the receiver-aligned CSR
        slots of :meth:`~repro.graphs.topology.Topology.csr_neighbors`:
        entry ``j`` (owned by the node whose CSR row contains ``j``)
        says whether sender ``indices[j]`` addresses that owner.

    Returns
    -------
    ``int64`` inbox array of shape ``(batch, E)``: slot ``j`` of row
    ``b`` holds the payload code the slot's owner received from
    neighbour ``indices[j]``, or ``-1`` when that neighbour stayed
    silent or does not address the owner — exactly the scalar inboxes
    ``inbox[v] = {sender: payload}`` flattened along the CSR layout.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim != 2 or codes.shape[1] != topology.order:
        raise ValueError(
            f"codes must have shape (batch, {topology.order}), "
            f"got {codes.shape}"
        )
    indptr, indices = topology.csr_neighbors()
    inbox = codes[:, indices]
    if targets is not None:
        targets = np.asarray(targets, dtype=bool)
        if targets.shape != indices.shape:
            raise ValueError(
                f"targets must have shape {indices.shape}, "
                f"got {targets.shape}"
            )
        inbox = np.where(targets[np.newaxis, :], inbox, np.int64(-1))
    return inbox


@dataclass
class ExecutionView:
    """What an adaptive adversary (and the trace) may consult.

    Attributes
    ----------
    topology:
        The network.
    model:
        ``message-passing`` or ``radio``.
    algorithm:
        The running algorithm (adversaries may build counterfactual
        twins of its protocols; they must not mutate live state).
    trace:
        History of all *completed* rounds.
    metadata:
        Free-form execution facts; broadcast runs put the source node
        under ``"source"`` and the true message under ``"source_message"``.
    adversary_stream:
        Private random stream for randomized adversary behaviour.
    """

    topology: Topology
    model: str
    algorithm: Algorithm
    trace: Trace
    metadata: Dict[str, Any]
    adversary_stream: RngStream
    round_index: int = 0


@dataclass
class ExecutionResult:
    """Outcome of one execution.

    Attributes
    ----------
    outputs:
        ``node -> output()`` after the final round.
    rounds:
        Number of rounds executed.
    trace:
        Full execution trace (``None`` when tracing was disabled).
    topology:
        The network the run used.
    metadata:
        The execution metadata (source, source message, ...).
    """

    outputs: Dict[int, Any]
    rounds: int
    trace: Optional[Trace]
    topology: Topology
    metadata: Dict[str, Any] = field(default_factory=dict)

    def correct_nodes(self, expected: Any) -> Set[int]:
        """Nodes whose output equals ``expected``."""
        return {
            node for node, value in self.outputs.items() if value == expected
        }

    def is_successful_broadcast(self, expected: Optional[Any] = None) -> bool:
        """Whether every node output the source message.

        With no argument, the expected message is read from the
        execution metadata (key ``"source_message"``).
        """
        if expected is None:
            if "source_message" not in self.metadata:
                raise ValueError(
                    "no expected message given and none recorded in metadata"
                )
            expected = self.metadata["source_message"]
        return len(self.correct_nodes(expected)) == self.topology.order


class Execution:
    """One run of an algorithm under a failure model.

    Parameters
    ----------
    algorithm:
        The distributed algorithm (also fixes the communication model).
    failure_model:
        Defaults to :class:`FaultFree`.
    seed_or_stream:
        Seed for the run's randomness (fault sampling + adversary).
    metadata:
        Facts recorded on the result and exposed to adversaries.
    record_trace:
        When False the result carries no trace.  The trace is then
        also skipped *internally* whenever the failure model declares
        ``requires_history = False`` — the fast path Monte-Carlo
        batches run on; adaptive adversaries still get a full history.
    """

    def __init__(self, algorithm: Algorithm,
                 failure_model: Optional[FailureModel] = None,
                 seed_or_stream=0,
                 metadata: Optional[Dict[str, Any]] = None,
                 record_trace: bool = True):
        self._algorithm = algorithm
        self._failure_model = failure_model if failure_model is not None else FaultFree()
        self._stream = as_stream(seed_or_stream)
        self._metadata = dict(metadata or {})
        self._record_trace = record_trace

    def run(self) -> ExecutionResult:
        """Execute all rounds and collect the outputs."""
        algorithm = self._algorithm
        topology = algorithm.topology
        model = algorithm.model
        protocols = algorithm.protocols()
        trace = Trace()
        fault_stream = self._stream.child("faults")
        view = ExecutionView(
            topology=topology,
            model=model,
            algorithm=algorithm,
            trace=trace,
            metadata=self._metadata,
            adversary_stream=self._stream.child("adversary"),
        )
        build_trace = self._record_trace or self._failure_model.requires_history
        for round_index in range(algorithm.rounds):
            view.round_index = round_index
            intents = self._collect_intents(protocols, round_index)
            faulty = self._failure_model.sample_faulty(
                fault_stream, topology.order
            )
            actual = self._failure_model.apply(round_index, faulty, intents, view)
            self._validate_actual(actual)
            deliveries = self._deliver(protocols, round_index, actual, build_trace)
            if build_trace:
                trace.append(RoundRecord(
                    round_index=round_index,
                    intents=intents,
                    faulty=faulty,
                    actual=actual,
                    deliveries=deliveries,
                ))
        outputs = {node: protocols[node].output() for node in topology.nodes}
        return ExecutionResult(
            outputs=outputs,
            rounds=algorithm.rounds,
            trace=trace if self._record_trace else None,
            topology=topology,
            metadata=self._metadata,
        )

    # -- internals ------------------------------------------------------
    def _collect_intents(self, protocols, round_index: int) -> Dict[int, Any]:
        """Ask every protocol for its intent; validate and drop silences."""
        topology = self._algorithm.topology
        model = self._algorithm.model
        intents: Dict[int, Any] = {}
        for node, protocol in protocols.items():
            intent = protocol.intent(round_index)
            if intent is None:
                continue
            if model == MESSAGE_PASSING:
                validate_mp_intent(topology, node, intent)
                if not intent:
                    continue
                intents[node] = dict(intent)
            else:
                validate_radio_intent(node, intent)
                intents[node] = intent
        return intents

    def _validate_actual(self, actual: Dict[int, Any]) -> None:
        """Sanity-check the failure model's output."""
        topology = self._algorithm.topology
        model = self._algorithm.model
        for node, transmission in actual.items():
            if transmission is None:
                raise ValueError(
                    f"failure model produced None transmission for node {node}; "
                    f"silent nodes must be omitted"
                )
            if model == MESSAGE_PASSING:
                validate_mp_intent(topology, node, transmission)
            else:
                validate_radio_intent(node, transmission)

    def _deliver(self, protocols, round_index: int, actual: Dict[int, Any],
                 want_record: bool = True) -> Optional[Dict[int, Any]]:
        """Run medium semantics and hand deliveries to the protocols.

        The return value only feeds the trace record; trace-free runs
        pass ``want_record=False`` and skip building it.
        """
        topology = self._algorithm.topology
        if self._algorithm.model == MESSAGE_PASSING:
            inboxes = deliver_message_passing(topology, actual)
            for node, protocol in protocols.items():
                protocol.deliver(round_index, inboxes[node])
            if not want_record:
                return None
            return {
                node: inbox for node, inbox in inboxes.items() if inbox
            }
        heard = deliver_radio(topology, actual)
        for node, protocol in protocols.items():
            protocol.deliver(round_index, heard[node])
        if not want_record:
            return None
        return {
            node: payload for node, payload in heard.items() if payload is not None
        }


def run_execution(algorithm: Algorithm,
                  failure_model: Optional[FailureModel] = None,
                  seed_or_stream=0,
                  metadata: Optional[Dict[str, Any]] = None,
                  record_trace: bool = True) -> ExecutionResult:
    """Convenience wrapper: build an :class:`Execution` and run it."""
    execution = Execution(
        algorithm,
        failure_model=failure_model,
        seed_or_stream=seed_or_stream,
        metadata=metadata,
        record_trace=record_trace,
    )
    return execution.run()
