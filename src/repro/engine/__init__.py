"""Synchronous round-based execution engine (message passing + radio)."""

from repro.engine.protocol import MESSAGE_PASSING, RADIO, Algorithm, Protocol
from repro.engine.simulator import (
    Execution,
    ExecutionResult,
    ExecutionView,
    deliver_message_passing,
    deliver_mp_batch,
    deliver_radio,
    deliver_radio_batch,
    run_execution,
)
from repro.engine.trace import RoundRecord, Trace

__all__ = [
    "MESSAGE_PASSING",
    "RADIO",
    "Algorithm",
    "Protocol",
    "Execution",
    "ExecutionResult",
    "ExecutionView",
    "run_execution",
    "deliver_message_passing",
    "deliver_mp_batch",
    "deliver_radio",
    "deliver_radio_batch",
    "RoundRecord",
    "Trace",
]
