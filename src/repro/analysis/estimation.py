"""Monte-Carlo estimation of success probabilities.

"Almost-safe" is a statement about a probability (success at least
``1 - 1/n``), so reproducing the feasibility theorems means estimating
success probabilities with honest uncertainty.  This module provides
exact Clopper–Pearson and Wilson intervals, a generic trial runner and
an almost-safe verdict that only claims what the interval supports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from scipy import stats

from repro._validation import check_non_negative_int, check_positive_int, check_probability
from repro.rng import RngStream, as_stream

__all__ = [
    "clopper_pearson",
    "wilson_interval",
    "hoeffding_margin",
    "hoeffding_interval",
    "MonteCarloResult",
    "estimate_success",
]


def clopper_pearson(successes: int, trials: int,
                    confidence: float = 0.99) -> Tuple[float, float]:
    """Exact (conservative) two-sided binomial confidence interval."""
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(f"successes {successes} exceed trials {trials}")
    confidence = check_probability(confidence, "confidence", allow_zero=False)
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = float(stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    if successes == trials:
        upper = 1.0
    else:
        upper = float(stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    return lower, upper


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.99) -> Tuple[float, float]:
    """Wilson score interval (narrower than Clopper–Pearson, approximate)."""
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(f"successes {successes} exceed trials {trials}")
    confidence = check_probability(confidence, "confidence", allow_zero=False)
    z = float(stats.norm.ppf(0.5 + confidence / 2))
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        phat * (1 - phat) / trials + z * z / (4 * trials * trials)
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def hoeffding_margin(trials: int, confidence: float = 0.99) -> float:
    """The Chernoff–Hoeffding two-sided half-width ``sqrt(ln(2/α)/2t)``.

    Depends only on the trial count, which is what makes it the right
    slack for experiment pass criteria: a Monte-Carlo estimate may sit
    this far from the true (or closed-form) value before the deviation
    is evidence of a broken claim rather than sampling noise.
    """
    trials = check_positive_int(trials, "trials")
    confidence = check_probability(confidence, "confidence", allow_zero=False)
    alpha = 1.0 - confidence
    return math.sqrt(math.log(2.0 / alpha) / (2.0 * trials))


def hoeffding_interval(successes: int, trials: int,
                       confidence: float = 0.99) -> Tuple[float, float]:
    """Chernoff–Hoeffding two-sided interval ``p̂ ± sqrt(ln(2/α)/2t)``.

    Wider than Wilson but distribution-free and trivially streamable —
    the margin depends only on the trial count, so running tallies can
    report it without refitting.
    """
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(f"successes {successes} exceed trials {trials}")
    phat = successes / trials
    margin = hoeffding_margin(trials, confidence)
    return max(0.0, phat - margin), min(1.0, phat + margin)


@dataclass(frozen=True)
class MonteCarloResult:
    """Result of a batch of success/failure trials.

    Attributes
    ----------
    successes, trials:
        Raw counts.
    confidence:
        Confidence level used for the stored interval.
    lower, upper:
        Clopper–Pearson bounds on the true success probability.
    """

    successes: int
    trials: int
    confidence: float
    lower: float
    upper: float

    @property
    def estimate(self) -> float:
        """Point estimate ``successes / trials``."""
        return self.successes / self.trials

    @property
    def failure_estimate(self) -> float:
        """Point estimate of the failure probability."""
        return 1.0 - self.estimate

    def certainly_at_least(self, threshold: float) -> bool:
        """Whether the interval's lower bound clears ``threshold``."""
        return self.lower >= threshold

    def certainly_below(self, threshold: float) -> bool:
        """Whether the interval's upper bound stays under ``threshold``."""
        return self.upper < threshold

    def almost_safe_verdict(self, n: int) -> str:
        """Verdict against the paper's ``1 - 1/n`` bar.

        Returns one of ``"almost-safe"`` (interval proves success prob
        >= 1 - 1/n), ``"not-almost-safe"`` (interval proves it is
        below), or ``"inconclusive"``.
        """
        bar = 1.0 - 1.0 / check_positive_int(n, "n")
        if self.certainly_at_least(bar):
            return "almost-safe"
        if self.certainly_below(bar):
            return "not-almost-safe"
        return "inconclusive"

    def describe(self) -> str:
        """Human-readable one-liner for tables."""
        return (f"{self.successes}/{self.trials} "
                f"(={self.estimate:.4f}, CI [{self.lower:.4f}, {self.upper:.4f}])")


def estimate_success(trial: Callable[[RngStream], bool],
                     trials: int,
                     seed_or_stream=0,
                     confidence: float = 0.99,
                     early_stop_failures: Optional[int] = None) -> MonteCarloResult:
    """Run ``trial`` under independent child streams and tally successes.

    Parameters
    ----------
    trial:
        Callable receiving a fresh :class:`RngStream` and returning
        True on success.
    trials:
        Number of independent runs.
    early_stop_failures:
        Optional cap: stop as soon as this many failures are observed
        (useful when demonstrating *in*feasibility cheaply).  The
        interval is computed over the trials actually run.
    """
    trials = check_positive_int(trials, "trials")
    stream = as_stream(seed_or_stream)
    successes = 0
    executed = 0
    for trial_stream in stream.children(trials, prefix="mc"):
        outcome = trial(trial_stream)
        executed += 1
        if outcome:
            successes += 1
        failures = executed - successes
        if early_stop_failures is not None and failures >= early_stop_failures:
            break
    lower, upper = clopper_pearson(successes, executed, confidence)
    return MonteCarloResult(
        successes=successes,
        trials=executed,
        confidence=confidence,
        lower=lower,
        upper=upper,
    )
