"""Monte-Carlo estimation of success probabilities.

"Almost-safe" is a statement about a probability (success at least
``1 - 1/n``), so reproducing the feasibility theorems means estimating
success probabilities with honest uncertainty.  This module provides
exact Clopper–Pearson and Wilson intervals, a generic trial runner and
an almost-safe verdict that only claims what the interval supports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from scipy import stats

from repro._validation import check_non_negative_int, check_positive_int, check_probability
from repro.rng import RngStream, as_stream

__all__ = [
    "clopper_pearson",
    "wilson_interval",
    "hoeffding_margin",
    "hoeffding_interval",
    "empirical_bernstein_margin",
    "empirical_bernstein_interval",
    "MonteCarloResult",
    "estimate_success",
]


def clopper_pearson(successes: int, trials: int,
                    confidence: float = 0.99) -> Tuple[float, float]:
    """Exact (conservative) two-sided binomial confidence interval."""
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(f"successes {successes} exceed trials {trials}")
    confidence = check_probability(confidence, "confidence", allow_zero=False)
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = float(stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    if successes == trials:
        upper = 1.0
    else:
        upper = float(stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    return lower, upper


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.99) -> Tuple[float, float]:
    """Wilson score interval (narrower than Clopper–Pearson, approximate)."""
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(f"successes {successes} exceed trials {trials}")
    confidence = check_probability(confidence, "confidence", allow_zero=False)
    z = float(stats.norm.ppf(0.5 + confidence / 2))
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        phat * (1 - phat) / trials + z * z / (4 * trials * trials)
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def hoeffding_margin(trials: int, confidence: float = 0.99) -> float:
    """The Chernoff–Hoeffding two-sided half-width ``sqrt(ln(2/α)/2t)``.

    Depends only on the trial count, which is what makes it the right
    slack for experiment pass criteria: a Monte-Carlo estimate may sit
    this far from the true (or closed-form) value before the deviation
    is evidence of a broken claim rather than sampling noise.
    """
    trials = check_positive_int(trials, "trials")
    confidence = check_probability(confidence, "confidence", allow_zero=False)
    alpha = 1.0 - confidence
    return math.sqrt(math.log(2.0 / alpha) / (2.0 * trials))


def hoeffding_interval(successes: int, trials: int,
                       confidence: float = 0.99) -> Tuple[float, float]:
    """Chernoff–Hoeffding two-sided interval ``p̂ ± sqrt(ln(2/α)/2t)``.

    Wider than Wilson but distribution-free and trivially streamable —
    the margin depends only on the trial count, so running tallies can
    report it without refitting.
    """
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(f"successes {successes} exceed trials {trials}")
    phat = successes / trials
    margin = hoeffding_margin(trials, confidence)
    return max(0.0, phat - margin), min(1.0, phat + margin)


def empirical_bernstein_margin(successes: int, trials: int,
                               confidence: float = 0.99) -> float:
    """Maurer–Pontil empirical-Bernstein two-sided half-width.

    ``sqrt(2 V ln(4/α) / t) + 7 ln(4/α) / (3 (t - 1))`` with ``V`` the
    unbiased sample variance — for Bernoulli indicators
    ``s (t - s) / (t (t - 1))`` — and each one-sided bound run at
    ``α/2``.  Unlike the Chernoff–Hoeffding margin this one *adapts to
    the data*: on decisive cells (success rates near 0 or 1) the
    variance term vanishes and the margin shrinks like ``1/t`` instead
    of ``1/sqrt(t)``, which is what lets the sequential stopping rule
    leave those cells after a few hundred trials.  Needs ``t >= 2``
    (the sample variance is undefined below that); the returned margin
    may exceed 1 on tiny counts, which callers clip at the interval.
    """
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(f"successes {successes} exceed trials {trials}")
    confidence = check_probability(confidence, "confidence", allow_zero=False)
    if trials < 2:
        return 1.0
    alpha = 1.0 - confidence
    log_term = math.log(4.0 / alpha)
    variance = successes * (trials - successes) / (trials * (trials - 1.0))
    return (math.sqrt(2.0 * variance * log_term / trials)
            + 7.0 * log_term / (3.0 * (trials - 1.0)))


def empirical_bernstein_interval(successes: int, trials: int,
                                 confidence: float = 0.99
                                 ) -> Tuple[float, float]:
    """Two-sided empirical-Bernstein interval ``p̂ ± MP-margin``, clipped.

    Variance-adaptive: much narrower than Hoeffding once the empirical
    variance is small, slightly wider at ``p̂ = 1/2`` (the ``ln(4/α)``
    vs ``ln(2/α)`` price of estimating the variance).  This is the
    bound behind ``TrialRunner.run_until(bound="bernstein")``.
    """
    margin = empirical_bernstein_margin(successes, trials, confidence)
    phat = successes / trials
    return max(0.0, phat - margin), min(1.0, phat + margin)


@dataclass(frozen=True)
class MonteCarloResult:
    """Result of a batch of success/failure trials.

    Attributes
    ----------
    successes, trials:
        Raw counts.
    confidence:
        Confidence level used for the stored interval.
    lower, upper:
        Clopper–Pearson bounds on the true success probability.
    """

    successes: int
    trials: int
    confidence: float
    lower: float
    upper: float

    @property
    def estimate(self) -> float:
        """Point estimate ``successes / trials`` (0.0 before any trial)."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def failure_estimate(self) -> float:
        """Point estimate of the failure probability."""
        return 1.0 - self.estimate

    def certainly_at_least(self, threshold: float) -> bool:
        """Whether the interval's lower bound clears ``threshold``."""
        return self.lower >= threshold

    def certainly_below(self, threshold: float) -> bool:
        """Whether the interval's upper bound stays under ``threshold``."""
        return self.upper < threshold

    def almost_safe_verdict(self, n: int) -> str:
        """Verdict against the paper's ``1 - 1/n`` bar.

        Returns one of ``"almost-safe"`` (interval proves success prob
        >= 1 - 1/n), ``"not-almost-safe"`` (interval proves it is
        below), or ``"inconclusive"``.
        """
        bar = 1.0 - 1.0 / check_positive_int(n, "n")
        if self.certainly_at_least(bar):
            return "almost-safe"
        if self.certainly_below(bar):
            return "not-almost-safe"
        return "inconclusive"

    def describe(self) -> str:
        """Human-readable one-liner for tables."""
        return (f"{self.successes}/{self.trials} "
                f"(={self.estimate:.4f}, CI [{self.lower:.4f}, {self.upper:.4f}])")


def estimate_success(trial: Callable[[RngStream], bool],
                     trials: int,
                     seed_or_stream=0,
                     confidence: float = 0.99,
                     early_stop_failures: Optional[int] = None) -> MonteCarloResult:
    """Run ``trial`` under independent child streams and tally successes.

    Parameters
    ----------
    trial:
        Callable receiving a fresh :class:`RngStream` and returning
        True on success.
    trials:
        Number of independent runs.
    early_stop_failures:
        Optional cap: stop as soon as this many failures are observed
        (useful when demonstrating *in*feasibility cheaply).  Must be a
        positive integer — a zero (or negative) cap would silently
        stop after the very first trial and report a 1-trial interval,
        which is never what a caller meant.  The interval is computed
        over the trials actually run.
    """
    trials = check_positive_int(trials, "trials")
    if early_stop_failures is not None:
        early_stop_failures = check_positive_int(
            early_stop_failures, "early_stop_failures"
        )
    stream = as_stream(seed_or_stream)
    successes = 0
    executed = 0
    for trial_stream in stream.children(trials, prefix="mc"):
        outcome = trial(trial_stream)
        executed += 1
        if outcome:
            successes += 1
        failures = executed - successes
        if early_stop_failures is not None and failures >= early_stop_failures:
            break
    lower, upper = clopper_pearson(successes, executed, confidence)
    return MonteCarloResult(
        successes=successes,
        trials=executed,
        confidence=confidence,
        lower=lower,
        upper=upper,
    )
