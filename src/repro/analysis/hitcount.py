"""The combinatorial machinery of Lemma 3.4.

Lemma 3.4 lower-bounds almost-safe broadcast time on the layered graph
``G(m)`` by counting *hits*: layer-3 value ``v`` is hit by transmitter
set ``A_t ⊆ {1..m}`` when ``|A_t ∩ P_v| = 1`` (``P_v`` = positions of
``v``'s one-bits) — the only kind of step in which ``v`` can hear.  The
chain of claims reproduced here:

* Claim 3.1/3.2 — ``v`` misses all its ``h_v`` hits with probability
  ``p^{h_v}``, so almost-safety needs ``h_v >= log n / log(1/p)`` for
  every ``v``.
* Claim 3.3 — a set of size ``ℓ`` hits ``h(t,j) = ℓ·C(m-ℓ, j-1)`` of
  the weight-``j`` class ``S_j``.
* Claim 3.4 — the hit *fraction* obeys
  ``f(t,j) <= (ℓj/m)·(1-(ℓ-1)/(m-1))^{j-1}``.
* Claims 3.5–3.6 — ``f(t,j) > 2/K`` forces ``m/(jK) < ℓ < m(Z+1)/j``
  (``K = log m/log log m``, ``Z = log K + log log K``).
* Claim 3.7 — the weight cascade ``j_i = ⌈m/(K(Z+1))^{2i-2}⌉`` has
  pairwise-disjoint useful-``ℓ`` ranges, so each step contributes
  ``< 2`` to ``F = Σ_i f(j_i)`` while almost-safety needs
  ``F >= (K/4)·c·log n`` — hence ``τ > c·K·log n/8``.

All logs are base 2 (the graph's ``m = log₂ N``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from math import comb
from typing import Dict, List, Sequence, Set, Tuple

from repro._validation import check_positive_int, check_probability
from repro.graphs.layered import LayeredGraph

__all__ = [
    "min_hits_required",
    "hits_of_set_on_class",
    "hit_fraction",
    "hit_fraction_bound",
    "cascade_parameters",
    "weight_cascade",
    "useful_size_range",
    "lemma34_lower_bound",
    "ScheduleHitAnalysis",
    "analyze_layer2_schedule",
]


def min_hits_required(n: int, p: float) -> float:
    """Hits each layer-3 node needs: ``p^{h} <= 1/n`` ⇒ ``h >= log n / log(1/p)``.

    If some node is hit fewer times, it alone fails with probability
    above ``1/n`` and the algorithm is not almost-safe (Claims 3.1/3.2).
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p", allow_zero=False)
    if n == 1:
        return 0.0
    return math.log(n) / math.log(1.0 / p)


def hits_of_set_on_class(m: int, set_size: int, ones: int) -> int:
    """Claim 3.3: ``h(t, j) = ℓ · C(m-ℓ, j-1)`` for ``ℓ = |A_t|``."""
    m = check_positive_int(m, "m")
    if not 0 <= set_size <= m:
        raise ValueError(f"set_size must lie in [0, {m}], got {set_size}")
    if not 1 <= ones <= m:
        raise ValueError(f"ones must lie in [1, {m}], got {ones}")
    if set_size == 0:
        return 0
    return set_size * comb(m - set_size, ones - 1)


def hit_fraction(m: int, set_size: int, ones: int) -> float:
    """``f(t, j) = h(t, j) / |S_j|`` — the hit fraction of ``S_j``."""
    return hits_of_set_on_class(m, set_size, ones) / comb(m, ones)


def hit_fraction_bound(m: int, set_size: int, ones: int) -> float:
    """Claim 3.4's bound ``f(t,j) <= (ℓj/m)·(1-(ℓ-1)/(m-1))^{j-1}``."""
    m = check_positive_int(m, "m")
    if m == 1:
        return 1.0
    ell, j = set_size, ones
    base = max(0.0, 1.0 - (ell - 1) / (m - 1))
    return (ell * j / m) * base ** (j - 1)


def cascade_parameters(m: int) -> Tuple[float, float]:
    """``(K, Z)`` with ``K = log m / log log m``, ``Z = log K + log log K``.

    Defined for ``m >= 5`` (below that the iterated logs collapse);
    base-2 logarithms throughout.
    """
    m = check_positive_int(m, "m")
    if m < 5:
        raise ValueError(f"cascade parameters need m >= 5, got {m}")
    log_m = math.log2(m)
    log_log_m = math.log2(log_m)
    if log_log_m <= 0:
        raise ValueError(f"m = {m} too small: log log m <= 0")
    big_k = log_m / log_log_m
    if big_k <= 1.0 or math.log2(big_k) <= 0:
        raise ValueError(f"m = {m} too small for a meaningful cascade")
    log_k = math.log2(big_k)
    z = log_k + (math.log2(log_k) if log_k > 1 else 0.0)
    return big_k, z


def weight_cascade(m: int) -> List[int]:
    """The weights ``j_i = ⌈m / (K(Z+1))^{2i-2}⌉`` for ``1 <= i <= K/4``.

    ``j_1 = m``; the sequence decreases geometrically and stays >= 1.
    """
    big_k, z = cascade_parameters(m)
    count = max(1, int(big_k / 4))
    ratio = big_k * (z + 1.0)
    weights = []
    for index in range(1, count + 1):
        weights.append(max(1, math.ceil(m / ratio ** (2 * index - 2))))
    return weights


def useful_size_range(m: int, ones: int) -> Tuple[float, float]:
    """Claim 3.6: ``f(t,j) >= 2/K`` forces ``m/(jK) < ℓ < m(Z+1)/j``."""
    big_k, z = cascade_parameters(m)
    return m / (ones * big_k), m * (z + 1.0) / ones


def lemma34_lower_bound(m: int, p: float) -> float:
    """The Lemma 3.4 bound: ``τ > c·K·log n / 8``.

    ``c = 1/log(1/p)`` is the per-node hit requirement constant
    (base-2) and ``n = 2^m + m`` is the graph order.  The bound is
    asymptotically ``Ω(log n · log log n / log log log n)``.
    """
    p = check_probability(p, "p", allow_zero=False)
    big_k, _ = cascade_parameters(m)
    n = (1 << m) + m
    c = 1.0 / math.log2(1.0 / p)
    return c * big_k * math.log2(n) / 8.0


@dataclass(frozen=True)
class ScheduleHitAnalysis:
    """Hit accounting of a concrete layer-2 schedule on ``G(m)``.

    Attributes
    ----------
    steps:
        Number of layer-2 steps analysed (``τ``).
    hits_per_value:
        ``value -> h_v``.
    min_hits:
        The smallest ``h_v``.
    class_fractions:
        ``j -> f(j) = Σ_t f(t, j)`` for every weight class.
    cascade_total:
        ``F = Σ_{i} f(j_i)`` over the Lemma 3.4 weight cascade (0 when
        ``m < 5`` and the cascade is undefined).
    max_step_cascade_contribution:
        The largest single-step contribution to ``F`` (Claim 3.7 says
        it is below 2).
    """

    steps: int
    hits_per_value: Dict[int, int]
    min_hits: int
    class_fractions: Dict[int, float]
    cascade_total: float
    max_step_cascade_contribution: float


def analyze_layer2_schedule(graph: LayeredGraph,
                            steps: Sequence[Set[int]]) -> ScheduleHitAnalysis:
    """Run the full Lemma 3.4 accounting over an explicit schedule.

    ``steps`` holds layer-2 transmitter sets as 1-based bit positions.
    """
    m = graph.m
    values = list(range(1, graph.n_values))
    position_sets = {value: graph.positions(value) for value in values}
    hits_per_value = {value: 0 for value in values}
    per_step_fractions: List[Dict[int, float]] = []
    for step in steps:
        step = set(step)
        if not step <= set(range(1, m + 1)):
            raise ValueError(
                f"layer-2 step {sorted(step)} contains non-bit-positions"
            )
        fractions: Dict[int, float] = {}
        for value in values:
            if len(step & position_sets[value]) == 1:
                hits_per_value[value] += 1
        for ones in range(1, m + 1):
            fractions[ones] = hit_fraction(m, len(step), ones)
        per_step_fractions.append(fractions)
    class_fractions = {
        ones: sum(fractions[ones] for fractions in per_step_fractions)
        for ones in range(1, m + 1)
    }
    cascade_total = 0.0
    max_contribution = 0.0
    if m >= 5:
        cascade = weight_cascade(m)
        cascade_total = sum(class_fractions[j] for j in cascade)
        for fractions in per_step_fractions:
            contribution = sum(fractions[j] for j in cascade)
            max_contribution = max(max_contribution, contribution)
    return ScheduleHitAnalysis(
        steps=len(steps),
        hits_per_value=hits_per_value,
        min_hits=min(hits_per_value.values()) if values else 0,
        class_fractions=class_fractions,
        cascade_total=cascade_total,
        max_step_cascade_contribution=max_contribution,
    )
