"""Shape fitting for the complexity experiments.

The paper's complexity results are asymptotic (``Θ(D + log n)``,
``O(opt · log n)``, ``Ω(log n log log n / log log log n)``); the
reproduction checks *shapes* at finite sizes by least-squares fitting
the predicted functional forms and reporting the fit quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "LinearFit",
    "fit_linear_model",
    "fit_d_plus_log_n",
    "fit_power_law",
    "r_squared",
]


def r_squared(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination of a fit."""
    actual_arr = np.asarray(actual, dtype=float)
    predicted_arr = np.asarray(predicted, dtype=float)
    if actual_arr.shape != predicted_arr.shape or actual_arr.size == 0:
        raise ValueError("actual and predicted must be equal-length, non-empty")
    residual = float(np.sum((actual_arr - predicted_arr) ** 2))
    total = float(np.sum((actual_arr - actual_arr.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


@dataclass(frozen=True)
class LinearFit:
    """A least-squares fit ``y ≈ Σ coef_k · feature_k(x)``.

    Attributes
    ----------
    coefficients:
        One per feature, in input order.
    feature_names:
        Labels for reporting.
    score:
        ``R²`` of the fit on the training points.
    """

    coefficients: Tuple[float, ...]
    feature_names: Tuple[str, ...]
    score: float

    def predict_row(self, features: Sequence[float]) -> float:
        """Evaluate the fitted combination on one feature row."""
        if len(features) != len(self.coefficients):
            raise ValueError(
                f"expected {len(self.coefficients)} features, got {len(features)}"
            )
        return float(sum(c * f for c, f in zip(self.coefficients, features)))

    def describe(self) -> str:
        """Human-readable formula."""
        terms = " + ".join(
            f"{coef:.3g}*{name}"
            for coef, name in zip(self.coefficients, self.feature_names)
        )
        return f"y = {terms}  (R^2 = {self.score:.4f})"


def fit_linear_model(rows: Sequence[Sequence[float]],
                     targets: Sequence[float],
                     feature_names: Sequence[str]) -> LinearFit:
    """Ordinary least squares over explicit feature rows."""
    matrix = np.asarray(rows, dtype=float)
    y = np.asarray(targets, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != y.size:
        raise ValueError("rows and targets must align")
    if matrix.shape[1] != len(feature_names):
        raise ValueError("feature_names must match row width")
    coefficients, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    predicted = matrix @ coefficients
    return LinearFit(
        coefficients=tuple(float(c) for c in coefficients),
        feature_names=tuple(feature_names),
        score=r_squared(y, predicted),
    )


def fit_d_plus_log_n(radii: Sequence[int], orders: Sequence[int],
                     times: Sequence[float],
                     log_exponent: float = 1.0) -> LinearFit:
    """Fit ``time ≈ a·D + b·(log₂ n)^e + c`` (Theorems 3.1 / 3.2 shapes)."""
    if not (len(radii) == len(orders) == len(times)):
        raise ValueError("radii, orders, times must be equal length")
    rows = [
        [float(d), math.log2(max(n, 2)) ** log_exponent, 1.0]
        for d, n in zip(radii, orders)
    ]
    name = "log2(n)" if log_exponent == 1.0 else f"log2(n)^{log_exponent:g}"
    return fit_linear_model(rows, times, ["D", name, "1"])


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Fit ``y ≈ a · x^b`` by log-log least squares; returns ``(a, b)``."""
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if np.any(xs_arr <= 0) or np.any(ys_arr <= 0):
        raise ValueError("power-law fitting needs strictly positive data")
    slope, intercept = np.polyfit(np.log(xs_arr), np.log(ys_arr), 1)
    return float(math.exp(intercept)), float(slope)
