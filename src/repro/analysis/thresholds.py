"""Feasibility thresholds of the four scenarios.

The paper's feasibility map:

* node-omission, both models — feasible for every ``p < 1``;
* malicious, message passing — feasible iff ``p < 1/2`` (Thms 2.2/2.3);
* malicious, radio — feasible iff ``p < (1-p)^{Δ+1}`` (Thm 2.4).

The radio condition defines a degree-dependent threshold ``p*(Δ)``:
the unique root of ``p = (1-p)^{Δ+1}`` in ``(0, 1)`` (the left side is
increasing and the right side decreasing in ``p``, so the root exists
and is unique).  ``p*(1) ≈ 0.3177`` and ``p*(Δ) → ln? no — behaves like
``ln``-free ``Θ(log Δ / Δ)`` asymptotics, verified in tests.
"""

from __future__ import annotations

import math
from typing import Dict, List

from scipy import optimize

from repro._validation import check_non_negative_int, check_probability

__all__ = [
    "MP_MALICIOUS_THRESHOLD",
    "radio_malicious_threshold",
    "radio_feasible",
    "mp_malicious_feasible",
    "omission_feasible",
    "radio_threshold_table",
    "radio_threshold_asymptote",
]

MP_MALICIOUS_THRESHOLD = 0.5
"""Theorems 2.2/2.3: message-passing malicious broadcast threshold."""


def radio_malicious_threshold(max_degree: int) -> float:
    """The root ``p*`` of ``p = (1-p)^{Δ+1}`` for ``Δ = max_degree``.

    Almost-safe radio broadcast with malicious transmission failures is
    feasible iff ``p < p*`` (Theorem 2.4).
    """
    delta = check_non_negative_int(max_degree, "max_degree")
    exponent = delta + 1

    def gap(p: float) -> float:
        return p - (1.0 - p) ** exponent

    # gap(0) = -1 < 0 and gap(1) = 1 > 0: brentq bracket is valid.
    root = optimize.brentq(gap, 0.0, 1.0, xtol=1e-15, rtol=8.9e-16)
    return float(root)


def radio_feasible(p: float, max_degree: int) -> bool:
    """Whether ``p < (1-p)^{Δ+1}`` — Theorem 2.4 feasibility."""
    p = check_probability(p, "p", allow_zero=True)
    delta = check_non_negative_int(max_degree, "max_degree")
    return p < (1.0 - p) ** (delta + 1)


def mp_malicious_feasible(p: float) -> bool:
    """Whether ``p < 1/2`` — Theorem 2.2 feasibility."""
    p = check_probability(p, "p", allow_zero=True)
    return p < MP_MALICIOUS_THRESHOLD


def omission_feasible(p: float) -> bool:
    """Whether ``p < 1`` — Theorem 2.1 feasibility (always true here)."""
    check_probability(p, "p", allow_zero=True)
    return True


def radio_threshold_table(degrees: List[int]) -> Dict[int, float]:
    """``{Δ: p*(Δ)}`` for a list of maximum degrees."""
    return {delta: radio_malicious_threshold(delta) for delta in degrees}


def radio_threshold_asymptote(max_degree: int) -> float:
    """First-order asymptotic ``p*(Δ) ≈ ln(Δ) / Δ`` for large ``Δ``.

    From ``p = (1-p)^{Δ+1} ≈ e^{-pΔ}``: taking logs, ``ln(1/p) = pΔ``,
    whose solution is ``p = W(Δ)/Δ ≈ ln(Δ)/Δ``.  Exposed so tests and
    the E05 bench can check the shape of the exact threshold curve.
    """
    delta = check_non_negative_int(max_degree, "max_degree")
    if delta < 2:
        return radio_malicious_threshold(delta)
    return math.log(delta) / delta
