"""Analysis toolkit: bounds, thresholds, estimation, lower-bound machinery."""

from repro.analysis.chernoff import (
    binomial_tail_ge,
    binomial_tail_le,
    chernoff_tail_above,
    chernoff_tail_below,
    hoeffding_tail,
    majority_error_probability,
    repetitions_for_all_silent,
    repetitions_for_majority,
    union_bound_target,
)
from repro.analysis.estimation import (
    MonteCarloResult,
    clopper_pearson,
    empirical_bernstein_interval,
    empirical_bernstein_margin,
    estimate_success,
    hoeffding_interval,
    hoeffding_margin,
    wilson_interval,
)
from repro.analysis.thresholds import (
    MP_MALICIOUS_THRESHOLD,
    mp_malicious_feasible,
    omission_feasible,
    radio_feasible,
    radio_malicious_threshold,
    radio_threshold_asymptote,
    radio_threshold_table,
)

__all__ = [
    "binomial_tail_ge",
    "binomial_tail_le",
    "majority_error_probability",
    "hoeffding_tail",
    "chernoff_tail_above",
    "chernoff_tail_below",
    "repetitions_for_all_silent",
    "repetitions_for_majority",
    "union_bound_target",
    "MonteCarloResult",
    "clopper_pearson",
    "wilson_interval",
    "hoeffding_interval",
    "hoeffding_margin",
    "empirical_bernstein_margin",
    "empirical_bernstein_interval",
    "estimate_success",
    "MP_MALICIOUS_THRESHOLD",
    "radio_malicious_threshold",
    "radio_feasible",
    "mp_malicious_feasible",
    "omission_feasible",
    "radio_threshold_table",
    "radio_threshold_asymptote",
]
