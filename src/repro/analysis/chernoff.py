"""Chernoff/Hoeffding machinery and exact binomial tails.

The paper's analyses repeatedly invoke "standard arguments based on
Chernoff's bound" to pick the constant ``c`` in ``m = ⌈c log n⌉``.
This module provides both the classical closed-form bounds (for the
asymptotic story) and *exact* binomial tails (so the library can pick
the genuinely smallest repetition counts at finite ``n``).
"""

from __future__ import annotations

import math
from typing import Optional

from scipy import stats

from repro._validation import check_non_negative_int, check_positive_int, check_probability

__all__ = [
    "binomial_tail_ge",
    "binomial_tail_le",
    "majority_error_probability",
    "hoeffding_tail",
    "chernoff_tail_below",
    "chernoff_tail_above",
    "repetitions_for_all_silent",
    "repetitions_for_majority",
    "union_bound_target",
]


def binomial_tail_ge(trials: int, threshold: float, prob: float) -> float:
    """``P[Bin(trials, prob) >= threshold]``, exact.

    ``threshold`` may be fractional (e.g. ``m/2``); the tail then counts
    outcomes ``k >= ceil(threshold)``.
    """
    trials = check_non_negative_int(trials, "trials")
    prob = check_probability(prob, "prob", allow_zero=True, allow_one=True)
    k = math.ceil(threshold)
    if k <= 0:
        return 1.0
    if k > trials:
        return 0.0
    # sf(k - 1) = P[X > k - 1] = P[X >= k]
    return float(stats.binom.sf(k - 1, trials, prob))


def binomial_tail_le(trials: int, threshold: float, prob: float) -> float:
    """``P[Bin(trials, prob) <= threshold]``, exact."""
    trials = check_non_negative_int(trials, "trials")
    prob = check_probability(prob, "prob", allow_zero=True, allow_one=True)
    k = math.floor(threshold)
    if k < 0:
        return 0.0
    if k >= trials:
        return 1.0
    return float(stats.binom.cdf(k, trials, prob))


def majority_error_probability(repetitions: int, wrong_prob: float) -> float:
    """Probability that a majority vote over i.i.d. repetitions goes wrong.

    A vote *fails* when wrong outcomes are at least half of the
    repetitions (ties break adversarially, matching the algorithms'
    "default 0 if no majority" pessimistically).
    """
    return binomial_tail_ge(repetitions, repetitions / 2.0, wrong_prob)


def hoeffding_tail(trials: int, deviation: float) -> float:
    """Hoeffding: ``P[S - E[S] >= deviation * trials] <= exp(-2 t dev^2)``."""
    trials = check_positive_int(trials, "trials")
    if deviation < 0:
        raise ValueError(f"deviation must be non-negative, got {deviation}")
    return math.exp(-2.0 * trials * deviation * deviation)


def chernoff_tail_below(trials: int, prob: float, fraction: float) -> float:
    """Chernoff lower tail ``P[X <= (1-fraction) * E[X]]`` for ``X ~ Bin``.

    Uses the multiplicative form ``exp(-fraction^2 * mu / 2)``.
    """
    trials = check_positive_int(trials, "trials")
    prob = check_probability(prob, "prob", allow_zero=True, allow_one=True)
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    mu = trials * prob
    return math.exp(-fraction * fraction * mu / 2.0)


def chernoff_tail_above(trials: int, prob: float, fraction: float) -> float:
    """Chernoff upper tail ``P[X >= (1+fraction) * E[X]]`` for ``X ~ Bin``.

    Uses the multiplicative form ``exp(-fraction^2 * mu / 3)`` valid for
    ``0 <= fraction <= 1``.
    """
    trials = check_positive_int(trials, "trials")
    prob = check_probability(prob, "prob", allow_zero=True, allow_one=True)
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    mu = trials * prob
    return math.exp(-fraction * fraction * mu / 3.0)


def repetitions_for_all_silent(p: float, target: float) -> int:
    """Smallest ``m`` with ``p**m <= target``.

    This is the Simple-Omission requirement: a phase fails only when
    all ``m`` of its transmissions are faulty (Theorem 2.1 picks ``c``
    with ``p^{c log n} < 1/n^2``).
    """
    p = check_probability(p, "p", allow_zero=True)
    target = check_probability(target, "target", allow_zero=False)
    if p == 0.0:
        return 1
    return max(1, math.ceil(math.log(target) / math.log(p)))


def repetitions_for_majority(wrong_prob: float, target: float,
                             max_repetitions: int = 1 << 20) -> int:
    """Smallest ``m`` whose majority vote errs with probability <= target.

    Requires ``wrong_prob < 1/2``; uses the exact binomial tail and a
    doubling-then-bisection search, so the result is tight rather than
    Chernoff-loose.
    """
    wrong_prob = check_probability(wrong_prob, "wrong_prob", allow_zero=True)
    target = check_probability(target, "target", allow_zero=False)
    if wrong_prob >= 0.5:
        raise ValueError(
            f"majority voting cannot converge for wrong_prob={wrong_prob} >= 1/2"
        )
    if majority_error_probability(1, wrong_prob) <= target:
        return 1
    low, high = 1, 2
    while majority_error_probability(high, wrong_prob) > target:
        low, high = high, high * 2
        if high > max_repetitions:
            raise RuntimeError(
                f"no repetition count up to {max_repetitions} reaches "
                f"target {target} at wrong_prob {wrong_prob}"
            )
    while high - low > 1:
        mid = (low + high) // 2
        if majority_error_probability(mid, wrong_prob) <= target:
            high = mid
        else:
            low = mid
    return high


def union_bound_target(n: int, slack_power: float = 2.0) -> float:
    """The per-event failure budget ``1 / n**slack_power``.

    With ``n`` events each failing with probability at most
    ``1/n^2``, the union bound gives overall failure ``<= 1/n`` — the
    almost-safe budget used throughout Section 2.
    """
    n = check_positive_int(n, "n")
    if n == 1:
        return 0.25  # degenerate single-node network; any constant works
    return float(n) ** (-slack_power)
