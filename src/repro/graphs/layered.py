"""The three-layer lower-bound graph of Section 3.

The construction (used by Lemmas 3.3 and 3.4 and Theorem 3.3): let
``N = 2**m``.  The graph has

* layer ``V1`` — the root/source ``s``;
* layer ``V2`` — ``m`` "bit" nodes ``b_1 .. b_m``, all adjacent to ``s``;
* layer ``V3`` — ``N - 1`` nodes identified with the integers
  ``1 .. N-1``; bit node ``b_i`` is adjacent to every ``v`` whose ``i``-th
  binary digit is 1.

Altogether ``n = N + log N`` nodes.  Fault-free radio broadcast takes
exactly ``m + 1`` rounds (Lemma 3.3), while almost-safe broadcast under
node-omission failures needs ``Ω(log n · log log n / log log log n)``
rounds (Lemma 3.4).

Node numbering used here: ``s = 0``; ``b_i = i`` for ``1 <= i <= m``
(so layer-2 node ``i`` carries bit position ``i``); layer-3 value ``v``
(``1 <= v <= N-1``) is node ``m + v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import List, Set, Tuple

from repro._validation import check_positive_int
from repro.graphs.topology import Topology

__all__ = ["LayeredGraph", "layered_graph"]


@dataclass(frozen=True)
class LayeredGraph:
    """The lower-bound graph ``G(m)`` together with its layer structure.

    Attributes
    ----------
    m:
        Number of bit nodes; ``N = 2**m``.
    topology:
        The underlying :class:`Topology` on ``n = 2**m + m`` nodes.
    """

    m: int
    topology: Topology

    # -- node naming ----------------------------------------------------
    @property
    def source(self) -> int:
        """The root ``s`` (node 0)."""
        return 0

    @property
    def n_values(self) -> int:
        """``N = 2**m``."""
        return 1 << self.m

    @property
    def bit_nodes(self) -> range:
        """Layer-2 node ids ``b_1 .. b_m`` (= ``1 .. m``)."""
        return range(1, self.m + 1)

    @property
    def value_nodes(self) -> range:
        """Layer-3 node ids (``m+1 .. m+N-1``)."""
        return range(self.m + 1, self.m + self.n_values)

    def bit_node(self, position: int) -> int:
        """Node id of ``b_position`` (positions are 1-based as in the paper)."""
        if not 1 <= position <= self.m:
            raise ValueError(f"bit position must lie in [1, {self.m}], got {position}")
        return position

    def value_node(self, value: int) -> int:
        """Node id of layer-3 value ``value`` (``1 <= value <= N-1``)."""
        if not 1 <= value < self.n_values:
            raise ValueError(
                f"value must lie in [1, {self.n_values - 1}], got {value}"
            )
        return self.m + value

    def value_of(self, node: int) -> int:
        """Inverse of :meth:`value_node`."""
        value = node - self.m
        if not 1 <= value < self.n_values:
            raise ValueError(f"node {node} is not a layer-3 node")
        return value

    # -- the combinatorics of Lemma 3.4 ---------------------------------
    def positions(self, value: int) -> Set[int]:
        """``P_v`` — 1-based positions where ``value``'s binary digits are 1.

        Position ``i`` corresponds to bit ``2**(i-1)``.
        """
        if not 1 <= value < self.n_values:
            raise ValueError(
                f"value must lie in [1, {self.n_values - 1}], got {value}"
            )
        return {i + 1 for i in range(self.m) if value >> i & 1}

    def weight_class(self, ones: int) -> List[int]:
        """``S_j`` — all layer-3 values with exactly ``ones`` one-bits."""
        if not 1 <= ones <= self.m:
            raise ValueError(f"ones must lie in [1, {self.m}], got {ones}")
        return [
            value for value in range(1, self.n_values)
            if bin(value).count("1") == ones
        ]

    def weight_class_size(self, ones: int) -> int:
        """``|S_j| = C(m, j)`` without enumerating."""
        if not 1 <= ones <= self.m:
            raise ValueError(f"ones must lie in [1, {self.m}], got {ones}")
        return comb(self.m, ones)

    def is_hit(self, value: int, transmitters: Set[int]) -> bool:
        """``H(v, t) = 1`` — exactly one transmitting bit node covers ``value``.

        ``transmitters`` holds 1-based bit *positions* (the set ``A_t``).
        """
        return len(self.positions(value) & set(transmitters)) == 1


def layered_graph(m: int) -> LayeredGraph:
    """Construct ``G(m)`` for ``m >= 1``."""
    m = check_positive_int(m, "m")
    n_values = 1 << m
    edges: List[Tuple[int, int]] = [(0, bit) for bit in range(1, m + 1)]
    for value in range(1, n_values):
        value_id = m + value
        for position in range(m):
            if value >> position & 1:
                edges.append((position + 1, value_id))
    topology = Topology(m + n_values, edges, name=f"layered-{m}")
    return LayeredGraph(m=m, topology=topology)
