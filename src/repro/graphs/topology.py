"""Immutable undirected graph topology.

The whole library runs on a single lightweight graph type: nodes are the
integers ``0..n-1`` and edges are unordered pairs.  The class is
deliberately minimal and immutable — protocols and simulators must not
mutate the network — with the traversal / metric helpers the paper's
algorithms need (BFS layers, radius w.r.t. a source, degrees).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro._validation import check_node, check_positive_int

__all__ = ["Topology"]


class Topology:
    """An immutable undirected graph on nodes ``0..n-1``.

    Parameters
    ----------
    order:
        Number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        edges (in either orientation) are collapsed.
    name:
        Optional human-readable label used in experiment tables.
    """

    __slots__ = ("_order", "_adjacency", "_edges", "_name",
                 "_neighbor_sets", "_csr")

    def __init__(self, order: int, edges: Iterable[Tuple[int, int]],
                 name: str = "graph"):
        self._order = check_positive_int(order, "order")
        adjacency: List[Set[int]] = [set() for _ in range(self._order)]
        edge_set: Set[Tuple[int, int]] = set()
        for u, v in edges:
            u = check_node(u, self._order, "edge endpoint")
            v = check_node(v, self._order, "edge endpoint")
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            edge_set.add((min(u, v), max(u, v)))
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbours)) for neighbours in adjacency
        )
        self._edges: FrozenSet[Tuple[int, int]] = frozenset(edge_set)
        self._name = str(name)
        # Lazily built caches shared by batched Monte-Carlo executions.
        self._neighbor_sets: Tuple[FrozenSet[int], ...] = None
        self._csr: Tuple[np.ndarray, np.ndarray] = None

    # -- basic accessors -------------------------------------------------
    @property
    def order(self) -> int:
        """Number of nodes ``n``."""
        return self._order

    @property
    def size(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def name(self) -> str:
        """Human-readable label."""
        return self._name

    @property
    def nodes(self) -> range:
        """The node identifiers ``range(n)``."""
        return range(self._order)

    @property
    def edges(self) -> FrozenSet[Tuple[int, int]]:
        """The edge set as canonical ``(min, max)`` pairs."""
        return self._edges

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbours of ``node``."""
        return self._adjacency[check_node(node, self._order)]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return len(self._adjacency[check_node(node, self._order)])

    def max_degree(self) -> int:
        """Maximum degree ``Δ`` of the network (0 for a single node)."""
        return max((len(adj) for adj in self._adjacency), default=0)

    def neighbor_sets(self) -> Tuple[FrozenSet[int], ...]:
        """Per-node neighbour sets, built once and cached.

        Membership-heavy hot paths (radio collision resolution, batched
        Monte-Carlo trials) share this cache across executions instead
        of rebuilding per-round set structures.
        """
        if self._neighbor_sets is None:
            self._neighbor_sets = tuple(
                frozenset(neighbours) for neighbours in self._adjacency
            )
        return self._neighbor_sets

    def csr_neighbors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Adjacency in CSR form ``(indptr, indices)``, cached.

        ``indices[indptr[v]:indptr[v+1]]`` are the sorted neighbours of
        ``v`` — the layout vectorised samplers consume directly.
        """
        if self._csr is None:
            degrees = np.fromiter(
                (len(adj) for adj in self._adjacency), dtype=np.int64,
                count=self._order,
            )
            indptr = np.zeros(self._order + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            indices = np.fromiter(
                (v for adj in self._adjacency for v in adj), dtype=np.int64,
                count=int(indptr[-1]),
            )
            self._csr = (indptr, indices)
        return self._csr

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        u = check_node(u, self._order)
        v = check_node(v, self._order)
        return (min(u, v), max(u, v)) in self._edges

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < self._order

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._order))

    def __len__(self) -> int:
        return self._order

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._order == other._order and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._order, self._edges))

    def __repr__(self) -> str:
        return (f"Topology(name={self._name!r}, order={self._order}, "
                f"size={self.size})")

    # -- pickling ------------------------------------------------------
    def __getstate__(self):
        # Pickle only the defining data, in a canonical layout: the
        # lazy caches (``_neighbor_sets``, ``_csr``) and the unordered
        # ``_edges`` frozenset are all derivable from ``_adjacency``.
        # Equal topologies must pickle to *identical bytes* whether or
        # not they have been simulated on — scenario fingerprints
        # (repro.montecarlo.fingerprint) hash these bytes.
        return {"order": self._order, "adjacency": self._adjacency,
                "name": self._name}

    def __setstate__(self, state):
        self._order = state["order"]
        self._adjacency = state["adjacency"]
        self._name = state["name"]
        self._edges = frozenset(
            (u, v)
            for u, neighbours in enumerate(self._adjacency)
            for v in neighbours if u < v
        )
        self._neighbor_sets = None
        self._csr = None

    # -- traversal ---------------------------------------------------------
    def bfs_distances(self, source: int) -> List[int]:
        """Distances from ``source``; unreachable nodes get ``-1``."""
        source = check_node(source, self._order, "source")
        distances = [-1] * self._order
        distances[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: List[int] = []
            for node in frontier:
                for neighbour in self._adjacency[node]:
                    if distances[neighbour] < 0:
                        distances[neighbour] = depth
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return distances

    def bfs_layers(self, source: int) -> List[List[int]]:
        """Nodes grouped by distance from ``source`` (layer 0 = source)."""
        distances = self.bfs_distances(source)
        radius = max(distances)
        layers: List[List[int]] = [[] for _ in range(radius + 1)]
        for node, dist in enumerate(distances):
            if dist >= 0:
                layers[dist].append(node)
        return layers

    def radius_from(self, source: int) -> int:
        """Eccentricity of ``source`` — the paper's ``D`` for that source.

        Raises if the graph is not connected, because broadcast from
        ``source`` would be impossible.
        """
        distances = self.bfs_distances(source)
        if any(dist < 0 for dist in distances):
            raise ValueError(
                f"graph {self._name!r} is not connected from source {source}"
            )
        return max(distances)

    def is_connected(self) -> bool:
        """Whether the graph is connected (single node counts as connected)."""
        return all(dist >= 0 for dist in self.bfs_distances(0))

    def diameter(self) -> int:
        """Maximum eccentricity over all nodes (requires connectivity)."""
        return max(self.radius_from(node) for node in self.nodes)

    # -- derived graphs ------------------------------------------------
    def renamed(self, name: str) -> "Topology":
        """A copy of this topology under a different label."""
        return Topology(self._order, self._edges, name=name)

    def with_extra_edges(self, extra: Iterable[Tuple[int, int]],
                         name: str = "") -> "Topology":
        """A new topology with additional edges."""
        combined = list(self._edges) + list(extra)
        return Topology(self._order, combined, name=name or self._name)

    def induced_subgraph(self, keep: Sequence[int], name: str = "") -> "Topology":
        """Induced subgraph on ``keep``, relabelled to ``0..len(keep)-1``."""
        keep = [check_node(node, self._order) for node in keep]
        if len(set(keep)) != len(keep):
            raise ValueError("induced_subgraph nodes must be distinct")
        relabel: Dict[int, int] = {node: idx for idx, node in enumerate(keep)}
        edges = [
            (relabel[u], relabel[v])
            for (u, v) in self._edges
            if u in relabel and v in relabel
        ]
        return Topology(len(keep), edges, name=name or f"{self._name}-sub")
