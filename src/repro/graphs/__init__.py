"""Graph substrate: topologies, builders, BFS trees, the lower-bound graph.

See :mod:`repro.graphs.topology` for the core immutable graph type,
:mod:`repro.graphs.builders` for the standard families, and
:mod:`repro.graphs.layered` for the Section 3 lower-bound construction.
"""

from repro.graphs.bfs import SpanningTree, bfs_tree
from repro.graphs.builders import (
    barbell,
    binary_tree,
    caterpillar,
    complete,
    erdos_renyi,
    grid,
    hypercube,
    kary_tree,
    line,
    random_regular,
    random_tree,
    ring,
    spider,
    star,
    torus,
    two_node,
)
from repro.graphs.layered import LayeredGraph, layered_graph
from repro.graphs.topology import Topology

__all__ = [
    "Topology",
    "SpanningTree",
    "bfs_tree",
    "LayeredGraph",
    "layered_graph",
    "line",
    "two_node",
    "ring",
    "star",
    "complete",
    "grid",
    "torus",
    "hypercube",
    "binary_tree",
    "kary_tree",
    "spider",
    "caterpillar",
    "barbell",
    "random_tree",
    "erdos_renyi",
    "random_regular",
]
