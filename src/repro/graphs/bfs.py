"""Spanning trees and level-ordered enumerations.

The paper's naive algorithms (Section 2) broadcast along a spanning tree
``T`` rooted at the source, with the nodes enumerated ``v_1 .. v_n`` "by
nondecreasing distance from s in T", so the enumeration respects the
levels of ``T``.  This module constructs BFS spanning trees (the choice
used by Theorems 3.1/3.2 as well) and exposes exactly that enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._validation import check_node
from repro.graphs.topology import Topology

__all__ = ["SpanningTree", "bfs_tree"]


@dataclass(frozen=True)
class SpanningTree:
    """A rooted spanning tree of a topology.

    Attributes
    ----------
    topology:
        The underlying network.
    root:
        The broadcast source ``s``.
    parent:
        ``parent[v]`` is the tree parent of ``v`` (``None`` for the root).
    depth:
        ``depth[v]`` is the tree distance from the root.
    order:
        The enumeration ``v_1 .. v_n`` (level order, ties by node id) as
        required by Algorithms Simple-Omission / Simple-Malicious.
    """

    topology: Topology
    root: int
    parent: Tuple[Optional[int], ...]
    depth: Tuple[int, ...]
    order: Tuple[int, ...]
    _children: Dict[int, Tuple[int, ...]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        children: Dict[int, List[int]] = {node: [] for node in self.topology.nodes}
        for node, par in enumerate(self.parent):
            if par is not None:
                children[par].append(node)
        frozen = {node: tuple(sorted(kids)) for node, kids in children.items()}
        object.__setattr__(self, "_children", frozen)

    # -- structure ------------------------------------------------------
    def children(self, node: int) -> Tuple[int, ...]:
        """Sorted tuple of tree children of ``node``."""
        return self._children[check_node(node, self.topology.order)]

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` has no children."""
        return not self.children(node)

    @property
    def height(self) -> int:
        """Tree height — equals the radius ``D`` for a BFS tree."""
        return max(self.depth)

    def rank(self, node: int) -> int:
        """Position of ``node`` in the enumeration (0-based: ``v_{rank+1}``)."""
        return self.order.index(node)

    def path_to_root(self, node: int) -> List[int]:
        """Nodes from ``node`` up to and including the root."""
        node = check_node(node, self.topology.order)
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def branch(self, leaf: int) -> List[int]:
        """Root-to-``leaf`` branch (the line the Thm 3.1/3.2 analyses use)."""
        return list(reversed(self.path_to_root(leaf)))

    def leaves(self) -> List[int]:
        """All leaves of the tree."""
        return [node for node in self.topology.nodes if self.is_leaf(node)]

    def subtree_nodes(self, node: int) -> List[int]:
        """All nodes in the subtree rooted at ``node`` (preorder)."""
        stack = [check_node(node, self.topology.order)]
        result = []
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(reversed(self.children(current)))
        return result

    def as_topology(self, name: str = "") -> Topology:
        """The tree itself as a :class:`Topology` (tree edges only)."""
        edges = [
            (node, par) for node, par in enumerate(self.parent) if par is not None
        ]
        return Topology(
            self.topology.order, edges,
            name=name or f"{self.topology.name}-bfs-tree",
        )

    def validate(self) -> None:
        """Check the spanning-tree invariants; raise ``ValueError`` if broken."""
        n = self.topology.order
        if len(self.parent) != n or len(self.depth) != n or len(self.order) != n:
            raise ValueError("parent/depth/order must all have length n")
        if self.parent[self.root] is not None or self.depth[self.root] != 0:
            raise ValueError("root must have no parent and depth 0")
        for node, par in enumerate(self.parent):
            if node == self.root:
                continue
            if par is None:
                raise ValueError(f"non-root node {node} lacks a parent")
            if not self.topology.has_edge(node, par):
                raise ValueError(f"tree edge ({par}, {node}) is not a graph edge")
            if self.depth[node] != self.depth[par] + 1:
                raise ValueError(f"depth invariant broken at node {node}")
        if sorted(self.order) != list(range(n)):
            raise ValueError("order must be a permutation of all nodes")
        for earlier, later in zip(self.order, self.order[1:]):
            if self.depth[earlier] > self.depth[later]:
                raise ValueError("order must be nondecreasing in depth")
        if self.order[0] != self.root:
            raise ValueError("enumeration must start at the root")


def bfs_tree(topology: Topology, source: int) -> SpanningTree:
    """Breadth-first spanning tree rooted at ``source``.

    Children adopt the smallest-id eligible parent, making the
    construction deterministic.  The returned enumeration lists nodes in
    level order with ties broken by node id — a valid ``v_1 .. v_n``
    enumeration for the Section 2 algorithms.
    """
    source = check_node(source, topology.order, "source")
    parent: List[Optional[int]] = [None] * topology.order
    depth = [-1] * topology.order
    depth[source] = 0
    frontier = [source]
    visit_order = [source]
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            for neighbour in topology.neighbors(node):
                if depth[neighbour] < 0:
                    depth[neighbour] = depth[node] + 1
                    parent[neighbour] = node
                    next_frontier.append(neighbour)
        next_frontier.sort()
        visit_order.extend(next_frontier)
        frontier = next_frontier
    if any(d < 0 for d in depth):
        missing = [node for node, d in enumerate(depth) if d < 0]
        raise ValueError(
            f"graph {topology.name!r} is not connected: nodes {missing[:5]} "
            f"unreachable from source {source}"
        )
    tree = SpanningTree(
        topology=topology,
        root=source,
        parent=tuple(parent),
        depth=tuple(depth),
        order=tuple(visit_order),
    )
    tree.validate()
    return tree
