"""Standard topology builders.

These cover every graph family used by the paper's arguments and by the
experiment harness: lines (the substrate of Lemmas 3.1/3.2), stars (the
impossibility graph of Theorem 2.4), bounded-degree trees and grids
(message-passing benchmarks), spiders (radio benchmarks), hypercubes,
and random graphs for robustness sweeps.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro._validation import check_non_negative_int, check_positive_int
from repro.graphs.topology import Topology
from repro.rng import RngStream, as_stream

__all__ = [
    "line",
    "ring",
    "star",
    "complete",
    "grid",
    "torus",
    "hypercube",
    "binary_tree",
    "kary_tree",
    "spider",
    "caterpillar",
    "barbell",
    "random_tree",
    "erdos_renyi",
    "random_regular",
    "two_node",
]


def line(length: int) -> Topology:
    """A path with ``length`` edges (``length + 1`` nodes ``0..length``).

    Node 0 is the conventional source endpoint, matching the lines of
    Lemmas 3.1 and 3.2.
    """
    length = check_positive_int(length, "length")
    edges = [(i, i + 1) for i in range(length)]
    return Topology(length + 1, edges, name=f"line-{length}")


def two_node() -> Topology:
    """The 2-node graph of Theorem 2.3 (source 0, receiver 1)."""
    return Topology(2, [(0, 1)], name="two-node")


def ring(order: int) -> Topology:
    """A cycle on ``order`` >= 3 nodes."""
    order = check_positive_int(order, "order")
    if order < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {order}")
    edges = [(i, (i + 1) % order) for i in range(order)]
    return Topology(order, edges, name=f"ring-{order}")


def star(leaves: int, source_is_center: bool = True) -> Topology:
    """A star with ``leaves`` leaves.

    When ``source_is_center`` is True the center is node 0 (the natural
    broadcast source).  When False, node 0 is a *leaf* and the center is
    node 1 — the layout of the Theorem 2.4 impossibility proof, where
    the source ``s`` is one of the leaves and ``v`` is the star root.
    """
    leaves = check_positive_int(leaves, "leaves")
    order = leaves + 1
    if source_is_center:
        edges = [(0, i) for i in range(1, order)]
        name = f"star-{leaves}"
    else:
        center = 1
        edges = [(center, node) for node in range(order) if node != center]
        name = f"leafstar-{leaves}"
    return Topology(order, edges, name=name)


def complete(order: int) -> Topology:
    """The complete graph ``K_order``."""
    order = check_positive_int(order, "order")
    edges = [(u, v) for u in range(order) for v in range(u + 1, order)]
    return Topology(order, edges, name=f"complete-{order}")


def grid(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` grid; node ``(r, c)`` is ``r * cols + c``."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Topology(rows * cols, edges, name=f"grid-{rows}x{cols}")


def torus(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` torus (grid with wrap-around, sizes >= 3)."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    if rows < 3 or cols < 3:
        raise ValueError("torus needs both dimensions >= 3 to avoid multi-edges")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            edges.append((node, r * cols + (c + 1) % cols))
            edges.append((node, ((r + 1) % rows) * cols + c))
    return Topology(rows * cols, edges, name=f"torus-{rows}x{cols}")


def hypercube(dimension: int) -> Topology:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` nodes."""
    dimension = check_positive_int(dimension, "dimension")
    order = 1 << dimension
    edges = [
        (node, node ^ (1 << bit))
        for node in range(order)
        for bit in range(dimension)
        if node < node ^ (1 << bit)
    ]
    return Topology(order, edges, name=f"hypercube-{dimension}")


def binary_tree(depth: int) -> Topology:
    """Complete binary tree of the given ``depth`` (root = node 0)."""
    return kary_tree(2, depth)


def kary_tree(arity: int, depth: int) -> Topology:
    """Complete ``arity``-ary tree of the given ``depth`` (root = node 0)."""
    arity = check_positive_int(arity, "arity")
    depth = check_non_negative_int(depth, "depth")
    order = sum(arity ** level for level in range(depth + 1))
    edges = []
    for node in range(1, order):
        parent = (node - 1) // arity
        edges.append((parent, node))
    return Topology(max(order, 1), edges, name=f"{arity}ary-tree-{depth}")


def spider(legs: int, leg_length: int) -> Topology:
    """``legs`` disjoint paths of ``leg_length`` edges glued at node 0.

    A classic radio benchmark: broadcast from the hub must serialise
    collisions only near the hub.
    """
    legs = check_positive_int(legs, "legs")
    leg_length = check_positive_int(leg_length, "leg_length")
    edges: List[Tuple[int, int]] = []
    next_node = 1
    for _ in range(legs):
        previous = 0
        for _ in range(leg_length):
            edges.append((previous, next_node))
            previous = next_node
            next_node += 1
    return Topology(next_node, edges, name=f"spider-{legs}x{leg_length}")


def caterpillar(spine: int, legs_per_node: int) -> Topology:
    """A path of ``spine`` edges with ``legs_per_node`` leaves per spine node."""
    spine = check_positive_int(spine, "spine")
    legs_per_node = check_non_negative_int(legs_per_node, "legs_per_node")
    edges = [(i, i + 1) for i in range(spine)]
    next_node = spine + 1
    for spine_node in range(spine + 1):
        for _ in range(legs_per_node):
            edges.append((spine_node, next_node))
            next_node += 1
    return Topology(next_node, edges, name=f"caterpillar-{spine}+{legs_per_node}")


def barbell(clique: int, bridge: int) -> Topology:
    """Two ``clique``-cliques joined by a path of ``bridge`` edges."""
    clique = check_positive_int(clique, "clique")
    bridge = check_positive_int(bridge, "bridge")
    if clique < 2:
        raise ValueError("barbell cliques need at least 2 nodes")
    edges = [(u, v) for u in range(clique) for v in range(u + 1, clique)]
    offset = clique + bridge - 1
    edges += [
        (offset + u, offset + v) for u in range(clique) for v in range(u + 1, clique)
    ]
    path_nodes = [clique - 1] + list(range(clique, clique + bridge - 1)) + [offset]
    edges += [(path_nodes[i], path_nodes[i + 1]) for i in range(len(path_nodes) - 1)]
    order = 2 * clique + bridge - 1
    return Topology(order, edges, name=f"barbell-{clique}-{bridge}")


def random_tree(order: int, seed_or_stream, max_degree: Optional[int] = None) -> Topology:
    """A uniform-attachment random tree on ``order`` nodes, root 0.

    Each node ``i >= 1`` attaches to a uniformly random earlier node,
    optionally restricted to nodes whose degree is below ``max_degree``
    (yielding bounded-degree trees for the Theorem 2.4 sweeps).
    """
    order = check_positive_int(order, "order")
    stream = as_stream(seed_or_stream)
    degrees = [0] * order
    edges: List[Tuple[int, int]] = []
    for node in range(1, order):
        candidates = [
            earlier for earlier in range(node)
            if max_degree is None or degrees[earlier] < max_degree
        ]
        if not candidates:
            raise ValueError(
                f"cannot attach node {node}: every earlier node is at "
                f"max_degree={max_degree}"
            )
        parent = candidates[int(stream.integers(0, len(candidates)))]
        edges.append((parent, node))
        degrees[parent] += 1
        degrees[node] += 1
    return Topology(order, edges, name=f"rtree-{order}")


def erdos_renyi(order: int, edge_prob: float, seed_or_stream,
                ensure_connected: bool = True, max_attempts: int = 200) -> Topology:
    """An Erdős–Rényi ``G(n, p)`` graph, optionally resampled until connected."""
    order = check_positive_int(order, "order")
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError(f"edge_prob must lie in [0, 1], got {edge_prob}")
    stream = as_stream(seed_or_stream)
    for attempt in range(max_attempts):
        trial = stream.child("er", attempt)
        edges = [
            (u, v)
            for u in range(order)
            for v in range(u + 1, order)
            if trial.bernoulli(edge_prob)
        ]
        graph = Topology(order, edges, name=f"er-{order}-{edge_prob:g}")
        if not ensure_connected or graph.is_connected():
            return graph
    raise RuntimeError(
        f"could not sample a connected G({order}, {edge_prob}) in "
        f"{max_attempts} attempts; raise edge_prob"
    )


def random_regular(order: int, degree: int, seed_or_stream,
                   max_attempts: int = 500) -> Topology:
    """A random ``degree``-regular graph via the pairing model.

    Retries until the pairing is simple (no loops / multi-edges) and the
    graph is connected.
    """
    order = check_positive_int(order, "order")
    degree = check_positive_int(degree, "degree")
    if order * degree % 2 != 0:
        raise ValueError(f"order * degree must be even, got {order} * {degree}")
    if degree >= order:
        raise ValueError(f"degree {degree} must be below order {order}")
    stream = as_stream(seed_or_stream)
    stubs = [node for node in range(order) for _ in range(degree)]
    for attempt in range(max_attempts):
        trial = stream.child("pairing", attempt)
        permuted = [stubs[i] for i in trial.permutation(len(stubs))]
        pairs = [
            (permuted[2 * k], permuted[2 * k + 1]) for k in range(len(permuted) // 2)
        ]
        if any(u == v for u, v in pairs):
            continue
        canonical = {(min(u, v), max(u, v)) for u, v in pairs}
        if len(canonical) != len(pairs):
            continue
        graph = Topology(order, canonical, name=f"rreg-{order}-{degree}")
        if graph.is_connected():
            return graph
    raise RuntimeError(
        f"could not sample a simple connected {degree}-regular graph on "
        f"{order} nodes in {max_attempts} attempts"
    )
