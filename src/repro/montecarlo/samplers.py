"""Built-in fastsim dispatch entries.

Each entry pairs a conservative matcher with the :mod:`repro.fastsim`
sampler whose success distribution coincides with the reference
engine's for that scenario shape; the agreement is asserted
sampler-by-sampler in ``tests/test_fastsim_agreement.py``.  Importing
this module (done by ``repro.montecarlo``) registers all entries.  See
:mod:`repro.montecarlo.dispatch` for the full registry table.
"""

from __future__ import annotations

import numpy as np

from repro.core.flooding import FastFlooding
from repro.core.radio_repeat import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.core.simple_malicious import SimpleMalicious
from repro.core.simple_omission import SimpleOmission
from repro.engine.protocol import MESSAGE_PASSING, RADIO, Algorithm
from repro.failures.adversaries import (
    ComplementAdversary,
    RadioWorstCaseAdversary,
    RandomFlipAdversary,
    SlowingAdversary,
)
from repro.failures.base import FailureModel, OmissionFailures
from repro.failures.equalizing import EqualizingStarAdversary
from repro.failures.malicious import MaliciousFailures, Restriction
from repro.fastsim.equalizing import sample_equalizing_star
from repro.fastsim.layered import sample_layered_omission
from repro.fastsim.schedule_repeat import (
    sample_radio_repeat_malicious,
    sample_radio_repeat_omission,
)
from repro.fastsim.tree_chain import (
    sample_flooding_success,
    sample_simple_malicious_mp,
    sample_simple_malicious_radio_tree,
    sample_simple_omission,
)
from repro.montecarlo.dispatch import register_sampler
from repro.radio.layered_broadcast import LayeredScheduleBroadcast
from repro.rng import RngStream

__all__ = ["register_builtin_samplers"]


def _omission_rates(failure: FailureModel):
    """Scalar ``p`` or the per-node ``p_v`` vector of an omission model.

    The samplers whose success law factorises per node (simple
    omission, flooding) consume either form directly; matchers that
    cannot handle heterogeneous rates gate on :func:`_uniform_p`
    instead.
    """
    vector = failure.p_vector
    return failure.p if vector is None else vector


def _uniform_p(failure: FailureModel):
    """The uniform rate, or ``None`` when the model carries ``p_v``."""
    return None if failure.p_vector is not None else failure.p


def _is_tree_topology(algorithm: Algorithm) -> bool:
    """Whether the algorithm's topology is itself a tree.

    The engine-exact radio malicious sampler conditions siblings on
    their parent's shared flip count; that factorisation needs the
    listeners' remaining closed neighbourhoods to be disjoint, which
    holds exactly when the graph has no non-tree edges.
    """
    return algorithm.topology.size == algorithm.topology.order - 1


def _match_simple_omission(algorithm: Algorithm,
                           failure: FailureModel) -> bool:
    return (
        isinstance(algorithm, SimpleOmission)
        and type(failure) is OmissionFailures
        and algorithm.source_message != algorithm.default
    )


def _sample_simple_omission(algorithm: Algorithm, failure: FailureModel,
                            trials: int, stream: RngStream) -> np.ndarray:
    return sample_simple_omission(
        algorithm.tree, algorithm.phase_length, _omission_rates(failure),
        trials, stream,
    )


def _match_simple_malicious_mp(algorithm: Algorithm,
                               failure: FailureModel) -> bool:
    return (
        isinstance(algorithm, SimpleMalicious)
        and algorithm.model == MESSAGE_PASSING
        and isinstance(failure, MaliciousFailures)
        and type(failure.adversary) in (ComplementAdversary, RandomFlipAdversary)
        and algorithm.source_message == 1
        and algorithm.default == 0
    )


def _sample_simple_malicious_mp(algorithm: Algorithm, failure: FailureModel,
                                trials: int, stream: RngStream) -> np.ndarray:
    return sample_simple_malicious_mp(
        algorithm.tree, algorithm.phase_length, failure.p, trials, stream
    )


def _match_simple_malicious_radio(algorithm: Algorithm,
                                  failure: FailureModel) -> bool:
    return (
        isinstance(algorithm, SimpleMalicious)
        and algorithm.model == RADIO
        and isinstance(failure, MaliciousFailures)
        and type(failure.adversary) is RadioWorstCaseAdversary
        and failure.restriction is Restriction.FULL
        and algorithm.source_message == 1
        and algorithm.default == 0
        and _is_tree_topology(algorithm)
    )


def _sample_simple_malicious_radio(algorithm: Algorithm,
                                   failure: FailureModel, trials: int,
                                   stream: RngStream) -> np.ndarray:
    return sample_simple_malicious_radio_tree(
        algorithm.tree, algorithm.phase_length, failure.p, trials, stream
    )


def _match_flooding(algorithm: Algorithm, failure: FailureModel) -> bool:
    return (
        isinstance(algorithm, FastFlooding)
        and type(failure) is OmissionFailures
        and algorithm.source_message != algorithm.default
    )


def _sample_flooding(algorithm: Algorithm, failure: FailureModel,
                     trials: int, stream: RngStream) -> np.ndarray:
    return sample_flooding_success(
        algorithm.tree, algorithm.rounds, _omission_rates(failure), trials,
        stream,
    )


def _match_radio_repeat_omission(algorithm: Algorithm,
                                 failure: FailureModel) -> bool:
    # The informing-group law is derived for one shared rate; a
    # heterogeneous model falls through to the batchsim tier.
    return (
        isinstance(algorithm, RadioRepeat)
        and algorithm.rule == ADOPT_ANY
        and type(failure) is OmissionFailures
        and _uniform_p(failure) is not None
        and algorithm.source_message != algorithm.default
    )


def _sample_radio_repeat_omission(algorithm: Algorithm, failure: FailureModel,
                                  trials: int, stream: RngStream) -> np.ndarray:
    return sample_radio_repeat_omission(
        algorithm.base_schedule, algorithm.phase_length, failure.p, trials,
        stream,
    )


def _match_radio_repeat_malicious(algorithm: Algorithm,
                                  failure: FailureModel) -> bool:
    # The complement/flip adversaries never add or drop transmissions,
    # so their behaviour is identical under every restriction level.
    return (
        isinstance(algorithm, RadioRepeat)
        and algorithm.rule == ADOPT_MAJORITY
        and isinstance(failure, MaliciousFailures)
        and type(failure.adversary) in (ComplementAdversary, RandomFlipAdversary)
        and algorithm.source_message == 1
        and algorithm.default == 0
    )


def _sample_radio_repeat_malicious(algorithm: Algorithm,
                                   failure: FailureModel, trials: int,
                                   stream: RngStream) -> np.ndarray:
    return sample_radio_repeat_malicious(
        algorithm.base_schedule, algorithm.phase_length, failure.p, trials,
        stream,
    )


def _equalizing_star_attack(failure: FailureModel):
    """``(adversary, effective rate)`` for an equalizing-star attack.

    Recognises the native adversary (effective rate = raw ``p``) and
    the Theorem 2.4 slowing reduction (effective rate = the slowing
    target, provided the wrapper was derived for this failure model's
    ``p`` — otherwise the realised rate would differ).  ``None`` for
    anything else.
    """
    if not isinstance(failure, MaliciousFailures):
        return None
    if failure.restriction is not Restriction.FULL:
        return None
    adversary = failure.adversary
    if isinstance(adversary, SlowingAdversary):
        inner = adversary.inner
        if (type(inner) is EqualizingStarAdversary
                and adversary.raw_rate == failure.p):
            return inner, adversary.effective_rate
        return None
    if type(adversary) is EqualizingStarAdversary:
        return adversary, failure.p
    return None


def _match_equalizing_star(algorithm: Algorithm,
                           failure: FailureModel) -> bool:
    attack = _equalizing_star_attack(failure)
    if attack is None:
        return False
    adversary, _ = attack
    if not (isinstance(algorithm, SimpleMalicious)
            and algorithm.model == RADIO):
        return False
    topology = algorithm.topology
    center = adversary.center
    return (
        # A star with the adversary's center at its root ...
        topology.size == topology.order - 1
        and 0 <= center < topology.order
        and topology.degree(center) == topology.order - 1
        # ... attacked through the leaf the algorithm broadcasts from.
        and algorithm.source == adversary.source
        and algorithm.source != center
        and algorithm.source_message in (0, 1)
        and algorithm.default == 0
    )


def _sample_equalizing_star(algorithm: Algorithm, failure: FailureModel,
                            trials: int, stream: RngStream) -> np.ndarray:
    _, rate = _equalizing_star_attack(failure)
    return sample_equalizing_star(
        algorithm.topology.order, algorithm.phase_length, rate,
        algorithm.source_message, trials, stream,
    )


def _match_layered_omission(algorithm: Algorithm,
                            failure: FailureModel) -> bool:
    # Per-step survivor counts are binomial in one shared rate; a
    # heterogeneous model falls through to the batchsim tier.
    return (
        isinstance(algorithm, LayeredScheduleBroadcast)
        and type(failure) is OmissionFailures
        and _uniform_p(failure) is not None
        and algorithm.source_message != algorithm.default
    )


def _sample_layered_omission(algorithm: Algorithm, failure: FailureModel,
                             trials: int, stream: RngStream) -> np.ndarray:
    return sample_layered_omission(
        algorithm.graph, algorithm.step_positions, failure.p, trials, stream,
        source_steps=algorithm.source_steps,
    )


def register_builtin_samplers() -> None:
    """Register every built-in (algorithm, failure) -> sampler entry.

    Every built-in sampler draws either in a single vectorised call
    with the trial count as the leading axis or from named child
    streams owned by one draw site each, so all entries carry
    ``prefix_stable=True`` and may serve sequential extensions
    (``TrialRunner.run_until``) directly; the contract is
    property-tested in ``tests/test_sequential.py``.
    """
    register_sampler(
        "simple-omission", _match_simple_omission, _sample_simple_omission,
        prefix_stable=True,
    )
    register_sampler(
        "simple-malicious-mp", _match_simple_malicious_mp,
        _sample_simple_malicious_mp, prefix_stable=True,
    )
    register_sampler(
        "simple-malicious-radio", _match_simple_malicious_radio,
        _sample_simple_malicious_radio, prefix_stable=True,
    )
    register_sampler(
        "flooding", _match_flooding, _sample_flooding, prefix_stable=True
    )
    register_sampler(
        "radio-repeat-omission", _match_radio_repeat_omission,
        _sample_radio_repeat_omission, prefix_stable=True,
    )
    register_sampler(
        "radio-repeat-malicious", _match_radio_repeat_malicious,
        _sample_radio_repeat_malicious, prefix_stable=True,
    )
    register_sampler(
        "equalizing-star", _match_equalizing_star, _sample_equalizing_star,
        prefix_stable=True,
    )
    register_sampler(
        "layered-omission", _match_layered_omission, _sample_layered_omission,
        prefix_stable=True,
    )


register_builtin_samplers()
