"""Built-in fastsim dispatch entries.

Each entry pairs a conservative matcher with the
:mod:`repro.fastsim.tree_chain` sampler whose success distribution
coincides with the reference engine's for that scenario shape; the
agreement is asserted sampler-by-sampler in
``tests/test_fastsim_agreement.py``.  Importing this module (done by
``repro.montecarlo``) registers all entries.
"""

from __future__ import annotations

import numpy as np

from repro.core.flooding import FastFlooding
from repro.core.simple_malicious import SimpleMalicious
from repro.core.simple_omission import SimpleOmission
from repro.engine.protocol import MESSAGE_PASSING, RADIO, Algorithm
from repro.failures.adversaries import (
    ComplementAdversary,
    RadioWorstCaseAdversary,
    RandomFlipAdversary,
)
from repro.failures.base import FailureModel, OmissionFailures
from repro.failures.malicious import MaliciousFailures, Restriction
from repro.fastsim.tree_chain import (
    sample_flooding_success,
    sample_simple_malicious_mp,
    sample_simple_malicious_radio,
    sample_simple_omission,
)
from repro.montecarlo.dispatch import register_sampler
from repro.rng import RngStream

__all__ = ["register_builtin_samplers"]


def _is_chain(tree) -> bool:
    """Whether every node has at most one child (a rooted path).

    The radio worst-case sampler draws per-node trinomials
    independently; with siblings the engine's listeners share their
    parent's phase faults and the joint success law differs, so the
    sampler is only offered on chains.
    """
    return all(
        len(tree.children(node)) <= 1 for node in tree.topology.nodes
    )


def _match_simple_omission(algorithm: Algorithm,
                           failure: FailureModel) -> bool:
    return (
        isinstance(algorithm, SimpleOmission)
        and type(failure) is OmissionFailures
        and algorithm.source_message != algorithm.default
    )


def _sample_simple_omission(algorithm: Algorithm, failure: FailureModel,
                            trials: int, stream: RngStream) -> np.ndarray:
    return sample_simple_omission(
        algorithm.tree, algorithm.phase_length, failure.p, trials, stream
    )


def _match_simple_malicious_mp(algorithm: Algorithm,
                               failure: FailureModel) -> bool:
    return (
        isinstance(algorithm, SimpleMalicious)
        and algorithm.model == MESSAGE_PASSING
        and isinstance(failure, MaliciousFailures)
        and type(failure.adversary) in (ComplementAdversary, RandomFlipAdversary)
        and algorithm.source_message == 1
        and algorithm.default == 0
    )


def _sample_simple_malicious_mp(algorithm: Algorithm, failure: FailureModel,
                                trials: int, stream: RngStream) -> np.ndarray:
    return sample_simple_malicious_mp(
        algorithm.tree, algorithm.phase_length, failure.p, trials, stream
    )


def _match_simple_malicious_radio(algorithm: Algorithm,
                                  failure: FailureModel) -> bool:
    return (
        isinstance(algorithm, SimpleMalicious)
        and algorithm.model == RADIO
        and isinstance(failure, MaliciousFailures)
        and type(failure.adversary) is RadioWorstCaseAdversary
        and failure.restriction is Restriction.FULL
        and algorithm.source_message == 1
        and algorithm.default == 0
        and _is_chain(algorithm.tree)
    )


def _sample_simple_malicious_radio(algorithm: Algorithm,
                                   failure: FailureModel, trials: int,
                                   stream: RngStream) -> np.ndarray:
    return sample_simple_malicious_radio(
        algorithm.tree, algorithm.phase_length, failure.p, trials, stream
    )


def _match_flooding(algorithm: Algorithm, failure: FailureModel) -> bool:
    return (
        isinstance(algorithm, FastFlooding)
        and type(failure) is OmissionFailures
        and algorithm.source_message != algorithm.default
    )


def _sample_flooding(algorithm: Algorithm, failure: FailureModel,
                     trials: int, stream: RngStream) -> np.ndarray:
    return sample_flooding_success(
        algorithm.tree, algorithm.rounds, failure.p, trials, stream
    )


def register_builtin_samplers() -> None:
    """Register every built-in (algorithm, failure) -> sampler entry."""
    register_sampler(
        "simple-omission", _match_simple_omission, _sample_simple_omission
    )
    register_sampler(
        "simple-malicious-mp", _match_simple_malicious_mp,
        _sample_simple_malicious_mp,
    )
    register_sampler(
        "simple-malicious-radio", _match_simple_malicious_radio,
        _sample_simple_malicious_radio,
    )
    register_sampler("flooding", _match_flooding, _sample_flooding)


register_builtin_samplers()
