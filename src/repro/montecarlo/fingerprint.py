"""Canonical scenario fingerprints: the exact-memoisation key.

Every Monte-Carlo result in this library is a *pure function* of
``(scenario, root seed, trial count)``: trial ``i`` draws exclusively
from ``root.child("mc", i)``, so the indicator vector does not depend
on the backend tier, the worker count or the chunk size (the
bit-identity invariant pinned across the test suite).  That determinism
turns a result cache from an approximation into an *exact* memo — two
queries with the same fingerprint are guaranteed byte-identical
indicators, so the serving layer (:mod:`repro.serve`) can answer the
second one from memory without changing a single bit of the answer.

The fingerprint hashes the same description the process-sharding path
already relies on being complete: the **picklable factory spec**
(worker processes rebuild the entire scenario from it, so by the
sharding contract it captures every scenario-defining datum —
topology, source, payloads, phase lengths), the **failure model** with
all its parameters, the **root seed** and the **trial count**.  Pickle
bytes are produced at a pinned protocol, so equal specs hash equal and
the digest is stable across runs of the same interpreter/library
versions; the digest is SHA-256, so distinct specs colliding is not a
practical concern.

A fingerprint is *conservative* the same way the sharding contract is:
a factory that is not a pure scenario description (builds differently
per call) would already break process sharding, and it breaks
memoisation the same way — both are documented requirements on
factories, not new constraints.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Callable, Optional

from repro._validation import check_positive_int
from repro.failures.base import FailureModel

__all__ = ["scenario_fingerprint", "payload_fingerprint",
           "FINGERPRINT_VERSION", "PICKLE_PROTOCOL"]

#: Bumped whenever the fingerprint layout changes, so persisted caches
#: from older layouts can never alias new ones.
FINGERPRINT_VERSION = 1

#: Pinned pickle protocol: the fingerprint must not change bytes when
#: the interpreter's default protocol moves.  Public because the
#: distributed worker protocol (:mod:`repro.distrib`) pickles shard
#: payloads at the same pin, so client and worker agree on the wire
#: bytes regardless of interpreter defaults.
PICKLE_PROTOCOL = 4
_PICKLE_PROTOCOL = PICKLE_PROTOCOL


def payload_fingerprint(payload: bytes) -> str:
    """Content address of raw payload bytes, as a SHA-256 hex digest.

    The same digest family as :func:`scenario_fingerprint`, applied to
    bytes the caller already has — the distributed worker protocol
    stamps every shard payload and result with it so a corrupted or
    truncated frame is rejected instead of silently mis-simulated.
    """
    return hashlib.sha256(payload).hexdigest()


def scenario_fingerprint(factory: Callable[[], Any],
                         failure_model: Optional[FailureModel],
                         trials: int, seed: int, *,
                         extra: Any = None) -> str:
    """The canonical memo key of one Monte-Carlo batch, as a hex digest.

    Parameters
    ----------
    factory:
        The scenario's picklable algorithm factory — the same object
        the process-sharding path ships to workers, which is exactly
        why hashing it captures the whole scenario.
    failure_model:
        The failure model instance (or ``None`` for fault-free); its
        parameters (rates, adversary, restriction) pickle with it.
    trials, seed:
        The batch shape: trial count and root seed.
    extra:
        Optional picklable discriminator for callers whose result
        depends on more than the batch (e.g. a custom success
        predicate's registered name).  ``None`` adds nothing.

    Raises
    ------
    TypeError
        When the factory (or failure model / extra) is not picklable —
        e.g. a lambda.  Unpicklable factories cannot shard across
        processes either; the error says so.
    """
    trials = check_positive_int(trials, "trials")
    try:
        payload = pickle.dumps(
            (FINGERPRINT_VERSION, factory, failure_model, int(seed),
             trials, extra),
            protocol=_PICKLE_PROTOCOL,
        )
    except Exception as error:
        raise TypeError(
            f"scenario_fingerprint needs a picklable scenario spec "
            f"(module-level factory/partial, picklable failure model) — "
            f"the same contract process sharding requires; pickling "
            f"failed with: {error}"
        ) from error
    return hashlib.sha256(payload).hexdigest()
