"""The ``ShardExecutor`` contract every execution backend honours.

The sharded dispatch tiers (scalar-engine trial shards and batchsim
trial chunks) used to assume one substrate — a local process pool.
This package turns that assumption into an explicit, pluggable
contract so shards can run in-process, across local processes, or on
remote worker hosts, with the *same* guarantees the pool harness
always gave:

* **index-ordered results** — ``run_sharded`` returns per-shard values
  in shard order, never completion order, so merged indicator vectors
  are a pure function of the root seed;
* **in-order streaming** — the optional ``on_result(index, value)``
  callback fires strictly in shard-index order (shard ``i`` as soon as
  shards ``0..i`` all completed), and never at or after the
  lowest-indexed failing shard;
* **lowest-index first-error propagation** — when shards raise, every
  not-yet-started shard is cancelled with a **single** sweep and the
  error re-raised is the lowest-indexed one, reproducible no matter
  which worker happened to fail first on the wall clock;
* **crash attribution** — a worker that dies without raising
  (``os._exit``, segfault, OOM kill, remote disconnect) surfaces as a
  :class:`WorkerCrashError` naming the lowest-indexed shard it took
  down, never a bare unattributed ``BrokenProcessPool``;
* **bounded shard retry** — backends that can lose a worker (local
  pool, remote socket) re-run a crashed shard up to
  ``max_shard_retries`` times before the crash surfaces.  Retried
  shards re-run the *same absolute trial range*, so results are
  deterministic by construction — the bit-identity invariant makes
  shard placement (and re-placement) semantically free.

Every completed shard reports to the process-wide metrics registry
(:mod:`repro.obs`): the ``mc.executor.shards`` counter and the
``mc.executor.shard.seconds`` / ``mc.executor.shard.queue_seconds``
histograms, all labelled by executor ``backend``, plus the
``mc.executor.retries`` counter whenever a crashed shard is re-run.
Instrumentation is inert (no RNG), so indicators are bit-identical
with metrics on or off.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from abc import ABC, abstractmethod
from concurrent.futures import BrokenExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import get_registry

__all__ = [
    "ShardExecutor",
    "WorkerCrashError",
    "WorkerDisconnect",
    "OrderedMerge",
    "pool_context",
]


class WorkerCrashError(RuntimeError):
    """A shard worker died abruptly (segfault, ``os._exit``, OOM kill,
    remote disconnect).

    The bare :class:`~concurrent.futures.process.BrokenProcessPool`
    carries no shard attribution — it surfaces on whichever future the
    completion loop happened to reach first.  This wrapper names the
    lowest-indexed shard the crash took down and summarises its
    arguments, so a reproduction starts from the right shard instead
    of a random one.
    """


class WorkerDisconnect(ConnectionError):
    """A remote worker's connection dropped while it held a shard.

    The remote analogue of a broken process pool: the shard's fate is
    unknown, the worker is considered dead, and the executor either
    retries the shard on another worker (within ``max_shard_retries``)
    or surfaces a :class:`WorkerCrashError`.
    """


def pool_context():
    """The multiprocessing context every local sharded tier uses.

    Fork on Linux: workers reuse the parent's imports and page-shared
    topology caches, which keeps per-shard startup in the
    milliseconds.  Spawn everywhere else — on macOS fork is offered
    but unsafe (forked children can abort inside the Objective-C
    runtime and Accelerate-backed numpy, which is why CPython moved
    the platform default to spawn).  Pinning the method explicitly
    keeps sharded runs identical across Python versions instead of
    tracking the interpreter's default (3.14 moves Linux to
    forkserver).
    """
    return multiprocessing.get_context(
        "fork" if sys.platform == "linux" else "spawn"
    )


def _summarise_args(args: Tuple, limit: int = 200) -> str:
    """Truncated ``repr`` of a shard's argument tuple for error text."""
    text = repr(args)
    if len(text) > limit:
        text = text[:limit] + "...<truncated>"
    return text


#: Error types that mean "the worker died", not "the shard raised" —
#: these are retried (within budget) and wrapped as WorkerCrashError.
CRASH_ERRORS = (BrokenExecutor, WorkerDisconnect)


class OrderedMerge:
    """Index-ordered shard→result merge shared by every backend.

    Collects per-shard completions and failures in whatever order a
    backend delivers them and enforces the streaming contract: the
    ``on_result`` callback fires strictly in shard-index order and
    strictly below the lowest failing shard index.  Safe even though
    ``min(errors)`` can drop as more errors land — callbacks fire in
    index order, so every index already streamed is backed by a
    completed (never-failing) shard.
    """

    def __init__(self, total: int,
                 on_result: Optional[Callable[[int, Any], None]]):
        self.results: List[Any] = [None] * total
        self.errors: Dict[int, BaseException] = {}
        self._ready: Dict[int, Any] = {}
        self._next_in_order = 0
        self._on_result = on_result
        self._completed = 0
        self._total = total

    @property
    def unresolved(self) -> bool:
        """Whether any shard has neither completed nor failed."""
        return self._completed + len(self.errors) < self._total

    def complete(self, index: int, value: Any) -> None:
        """Record shard ``index``'s value and stream any ready prefix."""
        self.results[index] = value
        self._completed += 1
        if self._on_result is None:
            return
        self._ready[index] = value
        while self._next_in_order in self._ready and (
                not self.errors or self._next_in_order < min(self.errors)):
            self._on_result(self._next_in_order,
                            self._ready.pop(self._next_in_order))
            self._next_in_order += 1

    def fail(self, index: int, error: BaseException) -> None:
        """Record shard ``index``'s terminal failure."""
        self.errors[index] = error

    def finalise(self, shard_args: Sequence[Tuple],
                 crash_text: Callable[[int, int, Tuple], str]) -> List[Any]:
        """Return the ordered results, or raise the lowest-index error.

        A crash-class error (:data:`CRASH_ERRORS`) is wrapped as a
        :class:`WorkerCrashError` whose message comes from the
        backend's ``crash_text(lowest, total, args)`` hook.
        """
        if self.errors:
            lowest = min(self.errors)
            error = self.errors[lowest]
            if isinstance(error, CRASH_ERRORS):
                raise WorkerCrashError(
                    crash_text(lowest, len(shard_args),
                               tuple(shard_args[lowest]))
                ) from error
            raise error
        return self.results


class ShardExecutor(ABC):
    """Abstract execution substrate for sharded Monte-Carlo batches.

    Implementations run a picklable, module-level ``function`` over a
    sequence of shard argument tuples and uphold the contract in the
    module docstring: index-ordered results, in-order ``on_result``
    streaming, lowest-index first-error propagation with a single
    cancel sweep, :class:`WorkerCrashError` attribution, and bounded
    deterministic shard retry where workers can die.

    Attributes
    ----------
    name:
        The backend label (``"in-process"`` / ``"local-process"`` /
        ``"remote-socket"``) — the ``backend`` label on every
        ``mc.executor.*`` metric series and the tag shown by the
        serving layer's ``stats`` op.
    """

    name: str = "abstract"

    @abstractmethod
    def worker_count(self) -> int:
        """Parallel worker ceiling — what the shard-floor heuristics
        (``MIN_BATCHSIM_SHARD``-bounded chunk counts, shards-per-worker
        multipliers) size shard lists against."""

    @abstractmethod
    def run_sharded(self, function: Callable[..., Any],
                    shard_args: Sequence[Tuple],
                    on_result: Optional[Callable[[int, Any], None]] = None
                    ) -> List[Any]:
        """Run ``function(*args)`` for every shard; results in shard order."""

    def describe(self) -> Dict[str, Any]:
        """Deployment summary for ``stats`` blocks and throughput docs."""
        return {"backend": self.name, "workers": self.worker_count()}

    def close(self) -> None:
        """Release any held resources (default: nothing held)."""

    # -- shared instrumentation ---------------------------------------

    def _record_shard(self, queue_seconds: float, seconds: float) -> None:
        """Report one completed shard's duration and queue wait.

        Three ``mc.executor.*`` series labelled by backend: the shard
        counter, the execution-latency histogram (whose spread across a
        run *is* the shard-skew signal), and the queue-wait histogram.
        """
        registry = get_registry()
        registry.counter("mc.executor.shards", backend=self.name).inc()
        registry.histogram("mc.executor.shard.seconds",
                           backend=self.name).observe(seconds)
        registry.histogram("mc.executor.shard.queue_seconds",
                           backend=self.name).observe(max(0.0, queue_seconds))

    def _record_retry(self) -> None:
        """Count one crashed shard being re-run on another worker."""
        get_registry().counter("mc.executor.retries",
                               backend=self.name).inc()


def _timed_shard(function: Callable[..., Any],
                 args: Tuple) -> Tuple[Tuple[float, float], Any]:
    """Worker-side wrapper: run the shard and report its own clock.

    Returns ``((started, seconds), result)`` where ``started`` is the
    worker's ``time.monotonic()`` at shard entry.  ``time.monotonic``
    is system-wide on Linux (CLOCK_MONOTONIC) and macOS
    (mach_absolute_time), so the parent can subtract its submit stamp
    from the worker's start stamp to estimate per-shard **queue wait**
    — how long the shard sat behind siblings before a process picked
    it up.  Top-level so the spawn start method can pickle it.
    """
    started = time.monotonic()
    result = function(*args)
    return (started, time.monotonic() - started), result
